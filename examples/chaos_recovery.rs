//! Node-level chaos: a cloud server crashes mid-deployment, its VMs
//! are evacuated to live servers, sessions touching the dead node fail
//! fast, and recovery re-keys every secure channel before attestation
//! resumes. An overload gate sheds a subscription burst, and a session
//! deadline bounds how long a customer waits for any verdict.
//!
//! ```sh
//! cargo run --example chaos_recovery
//! ```

use cloudmonatt::core::{
    CloudBuilder, Flavor, Image, NodeId, OutageModel, SecurityProperty, VmRequest,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cloud = CloudBuilder::new()
        .servers(3)
        .seed(77)
        .admission_control(2, 1)
        .build();
    let vid = cloud.request_vm(
        VmRequest::new(Flavor::Small, Image::Cirros).require(SecurityProperty::RuntimeIntegrity),
    )?;
    let home = cloud.server_of(vid).expect("placed");
    println!("VM {vid} on {home}");

    // 1. Crash the VM's home server: the Response Module re-runs
    //    Policy Validation and evacuates the VM to a live server.
    cloud.crash_node(NodeId::Server(home));
    let new_home = cloud.server_of(vid).expect("evacuated");
    let outages = cloud.outage_stats();
    println!(
        "\ncrash {home}: evacuated to {new_home} (evacuations={}, crashes={})",
        outages.evacuations, outages.crashes
    );
    let report = cloud.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)?;
    println!(
        "attestation from {new_home}: healthy={} in {:.3}s",
        report.healthy(),
        report.elapsed_us as f64 / 1e6
    );

    // 2. Crash the Attestation Server itself: there is no one to
    //    verify evidence, so sessions fail fast — no retry ladder is
    //    burned against a dead node.
    cloud.crash_node(NodeId::AttestationServer);
    let err = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap_err();
    println!("\nattestation server down: {err}");

    // 3. Recovery re-keys every channel the node terminates; stale
    //    pre-crash session keys never resume.
    cloud.recover_node(NodeId::AttestationServer);
    cloud.recover_node(NodeId::Server(home));
    let outages = cloud.outage_stats();
    println!(
        "recovered: rehandshakes={} (fresh keys on every touched channel)",
        outages.rehandshakes
    );
    let report = cloud.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)?;
    println!("attestation works again: healthy={}", report.healthy());

    // 4. A scripted outage inside the event loop: the server hosting
    //    the VM dies at t+2s and returns at t+6s while a periodic
    //    monitor samples every second.
    let t0 = cloud.wall_clock_us();
    let target = cloud.server_of(vid).expect("placed");
    cloud.set_outage_model(
        OutageModel::new(7)
            .crash_at(t0 + 2_000_000, NodeId::Server(target))
            .recover_at(t0 + 6_000_000, NodeId::Server(target)),
    );
    let sub = cloud.runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 1_000_000)?;
    cloud.run(10_000_000);
    let health = cloud.subscription_health(sub)?;
    println!(
        "\nscripted outage: delivered={} missed={} — VM now on {}",
        health.delivered,
        health.missed,
        cloud.server_of(vid).expect("still managed"),
    );
    cloud.stop_attest_periodic(sub)?;

    // 5. Overload: three simultaneous subscriptions against a
    //    high-water mark of two — the burst's tail is shed, hysteresis
    //    re-admits once the gate drains.
    let mut subs = Vec::new();
    for _ in 0..3 {
        subs.push(cloud.runtime_attest_periodic(
            vid,
            SecurityProperty::RuntimeIntegrity,
            1_000_000,
        )?);
    }
    cloud.reset_protocol_stats();
    cloud.run(4_000_000);
    let stats = cloud.protocol_stats();
    println!(
        "\noverload: started={} completed={} shed={} (gate high=2, low=1)",
        stats.sessions_started, stats.sessions_completed, stats.sessions_shed
    );
    for sub in subs {
        cloud.stop_attest_periodic(sub)?;
    }

    // 6. A 5 ms session deadline against a clean 40 ms protocol round:
    //    the customer gets a bounded-time answer, not a hung call.
    cloud.set_session_deadline(Some(5_000));
    let err = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap_err();
    println!("\ntight deadline: {err}");
    cloud.set_session_deadline(None);

    let outages = cloud.outage_stats();
    println!(
        "\nfinal ledger: crashes={} recoveries={} evacuations={} rehandshakes={} \
         node-down-failures={}",
        outages.crashes,
        outages.recoveries,
        outages.evacuations,
        outages.rehandshakes,
        outages.node_down_failures
    );
    Ok(())
}
