//! Layered and multi-property attestation through the protocol IR.
//!
//! The Figure-3 exchange is compiled from a [`Protocol`] term rather
//! than hard-coded, so attestation *shapes* are data: this example runs
//! the layered program (appraise the hosting platform first, gate the
//! VM's introspection quote on that verdict) and the fan-out program
//! (one session measuring several properties through parallel
//! measurement branches), printing the per-hop network trace of each.
//!
//! ```sh
//! cargo run --example layered_attestation
//! ```

use cloudmonatt::core::{
    Cloud, CloudBuilder, Flavor, Image, SecurityProperty, VmRequest, WorkloadSpec,
};

/// Prints every record the simulated network carried since `from`,
/// one line per hop: who → whom, payload size, link latency.
fn print_trace(cloud: &mut Cloud, from: usize) {
    for (i, r) in cloud.network_mut().log()[from..].iter().enumerate() {
        println!(
            "  hop {:>2}: {:>10} -> {:<10} {:>4} B  {:>6} us  {}",
            i + 1,
            r.from,
            r.to,
            r.sent.len(),
            r.latency_us,
            if r.delivered.is_some() {
                "delivered"
            } else {
                "dropped"
            },
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Layered attestation on a healthy platform -------------------
    let mut cloud = CloudBuilder::new().servers(2).seed(5).build();
    let vid = cloud.request_vm(
        VmRequest::new(Flavor::Small, Image::Cirros)
            .require(SecurityProperty::RuntimeIntegrity)
            .workload(WorkloadSpec::Busy),
    )?;
    println!("VM {vid} on {}", cloud.server_of(vid).expect("placed"));

    let mark = cloud.network_mut().log().len();
    let report = cloud.layered_attest(vid, SecurityProperty::RuntimeIntegrity)?;
    println!(
        "\nlayered attestation (platform first, then the VM): healthy={} in {:.3}s",
        report.healthy(),
        report.elapsed_us as f64 / 1e6
    );
    println!("per-hop trace — note the delegated messages-2–5 platform");
    println!("appraisal running before the VM's own msg3/msg4 measurement:");
    print_trace(&mut cloud, mark);

    // --- Layered attestation on a compromised platform ---------------
    // One server, its boot chain trojaned: the delegated platform
    // appraisal comes back unhealthy, the gate skips the VM measurement
    // entirely (no msg3/msg4 to the server in the trace), and the
    // negative verdict is still certified back through msg5/msg6.
    let mut bad = CloudBuilder::new()
        .servers(1)
        .seed(6)
        .corrupt_platform(0)
        .build();
    let victim = bad.request_vm(VmRequest::new(Flavor::Small, Image::Cirros))?;
    let mark = bad.network_mut().log().len();
    let report = bad.layered_attest(victim, SecurityProperty::RuntimeIntegrity)?;
    println!(
        "\ncompromised platform: healthy={} status={:?}",
        report.healthy(),
        report.status
    );
    println!("per-hop trace — the gate certifies the platform verdict");
    println!("without ever measuring the VM:");
    print_trace(&mut bad, mark);

    // --- Multi-property fan-out --------------------------------------
    let properties = [
        SecurityProperty::StartupIntegrity,
        SecurityProperty::RuntimeIntegrity,
        SecurityProperty::CovertChannelFreedom,
    ];
    let mark = cloud.network_mut().log().len();
    let report = cloud.multi_attest(vid, &properties)?;
    println!(
        "\nfan-out over {} properties in one session: healthy={} in {:.3}s",
        properties.len(),
        report.healthy(),
        report.elapsed_us as f64 / 1e6
    );
    println!("per-hop trace — one msg1/msg2 prologue, then a parallel");
    println!("msg3/msg4 measurement branch per property, one msg5/msg6 report:");
    print_trace(&mut cloud, mark);

    Ok(())
}
