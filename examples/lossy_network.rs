//! Attestation over a faulty network: messages are dropped, duplicated
//! and corrupted at random, and the per-hop retransmission layer keeps
//! the Figure-3 protocol converging — until the network goes completely
//! dark, at which point the periodic monitor escalates the VM as
//! unreachable and the Response Module migrates it.
//!
//! ```sh
//! cargo run --example lossy_network
//! ```

use cloudmonatt::core::{CloudBuilder, Flavor, Image, SecurityProperty, VmRequest};
use cloudmonatt::net::sim::FaultModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cloud = CloudBuilder::new()
        .servers(3)
        .seed(11)
        .escalation_threshold(3)
        .auto_response(true)
        .build();
    let vid = cloud.request_vm(
        VmRequest::new(Flavor::Small, Image::Cirros).require(SecurityProperty::RuntimeIntegrity),
    )?;
    println!("VM {vid} on {}", cloud.server_of(vid).expect("placed"));

    // 1. A clean attestation for the latency baseline.
    let clean = cloud.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)?;
    println!(
        "clean network: healthy={} in {:.3}s",
        clean.healthy(),
        clean.elapsed_us as f64 / 1e6
    );

    // 2. 15% loss + 10% duplication + 5% corruption: retries absorb it.
    cloud.network_mut().set_fault_model(
        FaultModel::new(42)
            .drop_prob(0.15)
            .duplicate_prob(0.10)
            .corrupt_prob(0.05),
    );
    cloud.reset_protocol_stats();
    let mut ok = 0;
    for _ in 0..10 {
        if let Ok(r) = cloud.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity) {
            assert!(r.healthy());
            ok += 1;
        }
    }
    let stats = cloud.protocol_stats();
    println!(
        "\nfaulty network: {ok}/10 attestations converged\n  \
         sent={} retries={} drops={} dup-rejected={} auth-failures={}",
        stats.messages_sent,
        stats.retries,
        stats.drops_seen,
        stats.duplicates_rejected,
        stats.auth_failures
    );
    if let Some(f) = cloud.network_mut().fault_stats() {
        println!(
            "  injected: dropped={} duplicated={} corrupted={} delayed={}",
            f.dropped, f.duplicated, f.corrupted, f.delayed
        );
    }

    // 3. Total blackout: the periodic monitor records missed samples,
    //    escalates after 3 consecutive misses, and migration restores
    //    monitorability.
    let home = cloud.server_of(vid).expect("placed");
    let sub = cloud.runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 5_000_000)?;
    cloud
        .network_mut()
        .set_fault_model(FaultModel::new(1).drop_prob(1.0));
    cloud.run(20_000_000);
    let health = cloud.subscription_health(sub)?;
    println!(
        "\nblackout: missed={} escalations={} — VM moved {} -> {}",
        health.missed,
        health.escalations,
        home,
        cloud.server_of(vid).expect("still managed"),
    );
    for report in cloud.stop_attest_periodic(sub)? {
        println!(
            "  report at {:.1}s: {:?}",
            report.issued_at_us as f64 / 1e6,
            report.status
        );
    }
    Ok(())
}
