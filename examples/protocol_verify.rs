//! Section 7.2.2: formal verification of the attestation protocol with
//! the bounded Dolev-Yao verifier, plus attack-finding on the weakened
//! variants that drop each protocol ingredient.
//!
//! ```sh
//! cargo run --example protocol_verify
//! ```

use cloudmonatt::verifier::cloudmonatt::{verify_cloudmonatt, ModelConfig};

fn check(name: &str, config: &ModelConfig) {
    let outcome = verify_cloudmonatt(config);
    if outcome.verified() {
        println!(
            "[VERIFIED]     {name} ({} branches explored)",
            outcome.branches
        );
    } else {
        println!("[ATTACK FOUND] {name}:");
        for v in &outcome.violations {
            println!("    {}: {}", v.property, v.detail);
        }
    }
}

fn main() {
    println!("CloudMonatt attestation protocol (Figure 3) under a Dolev-Yao attacker\n");
    check("full protocol", &ModelConfig::full());
    check(
        "full protocol, attacker recorded an old session and knows Kz",
        &ModelConfig::full_under_strong_adversary(),
    );
    check(
        "quotes unsigned + compromised host hop",
        &ModelConfig {
            sign_quotes: false,
            leak_kz: true,
            ..ModelConfig::full()
        },
    );
    check(
        "channels unencrypted",
        &ModelConfig {
            encrypt_channels: false,
            ..ModelConfig::full()
        },
    );
    check(
        "no nonces, long-term signing key, recorded session (replay)",
        &ModelConfig {
            include_nonces: false,
            fresh_attestation_key: false,
            preload_old_session: true,
            ..ModelConfig::full()
        },
    );
}
