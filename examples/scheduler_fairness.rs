//! Extensibility demo: CloudMonatt's framework supports "an arbitrary
//! number of security properties and monitoring mechanisms" — here, a
//! CC-Hunter-inspired *scheduler fairness* property added on top of the
//! paper's four case studies. It flags the attacker VM of the boost
//! attack directly by the density of its boosted wake-ups (from the PMU,
//! via the Trust Evidence Registers).
//!
//! ```sh
//! cargo run --example scheduler_fairness
//! ```

use cloudmonatt::core::{
    CloudBuilder, Flavor, Image, ResponseAction, SecurityProperty, ServerId, VmRequest,
    WorkloadSpec,
};
use cloudmonatt::workloads::CloudService;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cloud = CloudBuilder::new().servers(2).seed(99).build();

    // A boost attacker and its victim on pCPU 0 of server 0.
    let attacker = cloud.request_vm(
        VmRequest::new(Flavor::Medium, Image::Cirros)
            .require(SecurityProperty::SchedulerFairness)
            .workload(WorkloadSpec::BoostAttack)
            .on_server(ServerId(0))
            .pin_pcpu(0),
    )?;
    let victim = cloud.request_vm(
        VmRequest::new(Flavor::Small, Image::Ubuntu)
            .workload(WorkloadSpec::Busy)
            .on_server(ServerId(0))
            .pin_pcpu(0),
    )?;
    cloud.advance(1_000_000);

    // Attest the attacker itself for scheduler fairness.
    let report = cloud.runtime_attest_current(attacker, SecurityProperty::SchedulerFairness)?;
    println!("attacker {attacker}: {:?}", report.status);
    assert!(!report.healthy());

    // The victim is not the abuser.
    let report = cloud.runtime_attest_current(victim, SecurityProperty::SchedulerFairness)?;
    println!("victim {victim}:  {:?}", report.status);

    // Benign I/O-heavy services stay below the threshold.
    for svc in [CloudService::Mail, CloudService::Database] {
        let vm = cloud.request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .workload(WorkloadSpec::Service(svc))
                .on_server(ServerId(1)),
        )?;
        let report = cloud.runtime_attest_current(vm, SecurityProperty::SchedulerFairness)?;
        println!("{svc} service: {:?}", report.status);
    }

    // Terminate the abuser (the policy for this property).
    let timing = cloud.respond(attacker, ResponseAction::Termination)?;
    println!(
        "\nterminated the abusive VM in {:.2}s; victim recovers its CPU",
        timing.response_us as f64 / 1e6
    );
    Ok(())
}
