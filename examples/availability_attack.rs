//! Case Study IV end to end: the IPI-boost CPU availability attack
//! starves a victim VM; the VMM Profile Tool's CPU-time measurement
//! reveals the starvation, and the automatic Response Module migrates
//! the victim to a healthy server.
//!
//! ```sh
//! cargo run --example availability_attack
//! ```

use cloudmonatt::core::{
    CloudBuilder, Flavor, Image, SecurityProperty, ServerId, VmRequest, WorkloadSpec,
};

const SLA: SecurityProperty = SecurityProperty::CpuAvailability { min_share_pct: 50 };

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cloud = CloudBuilder::new()
        .servers(2)
        .seed(23)
        .auto_response(true) // remediation fires automatically
        .build();

    let victim = cloud.request_vm(
        VmRequest::new(Flavor::Small, Image::Ubuntu)
            .require(SLA)
            .workload(WorkloadSpec::Busy)
            .on_server(ServerId(0))
            .pin_pcpu(0),
    )?;
    let healthy = cloud.runtime_attest_current(victim, SLA)?;
    println!("before attack: {:?}", healthy.status);

    // The attacker VM arrives on the same pCPU.
    let attacker = cloud.request_vm(
        VmRequest::new(Flavor::Medium, Image::Cirros)
            .workload(WorkloadSpec::BoostAttack)
            .on_server(ServerId(0))
            .pin_pcpu(0),
    )?;
    println!("attacker {attacker} co-located with {victim}");
    cloud.advance(1_000_000);

    // The next attestation detects the starvation and (auto_response)
    // migrates the victim.
    let report = cloud.runtime_attest_current(victim, SLA)?;
    println!("\nunder attack: {:?}", report.status);
    println!("victim now on {}", cloud.server_of(victim).expect("placed"));

    let after = cloud.runtime_attest_current(victim, SLA)?;
    println!("after migration: {:?}", after.status);
    assert!(after.healthy());
    Ok(())
}
