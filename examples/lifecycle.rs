//! The VM security lifecycle of Section 5: launch with startup
//! attestation (rejecting a tampered image), runtime monitoring, and the
//! three remediation responses with their Figure 11 timings.
//!
//! ```sh
//! cargo run --example lifecycle
//! ```

use cloudmonatt::core::{
    CloudBuilder, CloudError, Flavor, Image, ResponseAction, SecurityProperty, VmRequest,
    WorkloadSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cloud = CloudBuilder::new()
        .servers(3)
        .seed(77)
        .corrupt_platform(0)
        .build();

    // 1. A tampered image is rejected at launch.
    let rejected = cloud.request_vm(
        VmRequest::new(Flavor::Small, Image::Fedora)
            .require(SecurityProperty::StartupIntegrity)
            .with_tampered_image(),
    );
    match rejected {
        Err(CloudError::LaunchRejected { reason }) => {
            println!("tampered image rejected at launch:\n  {reason}")
        }
        other => println!("unexpected: {other:?}"),
    }

    // 2. A clean VM avoids the corrupted platform (server 0).
    let vid = cloud.request_vm(
        VmRequest::new(Flavor::Medium, Image::Fedora)
            .require(SecurityProperty::StartupIntegrity)
            .require(SecurityProperty::RuntimeIntegrity)
            .workload(WorkloadSpec::Busy),
    )?;
    println!(
        "\nclean VM {vid} placed on {} (server-0 has a trojaned hypervisor)",
        cloud.server_of(vid).expect("placed")
    );

    // 3. Runtime infection is caught by VM introspection.
    cloud.infect_vm(vid, "stealth-rootkit")?;
    let report = cloud.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)?;
    println!("\nafter infection: {:?}", report.status);

    // 4. The three responses, timed (Figure 11).
    for action in [
        ResponseAction::Suspension,
        ResponseAction::Migration,
        ResponseAction::Termination,
    ] {
        if action == ResponseAction::Migration {
            cloud.resume(vid)?; // resume before migrating
        }
        let timing = cloud.respond(vid, action)?;
        println!(
            "{action}: {:.2}s (VM state: {:?})",
            timing.response_us as f64 / 1e6,
            cloud.vm_state(vid).expect("known")
        );
    }
    Ok(())
}
