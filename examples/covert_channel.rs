//! Case Study III end to end: a malicious VM leaks data over the CPU
//! covert channel; CloudMonatt's Trust Evidence Registers expose the
//! bimodal usage-interval pattern, the Attestation Server's clustering
//! detects it, and the Response Module migrates the co-resident victim.
//!
//! ```sh
//! cargo run --example covert_channel
//! ```

use cloudmonatt::core::{
    CloudBuilder, Flavor, HealthStatus, Image, SecurityProperty, ServerId, VmRequest, WorkloadSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cloud = CloudBuilder::new().servers(2).seed(11).build();

    // The attacker pair: a covert-channel sender co-resident with a
    // victim on pCPU 0 of server 0.
    let sender = cloud.request_vm(
        VmRequest::new(Flavor::Small, Image::Cirros)
            .require(SecurityProperty::CovertChannelFreedom)
            .workload(WorkloadSpec::CovertSender)
            .on_server(ServerId(0))
            .pin_pcpu(0),
    )?;
    let victim = cloud.request_vm(
        VmRequest::new(Flavor::Small, Image::Ubuntu)
            .workload(WorkloadSpec::Busy)
            .on_server(ServerId(0))
            .pin_pcpu(0),
    )?;
    println!("sender {sender} and victim {victim} share server-0 pCPU 0");

    // Let the channel run for a while.
    cloud.advance(1_000_000);

    // The customer (or provider) attests the sender VM for
    // covert-channel freedom.
    let report = cloud.runtime_attest_current(sender, SecurityProperty::CovertChannelFreedom)?;
    match &report.status {
        HealthStatus::Compromised { reason } => {
            println!("\nATTESTATION FAILED (as it should):\n  {reason}");
        }
        other => println!("\nunexpected: channel not detected ({other:?})"),
    }

    // Remediation: migrate the victim away from the bad neighbour.
    let timing = cloud.respond(victim, cloudmonatt::core::ResponseAction::Migration)?;
    println!(
        "\nresponse: migrated {victim} to {} in {:.2}s",
        cloud.server_of(victim).expect("placed"),
        timing.response_us as f64 / 1e6
    );
    Ok(())
}
