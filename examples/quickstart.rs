//! Quickstart: build a small cloud, launch a VM with security
//! properties, and run the Table 1 attestation APIs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cloudmonatt::core::{CloudBuilder, Flavor, Image, SecurityProperty, VmRequest, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-server cloud, like the paper's testbed.
    let mut cloud = CloudBuilder::new().servers(3).seed(42).build();

    // The customer requests a VM and asks for monitoring of two
    // security properties.
    let vid = cloud.request_vm(
        VmRequest::new(Flavor::Medium, Image::Ubuntu)
            .require(SecurityProperty::StartupIntegrity)
            .require(SecurityProperty::RuntimeIntegrity)
            .workload(WorkloadSpec::Busy),
    )?;
    let timing = cloud.last_launch_timing().expect("launch recorded");
    println!("launched {vid} in {:.2}s:", timing.total_us() as f64 / 1e6);
    println!("  scheduling   {:.2}s", timing.scheduling_us as f64 / 1e6);
    println!("  networking   {:.2}s", timing.networking_us as f64 / 1e6);
    println!("  block-device {:.2}s", timing.block_device_us as f64 / 1e6);
    println!("  spawning     {:.2}s", timing.spawning_us as f64 / 1e6);
    println!(
        "  attestation  {:.2}s (the CloudMonatt stage)",
        timing.attestation_us as f64 / 1e6
    );

    // One-time startup attestation.
    let report = cloud.startup_attest_current(vid, SecurityProperty::StartupIntegrity)?;
    println!("\nstartup integrity: {:?}", report.status);

    // One-time runtime attestation.
    let report = cloud.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)?;
    println!("runtime integrity: {:?}", report.status);

    // Periodic attestation at 5 s for half a minute.
    let sub = cloud.runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 5_000_000)?;
    cloud.run(30_000_000);
    let reports = cloud.stop_attest_periodic(sub)?;
    println!(
        "periodic attestation: {} fresh reports, all healthy: {}",
        reports.len(),
        reports.iter().all(|r| r.healthy())
    );
    Ok(())
}
