//! # CloudMonatt
//!
//! A full-system reproduction of *CloudMonatt: an Architecture for Security
//! Health Monitoring and Attestation of Virtual Machines in Cloud Computing*
//! (Zhang & Lee, ISCA 2015).
//!
//! This facade crate re-exports every subsystem of the reproduction:
//!
//! * [`core`] — the CloudMonatt architecture itself: Cloud Controller,
//!   Attestation Server, Cloud Server agents, the Figure-3 attestation
//!   protocol, property interpretation, VM lifecycle and remediation
//!   responses.
//! * [`crypto`] — from-scratch cryptographic substrate (SHA-256, HMAC, HKDF,
//!   AES-128-CTR, ChaCha20 DRBG, Schnorr signatures and Diffie-Hellman over a
//!   256-bit safe-prime group).
//! * [`tpm`] — the Trust Module: PCRs, Trust Evidence Registers, identity and
//!   per-session attestation keys, quote generation.
//! * [`hypervisor`] — a discrete-event Xen-style cloud server simulator with
//!   a credit scheduler (UNDER/OVER/BOOST), IPIs, VM introspection, a VMM
//!   profile tool and a performance monitor unit.
//! * [`workloads`] — SPEC-like CPU-bound programs and cloud service workload
//!   models (database, file, web, app, stream, mail).
//! * [`attacks`] — the paper's two new attacks (CPU covert channel,
//!   IPI-boost availability attack) plus rootkit and image-tampering threats.
//! * [`net`] — simulated network with Dolev-Yao attacker hooks and an
//!   SSL-like authenticated secure channel.
//! * [`verifier`] — a bounded symbolic (Dolev-Yao) protocol verifier used to
//!   check the attestation protocol's secrecy, integrity and authentication
//!   properties (Section 7.2.2 of the paper).
//!
//! ## Quickstart
//!
//! ```
//! use cloudmonatt::core::{CloudBuilder, Flavor, Image, SecurityProperty, VmRequest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cloud = CloudBuilder::new().servers(2).seed(42).build();
//! let vid = cloud.request_vm(
//!     VmRequest::new(Flavor::Small, Image::Cirros)
//!         .require(SecurityProperty::StartupIntegrity),
//! )?;
//! let report = cloud.startup_attest_current(vid, SecurityProperty::StartupIntegrity)?;
//! assert!(report.healthy());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use monatt_attacks as attacks;
pub use monatt_core as core;
pub use monatt_crypto as crypto;
pub use monatt_hypervisor as hypervisor;
pub use monatt_net as net;
pub use monatt_tpm as tpm;
pub use monatt_verifier as verifier;
pub use monatt_workloads as workloads;
