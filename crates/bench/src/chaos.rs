//! **Chaos sweep** — node-level failure injection under load. Each cell
//! of the MTBF × loss × fleet grid runs a fleet of periodic
//! attestations for 30 virtual seconds while servers crash and recover
//! on a seeded renewal process, messages drop, the admission gate
//! sheds bursts and every session carries an end-to-end deadline. The
//! harness is an executable liveness proof, not a latency figure: each
//! cell asserts that every started session terminated, that the
//! counters reconcile exactly, and that every surviving VM ended on a
//! live server. A wedged queue, a leaked session or a stranded VM
//! fails the sweep loudly.

use monatt_core::{
    CloudBuilder, Flavor, Image, NodeId, OutageModel, SecurityProperty, VmLifecycle, VmRequest,
};
use monatt_net::sim::FaultModel;

/// Control-plane churn grid: fleet sizes for the replicated
/// control-plane cells (the acceptance bar is ≥ 1k subscriptions).
pub const CP_FLEETS: [usize; 1] = [1_024];
/// (K controller instances, N AS replicas) configurations swept.
pub const CP_CONFIGS: [(u32, u32); 3] = [(2, 2), (3, 2), (4, 3)];
/// Control-plane MTBF axis (µs); MTTR is MTBF/4.
pub const CP_MTBFS: [u64; 2] = [4_000_000, 10_000_000];

/// Reduced control-plane grid for the CI smoke run.
pub const CP_SMOKE_FLEETS: [usize; 1] = [64];
/// Smoke-run (K, N) axis.
pub const CP_SMOKE_CONFIGS: [(u32, u32); 1] = [(3, 2)];
/// Smoke-run control-plane MTBF axis.
pub const CP_SMOKE_MTBFS: [u64; 1] = [4_000_000];

/// The full grid: every combination of these axes.
pub const FLEETS: [usize; 2] = [4, 16];
/// Mean time between failures per server (µs).
pub const MTBFS: [u64; 2] = [4_000_000, 10_000_000];
/// Message drop probabilities.
pub const LOSSES: [f64; 2] = [0.0, 0.10];

/// Reduced grid for the CI smoke run.
pub const SMOKE_FLEETS: [usize; 1] = [4];
/// Smoke-run MTBF axis.
pub const SMOKE_MTBFS: [u64; 1] = [4_000_000];
/// Smoke-run loss axis.
pub const SMOKE_LOSSES: [f64; 1] = [0.10];

/// Event-engine shards every cell runs on. Shard ordering is
/// K-invariant (least `(due_us, seq)` wins the merge), so the sweep
/// doubles as a liveness check of the sharded configuration: the
/// committed numbers are identical to the K=1 engine's.
pub const SHARDS: usize = 4;

/// Virtual time each cell runs for.
const HORIZON_US: u64 = 30_000_000;
/// The shared subscription period.
const PERIOD_US: u64 = 1_000_000;
/// Per-session deadline budget — generous against the clean path, so
/// it only fires on sessions wedged behind loss and crashes.
const DEADLINE_US: u64 = 500_000;

/// One verified cell of the chaos sweep.
#[derive(Clone, Copy, Debug)]
pub struct ChaosRow {
    /// Concurrent periodic subscriptions.
    pub fleet: usize,
    /// Per-server mean time between failures (µs).
    pub mtbf_us: u64,
    /// Message drop probability.
    pub loss: f64,
    /// Server crashes the renewal process injected.
    pub crashes: u64,
    /// Recoveries that fired within the horizon.
    pub recoveries: u64,
    /// VMs migrated off crashed servers.
    pub evacuations: u64,
    /// VMs terminated because no live server had capacity.
    pub evacuation_failures: u64,
    /// Secure channels re-keyed on recovery.
    pub rehandshakes: u64,
    /// Sessions started (admitted) over the horizon.
    pub sessions_started: u64,
    /// Sessions that finished with a verdict.
    pub sessions_completed: u64,
    /// Sessions that failed (crash fail-fast, deadline, unreachable).
    pub sessions_failed: u64,
    /// Sessions refused by the admission gate before starting.
    pub sessions_shed: u64,
    /// Sessions aborted on their deadline budget.
    pub deadlines_exceeded: u64,
    /// Sessions failed fast on a crashed node.
    pub node_down_failures: u64,
    /// Retransmissions the lossy/chaotic run needed.
    pub retries: u64,
    /// Records the fault model dropped.
    pub dropped: u64,
    /// Records black-holed at a down node.
    pub blackholed: u64,
    /// VMs still running at the end (on live servers — verified).
    pub vms_alive: usize,
    /// VMs terminated (responses or failed evacuations).
    pub vms_terminated: usize,
    /// Composite-program attestations (layered + fan-out) that reached
    /// a verdict under the chaos. Struct-only: the committed JSON rows
    /// keep their schema.
    pub composite_ok: u64,
    /// Composite-program attestations that failed with a typed error
    /// (node down, deadline, shed, unreachable).
    pub composite_err: u64,
}

/// Runs and verifies one cell of the grid.
fn measure(fleet: usize, mtbf_us: u64, loss: f64) -> ChaosRow {
    let servers = fleet.div_ceil(4) + 3;
    let seed = 0xCA05 ^ (fleet as u64) ^ mtbf_us ^ ((loss * 100.0) as u64).rotate_left(17);
    let mut cloud = CloudBuilder::new()
        .servers(servers)
        .pcpus_per_server(16)
        .seed(seed)
        .shards(SHARDS)
        .session_deadline(DEADLINE_US)
        // Three quarters of a simultaneous round: the burst at each
        // shared period sheds its tail, then hysteresis re-admits.
        .admission_control((fleet * 3 / 4).max(2), (fleet * 3 / 8).max(1))
        .build();
    let mut vids = Vec::with_capacity(fleet);
    for _ in 0..fleet {
        let vid = cloud
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .expect("launch on a healthy fleet");
        vids.push(vid);
    }
    for &vid in &vids {
        cloud
            .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, PERIOD_US)
            .expect("subscribe");
    }
    if loss > 0.0 {
        cloud
            .network_mut()
            .set_fault_model(FaultModel::new(seed ^ 0xD1CE).drop_prob(loss));
    }
    cloud.set_outage_model(OutageModel::new(seed ^ 0x0A6E).mtbf(mtbf_us, mtbf_us / 4));
    cloud.reset_protocol_stats();
    // The composite protocol programs ride the same chaos: every few
    // virtual seconds one VM gets a layered attestation (delegated
    // platform appraisal + gate) and a two-property fan-out alongside
    // the periodic fleet. Their child sessions enter the same ledger,
    // so the reconciliation invariants below also prove fork/join never
    // leaks or double-counts a session under crashes, loss, deadlines
    // and shedding. Typed failures are expected outcomes here.
    const COMPOSITE_EVERY_US: u64 = 5_000_000;
    let mut composite_ok = 0u64;
    let mut composite_err = 0u64;
    for chunk in 0..HORIZON_US / COMPOSITE_EVERY_US {
        cloud.run(COMPOSITE_EVERY_US);
        let vid = vids[chunk as usize % vids.len()];
        if matches!(cloud.vm_state(vid), Some(VmLifecycle::Terminated) | None) {
            continue;
        }
        match cloud.layered_attest(vid, SecurityProperty::RuntimeIntegrity) {
            Ok(_) => composite_ok += 1,
            Err(_) => composite_err += 1,
        }
        match cloud.multi_attest(
            vid,
            &[
                SecurityProperty::RuntimeIntegrity,
                SecurityProperty::StartupIntegrity,
            ],
        ) {
            Ok(_) => composite_ok += 1,
            Err(_) => composite_err += 1,
        }
    }

    let stats = cloud.protocol_stats();
    let outages = cloud.outage_stats();
    let dropped = cloud
        .network_mut()
        .fault_stats()
        .map(|f| f.dropped)
        .unwrap_or(0);
    let blackholed = cloud.network_mut().blackholed();

    // Liveness invariant 1: nothing wedged — every started session
    // terminated before the queue drained.
    assert_eq!(
        cloud.sessions_in_flight(),
        0,
        "stuck sessions in cell fleet={fleet} mtbf={mtbf_us} loss={loss}: {stats:?}"
    );
    // Invariant 2: the session ledger reconciles exactly; shed sessions
    // never entered it.
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed,
        "session ledger out of balance: {stats:?}"
    );
    // Invariant 3: every sender-side drop is accounted for by a fault
    // injection or a black hole.
    assert_eq!(
        stats.drops_seen,
        dropped + blackholed,
        "drop ledger out of balance: {stats:?} dropped={dropped} blackholed={blackholed}"
    );
    // Invariant 4: every crash is matched by a recovery or the node is
    // still down at the horizon.
    assert_eq!(
        outages.crashes,
        outages.recoveries + cloud.down_nodes().len() as u64,
        "outage ledger out of balance: {outages:?}"
    );
    // Invariant 5: the per-shard queue peaks break down the merged
    // high-water mark — no shard ever held more than the whole engine.
    let depths = cloud.shard_queue_depths();
    assert_eq!(depths.len(), SHARDS, "shard breakdown missing: {depths:?}");
    assert!(
        depths.iter().all(|&d| d as u64 <= stats.max_queue_depth),
        "shard peak above merged peak: {depths:?} vs {}",
        stats.max_queue_depth
    );
    // Invariant 6: no VM is stranded on a crashed server.
    let mut vms_alive = 0;
    let mut vms_terminated = 0;
    for &vid in &vids {
        match cloud.vm_state(vid) {
            Some(VmLifecycle::Terminated) | None => vms_terminated += 1,
            _ => {
                vms_alive += 1;
                let server = cloud.server_of(vid).expect("live VM has a server");
                assert!(
                    !cloud.node_is_down(NodeId::Server(server)),
                    "vm {vid:?} stranded on crashed {server:?}"
                );
            }
        }
    }
    assert_eq!(
        vms_terminated as u64,
        outages.evacuation_failures + terminations_by_response(&stats),
        "vm ledger out of balance: {outages:?}"
    );

    ChaosRow {
        fleet,
        mtbf_us,
        loss,
        crashes: outages.crashes,
        recoveries: outages.recoveries,
        evacuations: outages.evacuations,
        evacuation_failures: outages.evacuation_failures,
        rehandshakes: outages.rehandshakes,
        sessions_started: stats.sessions_started,
        sessions_completed: stats.sessions_completed,
        sessions_failed: stats.sessions_failed,
        sessions_shed: stats.sessions_shed,
        deadlines_exceeded: stats.deadlines_exceeded,
        node_down_failures: outages.node_down_failures,
        retries: stats.retries,
        dropped,
        blackholed,
        vms_alive,
        vms_terminated,
        composite_ok,
        composite_err,
    }
}

/// Auto-response is off in the sweep, so the only terminations are
/// failed evacuations; kept as a named hook so the invariant reads as
/// a ledger.
fn terminations_by_response(_stats: &monatt_core::ProtocolStats) -> u64 {
    0
}

/// One verified cell of the control-plane churn sweep: a replicated
/// control plane (K controller instances, N AS replicas) under its own
/// MTBF renewal process while the server fleet stays healthy, so every
/// failure in the cell is a controller or AS-replica failure.
#[derive(Clone, Copy, Debug)]
pub struct ControlPlaneRow {
    /// Concurrent periodic subscriptions.
    pub fleet: usize,
    /// Controller instances (shard count).
    pub k: u32,
    /// AS replicas in the pool.
    pub n: u32,
    /// Control-plane mean time between failures (µs).
    pub mtbf_us: u64,
    /// Controller/AS-replica crashes injected.
    pub crashes: u64,
    /// Recoveries that fired within the horizon.
    pub recoveries: u64,
    /// Controller crashes that moved ≥ 1 owned shard to a standby.
    pub failovers: u64,
    /// Shards adopted by a standby after a controller crash.
    pub shards_adopted: u64,
    /// Shards taken back after a controller recovery.
    pub shards_reclaimed: u64,
    /// Sessions admitted against a non-preferred AS replica.
    pub as_reroutes: u64,
    /// Sessions admitted against a standby controller instance.
    pub failover_sessions: u64,
    /// Channel re-keys deferred to first use at recovery time.
    pub deferred_rekeys: u64,
    /// Re-handshakes actually performed (first post-recovery use).
    pub rehandshakes: u64,
    /// Sessions started over the horizon.
    pub sessions_started: u64,
    /// Sessions that finished with a verdict.
    pub sessions_completed: u64,
    /// Sessions that failed (fail-fast on a crashed hop, deadline).
    pub sessions_failed: u64,
    /// Sessions failed fast on a crashed node.
    pub node_down_failures: u64,
    /// Retransmissions over the control-plane retry ladders.
    pub retries: u64,
}

/// Runs and verifies one cell of the control-plane churn grid.
fn measure_control_plane(fleet: usize, k: u32, n: u32, mtbf_us: u64) -> ControlPlaneRow {
    let servers = fleet.div_ceil(4) + 3;
    let seed = 0xC1A0 ^ (fleet as u64) ^ mtbf_us ^ (u64::from(k) << 32) ^ (u64::from(n) << 40);
    let mut cloud = CloudBuilder::new()
        .servers(servers)
        .pcpus_per_server(16)
        .seed(seed)
        .shards(SHARDS)
        .control_plane(k, n)
        .session_deadline(DEADLINE_US)
        .admission_control((fleet * 3 / 4).max(2), (fleet * 3 / 8).max(1))
        .build();
    let mut vids = Vec::with_capacity(fleet);
    for _ in 0..fleet {
        let vid = cloud
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .expect("launch on a healthy fleet");
        vids.push(vid);
    }
    for &vid in &vids {
        cloud
            .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, PERIOD_US)
            .expect("subscribe");
    }
    // Only the control plane churns: crashes land mid-burst on
    // controllers and AS replicas, never on servers, so the cell
    // isolates failover + rerouting from evacuation.
    cloud
        .set_outage_model(OutageModel::new(seed ^ 0x0A6E).control_plane_mtbf(mtbf_us, mtbf_us / 4));
    cloud.reset_protocol_stats();
    cloud.run(HORIZON_US);

    let stats = cloud.protocol_stats();
    let outages = cloud.outage_stats();
    let cp = cloud.control_plane_stats();

    // Invariant 1: nothing wedged.
    assert_eq!(
        cloud.sessions_in_flight(),
        0,
        "stuck sessions in cp cell fleet={fleet} k={k} n={n} mtbf={mtbf_us}: {stats:?}"
    );
    // Invariant 2: the session ledger reconciles exactly.
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed,
        "session ledger out of balance: {stats:?}"
    );
    // Invariant 3: the outage ledger reconciles (a node may still be
    // down at the horizon).
    assert_eq!(
        outages.crashes,
        outages.recoveries + cloud.down_nodes().len() as u64,
        "outage ledger out of balance: {outages:?}"
    );
    // Invariant 4: every VM's subscription is owned by exactly one
    // *live* controller shard (ownership is a total function of the
    // up-set whenever any instance is live).
    let topology = cloud.control_plane();
    for &vid in &vids {
        let shard = topology.shard_of(vid);
        let owner = topology
            .owner_of_shard(shard)
            .expect("ownerless shard with a live instance");
        assert!(
            topology.controller_is_live(owner),
            "shard {shard} owned by a dead instance {owner}"
        );
    }
    // Invariant 5: no server ever crashed, so no VM moved or died —
    // every failure in this cell is a control-plane failure.
    assert_eq!(outages.evacuations, 0, "{outages:?}");
    assert!(
        vids.iter()
            .all(|&v| !matches!(cloud.vm_state(v), Some(VmLifecycle::Terminated) | None)),
        "control-plane churn terminated a VM"
    );

    ControlPlaneRow {
        fleet,
        k,
        n,
        mtbf_us,
        crashes: outages.crashes,
        recoveries: outages.recoveries,
        failovers: cp.failovers,
        shards_adopted: cp.shards_adopted,
        shards_reclaimed: cp.shards_reclaimed,
        as_reroutes: cp.as_reroutes,
        failover_sessions: cp.failover_sessions,
        deferred_rekeys: outages.deferred_rekeys,
        rehandshakes: outages.rehandshakes,
        sessions_started: stats.sessions_started,
        sessions_completed: stats.sessions_completed,
        sessions_failed: stats.sessions_failed,
        node_down_failures: outages.node_down_failures,
        retries: stats.retries,
    }
}

/// Sweeps the control-plane churn grid.
pub fn run_control_plane(
    fleets: &[usize],
    configs: &[(u32, u32)],
    mtbfs: &[u64],
) -> Vec<ControlPlaneRow> {
    let mut rows = Vec::new();
    for &fleet in fleets {
        for &(k, n) in configs {
            for &mtbf in mtbfs {
                rows.push(measure_control_plane(fleet, k, n, mtbf));
            }
        }
    }
    rows
}

/// Prints the control-plane sweep as a table.
pub fn print_control_plane(rows: &[ControlPlaneRow]) {
    println!("Control-plane churn: sharded controllers + AS replica pool under MTBF churn");
    println!("(liveness + single-live-owner invariants verified per cell)");
    println!(
        "fleet\tk\tn\tmtbf\tcrashes\trecov\tfailover\tadopted\treclaim\treroute\tfo_sess\tdeferred\trekey\tstarted\tdone\tfailed\tnodedown\tretries"
    );
    for row in rows {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            row.fleet,
            row.k,
            row.n,
            crate::fmt_secs(row.mtbf_us),
            row.crashes,
            row.recoveries,
            row.failovers,
            row.shards_adopted,
            row.shards_reclaimed,
            row.as_reroutes,
            row.failover_sessions,
            row.deferred_rekeys,
            row.rehandshakes,
            row.sessions_started,
            row.sessions_completed,
            row.sessions_failed,
            row.node_down_failures,
            row.retries,
        );
    }
}

/// Renders both sweeps as the committed `BENCH_chaos.json` document.
pub fn to_json_with_control_plane(rows: &[ChaosRow], cp_rows: &[ControlPlaneRow]) -> String {
    let mut out = to_json(rows);
    // Splice the control-plane grid in after the first array's closing
    // bracket (the only `]` in the document so far).
    let close = out.rfind(']').expect("chaos_sweep array close");
    out.truncate(close + 1);
    out.push_str(",\n  \"control_plane_churn\": [\n");
    for (i, row) in cp_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fleet\": {}, \"k\": {}, \"n\": {}, \"mtbf_us\": {}, \"crashes\": {}, \
             \"recoveries\": {}, \"failovers\": {}, \"shards_adopted\": {}, \
             \"shards_reclaimed\": {}, \"as_reroutes\": {}, \"failover_sessions\": {}, \
             \"deferred_rekeys\": {}, \"rehandshakes\": {}, \"sessions_started\": {}, \
             \"sessions_completed\": {}, \"sessions_failed\": {}, \"node_down_failures\": {}, \
             \"retries\": {}}}{}\n",
            row.fleet,
            row.k,
            row.n,
            row.mtbf_us,
            row.crashes,
            row.recoveries,
            row.failovers,
            row.shards_adopted,
            row.shards_reclaimed,
            row.as_reroutes,
            row.failover_sessions,
            row.deferred_rekeys,
            row.rehandshakes,
            row.sessions_started,
            row.sessions_completed,
            row.sessions_failed,
            row.node_down_failures,
            row.retries,
            if i + 1 == cp_rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Sweeps the full cross product of the given axes.
pub fn run(fleets: &[usize], mtbfs: &[u64], losses: &[f64]) -> Vec<ChaosRow> {
    let mut rows = Vec::new();
    for &fleet in fleets {
        for &mtbf in mtbfs {
            for &loss in losses {
                rows.push(measure(fleet, mtbf, loss));
            }
        }
    }
    rows
}

/// Prints the sweep as a table.
pub fn print(rows: &[ChaosRow]) {
    println!("Chaos sweep: periodic attestation fleets under crash/recovery churn");
    println!("(all liveness invariants verified per cell)");
    println!(
        "fleet\tmtbf\tloss\tcrashes\trecov\tevac\trekey\tstarted\tdone\tfailed\tshed\tdeadline\tnodedown\tretries\talive\tdead\tcomposite"
    );
    for row in rows {
        println!(
            "{}\t{}\t{:.0}%\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            row.fleet,
            crate::fmt_secs(row.mtbf_us),
            row.loss * 100.0,
            row.crashes,
            row.recoveries,
            row.evacuations,
            row.rehandshakes,
            row.sessions_started,
            row.sessions_completed,
            row.sessions_failed,
            row.sessions_shed,
            row.deadlines_exceeded,
            row.node_down_failures,
            row.retries,
            row.vms_alive,
            row.vms_terminated,
            row.composite_ok + row.composite_err,
        );
    }
}

/// Renders the sweep as the committed `BENCH_chaos.json` document.
pub fn to_json(rows: &[ChaosRow]) -> String {
    let mut out = String::from("{\n  \"chaos_sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fleet\": {}, \"mtbf_us\": {}, \"loss\": {:.2}, \"crashes\": {}, \
             \"recoveries\": {}, \"evacuations\": {}, \"evacuation_failures\": {}, \
             \"rehandshakes\": {}, \"sessions_started\": {}, \"sessions_completed\": {}, \
             \"sessions_failed\": {}, \"sessions_shed\": {}, \"deadlines_exceeded\": {}, \
             \"node_down_failures\": {}, \"retries\": {}, \"dropped\": {}, \
             \"blackholed\": {}, \"vms_alive\": {}, \"vms_terminated\": {}}}{}\n",
            row.fleet,
            row.mtbf_us,
            row.loss,
            row.crashes,
            row.recoveries,
            row.evacuations,
            row.evacuation_failures,
            row.rehandshakes,
            row.sessions_started,
            row.sessions_completed,
            row.sessions_failed,
            row.sessions_shed,
            row.deadlines_exceeded,
            row.node_down_failures,
            row.retries,
            row.dropped,
            row.blackholed,
            row.vms_alive,
            row.vms_terminated,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cell_injects_chaos_and_verifies_invariants() {
        // `measure` asserts every liveness invariant internally; this
        // test additionally checks the chaos actually happened.
        let rows = run(&SMOKE_FLEETS, &SMOKE_MTBFS, &SMOKE_LOSSES);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.crashes > 0, "{row:?}");
        assert!(row.rehandshakes > 0, "{row:?}");
        assert!(row.sessions_completed > 0, "{row:?}");
        assert!(row.retries > 0, "{row:?}");
        // The composite programs (layered + fan-out) rode the same
        // chaos and every call resolved to a verdict or a typed error.
        assert!(row.composite_ok + row.composite_err >= 6, "{row:?}");
        assert!(row.composite_ok > 0, "{row:?}");
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run(&SMOKE_FLEETS, &SMOKE_MTBFS, &SMOKE_LOSSES);
        let b = run(&SMOKE_FLEETS, &SMOKE_MTBFS, &SMOKE_LOSSES);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn control_plane_smoke_cell_churns_and_reconciles() {
        // `measure_control_plane` asserts the liveness and
        // single-live-owner invariants internally; this additionally
        // checks the churn actually exercised failover and rerouting.
        let rows = run_control_plane(&CP_SMOKE_FLEETS, &CP_SMOKE_CONFIGS, &CP_SMOKE_MTBFS);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.crashes > 0, "{row:?}");
        assert!(row.sessions_completed > 0, "{row:?}");
        // With K=3/N=2 under a 4 s MTBF, both failure classes fire.
        assert!(row.failovers > 0, "{row:?}");
        assert!(row.as_reroutes > 0, "{row:?}");
        assert!(row.deferred_rekeys > 0, "{row:?}");
    }

    #[test]
    fn control_plane_sweep_is_deterministic() {
        let a = run_control_plane(&CP_SMOKE_FLEETS, &CP_SMOKE_CONFIGS, &CP_SMOKE_MTBFS);
        let b = run_control_plane(&CP_SMOKE_FLEETS, &CP_SMOKE_CONFIGS, &CP_SMOKE_MTBFS);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
