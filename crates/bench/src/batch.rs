//! **Batched-verification microbenchmark** — the Attestation Server's
//! msg-4 hot path before and after the random-linear-combination batch
//! (DESIGN.md §13). Three stages:
//!
//! 1. Pure crypto: serial `VerifyingKey::verify` loop vs `batch_verify`
//!    over the same signatures, ns per signature at batch 1 / 8 / 64.
//! 2. AS-validate: `validate_response` in a loop vs
//!    `validate_response_batch` over coalesced measurement responses,
//!    with the certified-AVK cache warm (the steady state of a server
//!    that reuses its attestation session).
//! 3. Evidence cache: a periodic subscription with a period shorter
//!    than the validity window, reporting the steady-state hit rate of
//!    the sub-attestation reuse path.
//!
//! The committed numbers live in `BENCH_crypto.json` (`batch_*` rows).

use monatt_core::attestation::BatchValidationItem;
use monatt_core::cloud::{CloudBuilder, VmRequest, WorkloadSpec};
use monatt_core::messages::MeasureResponse;
use monatt_core::types::{Flavor, Image, SecurityProperty, ServerId, Vid};
use monatt_core::{AttestationServer, CloudServerNode, ReferenceDb};
use monatt_crypto::batch::{batch_verify, BatchItem};
use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::SigningKey;
use monatt_hypervisor::driver::IdleDriver;
use monatt_hypervisor::scheduler::SchedParams;
use monatt_net::wire::EncodeScratch;
use std::time::Instant;

/// Batch sizes swept by the full run.
pub const SIZES: [usize; 3] = [1, 8, 64];

/// Timing iterations for the full run / the CI smoke run.
pub const ITERS: u32 = 200;
/// Reduced iteration count for `--smoke`.
pub const SMOKE_ITERS: u32 = 20;

/// A `(mean, min)` pair of per-item nanosecond figures, measured over
/// several timing chunks (the min is the least noisy chunk).
#[derive(Clone, Copy, Debug)]
pub struct NsPerItem {
    /// Mean over all chunks.
    pub mean: f64,
    /// Best chunk.
    pub min: f64,
}

/// One row of the pure-crypto stage.
#[derive(Clone, Copy, Debug)]
pub struct CryptoRow {
    /// Signatures verified together.
    pub batch: usize,
    /// Serial loop, ns per signature.
    pub serial_ns: NsPerItem,
    /// `batch_verify`, ns per signature.
    pub batch_ns: NsPerItem,
}

/// One row of the AS-validate stage.
#[derive(Clone, Copy, Debug)]
pub struct ValidateRow {
    /// Responses validated together.
    pub batch: usize,
    /// Whether the server reused one attestation session (certified-AVK
    /// cache warm) or presented a fresh AVK per response (the default).
    pub avk_reused: bool,
    /// `validate_response` loop, ns per response.
    pub serial_ns: NsPerItem,
    /// `validate_response_batch`, ns per response.
    pub batch_ns: NsPerItem,
}

/// Steady-state evidence-cache figures.
#[derive(Clone, Copy, Debug)]
pub struct CacheRow {
    /// Subscription period.
    pub period_us: u64,
    /// Evidence validity window.
    pub ttl_us: u64,
    /// Cache hits / misses at the Attestation Server.
    pub hits: u64,
    /// See `hits`.
    pub misses: u64,
}

impl CacheRow {
    /// Fraction of samples served from cached evidence.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses).max(1) as f64
    }
}

fn time_per_item(iters: u32, batch: usize, mut f: impl FnMut()) -> NsPerItem {
    // One warmup pass keeps first-touch effects out of the figure.
    f();
    const CHUNKS: u32 = 5;
    let per_chunk = (iters / CHUNKS).max(1);
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..CHUNKS {
        let start = Instant::now();
        for _ in 0..per_chunk {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(per_chunk) / batch as f64;
        sum += ns;
        min = min.min(ns);
    }
    NsPerItem {
        mean: sum / f64::from(CHUNKS),
        min,
    }
}

/// Stage 1: serial vs batched Schnorr verification.
pub fn run_crypto(sizes: &[usize], iters: u32) -> Vec<CryptoRow> {
    sizes
        .iter()
        .map(|&n| {
            let mut rng = Drbg::from_seed(77);
            let keys: Vec<SigningKey> = (0..n).map(|_| SigningKey::generate(&mut rng)).collect();
            let msgs: Vec<Vec<u8>> = (0..n)
                .map(|i| format!("quote over measurement {i}").into_bytes())
                .collect();
            let items: Vec<BatchItem<'_>> = keys
                .iter()
                .zip(&msgs)
                .map(|(k, m)| (k.verifying_key(), m.as_slice(), k.sign(m)))
                .collect();
            let serial_ns = time_per_item(iters, n, || {
                for (k, m, sig) in &items {
                    k.verify(m, sig).unwrap();
                }
            });
            let batch_ns = time_per_item(iters, n, || batch_verify(&items).unwrap());
            CryptoRow {
                batch: n,
                serial_ns,
                batch_ns,
            }
        })
        .collect()
}

/// Builds an Attestation Server plus `n` coalesced measurement
/// responses from one cloud server. With `reuse_avk` the server keeps
/// one attestation session and the certified-AVK cache is enabled (the
/// steady state where certification is a lookup); without it every
/// response carries a fresh AVK whose identity binding must be
/// verified, as in the default cloud configuration.
fn validate_fixture(
    n: usize,
    reuse_avk: bool,
) -> (AttestationServer, Vec<(MeasureResponse, [u8; 32])>) {
    let mut rng = Drbg::from_seed(88);
    let mut attserver = AttestationServer::new(&mut rng);
    let refs = ReferenceDb::new();
    let mut node = CloudServerNode::boot(
        ServerId(0),
        1,
        SchedParams::default(),
        Drbg::from_seed(89),
        refs.platform_components(),
        &[SecurityProperty::StartupIntegrity],
    );
    if reuse_avk {
        attserver.enable_avk_cert_cache();
        node.set_avk_reuse(true);
    }
    attserver.register_cloud_server(node.identity_key());
    node.launch_vm(
        Vid(1),
        Image::Cirros,
        Image::Cirros.pristine_bytes(),
        vec![Box::new(IdleDriver)],
        256,
    );
    let responses = (0..n)
        .map(|i| {
            let nonce3 = [i as u8 + 1; 32];
            let req =
                attserver.build_measure_request(Vid(1), SecurityProperty::StartupIntegrity, nonce3);
            let resp: MeasureResponse = node.attest(req.vid, req.spec, req.nonce3).unwrap().into();
            (resp, nonce3)
        })
        .collect();
    (attserver, responses)
}

/// Stage 2: serial vs batched AS-validate over coalesced responses,
/// with fresh AVKs (the default) and with a reused, cache-warm AVK.
pub fn run_validate(sizes: &[usize], iters: u32) -> Vec<ValidateRow> {
    [false, true]
        .into_iter()
        .flat_map(|reuse| sizes.iter().map(move |&n| (n, reuse)))
        .map(|(n, reuse_avk)| {
            let (mut attserver, responses) = validate_fixture(n, reuse_avk);
            let mut scratch = EncodeScratch::new();
            let serial_ns = time_per_item(iters, n, || {
                for (resp, nonce3) in &responses {
                    attserver
                        .validate_response_with(resp, Vid(1), resp.spec, *nonce3, &mut scratch)
                        .unwrap();
                }
            });
            let items: Vec<BatchValidationItem<'_>> = responses
                .iter()
                .map(|(resp, nonce3)| BatchValidationItem {
                    response: resp,
                    expected_vid: Vid(1),
                    expected_spec: resp.spec,
                    expected_nonce3: *nonce3,
                })
                .collect();
            let batch_ns = time_per_item(iters, n, || {
                for v in attserver.validate_response_batch(&items, &mut scratch) {
                    v.unwrap();
                }
            });
            ValidateRow {
                batch: n,
                avk_reused: reuse_avk,
                serial_ns,
                batch_ns,
            }
        })
        .collect()
}

/// Stage 3: evidence-cache hit rate under a steady periodic
/// subscription whose period is shorter than the validity window.
pub fn run_cache(run_us: u64) -> CacheRow {
    let period_us = 5_000_000;
    let ttl_us = 30_000_000;
    let mut c = CloudBuilder::new()
        .servers(2)
        .seed(90)
        .evidence_cache(ttl_us)
        .build();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity)
                .workload(WorkloadSpec::Busy),
        )
        .expect("launch");
    c.runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, period_us)
        .expect("subscribe");
    c.run(run_us);
    let (hits, misses) = c.evidence_cache_stats();
    CacheRow {
        period_us,
        ttl_us,
        hits,
        misses,
    }
}

/// Renders all three stages.
pub fn print(crypto: &[CryptoRow], validate: &[ValidateRow], cache: &CacheRow) {
    println!("batch Schnorr verification (ns per signature)");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "batch", "serial", "batched", "speedup"
    );
    for r in crypto {
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>8.2}x",
            r.batch,
            r.serial_ns.mean,
            r.batch_ns.mean,
            r.serial_ns.mean / r.batch_ns.mean
        );
    }
    println!();
    println!("AS validate_response (ns per response)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>9}",
        "batch", "avk", "serial", "batched", "speedup"
    );
    for r in validate {
        println!(
            "{:>6} {:>12} {:>12.1} {:>12.1} {:>8.2}x",
            r.batch,
            if r.avk_reused { "reused" } else { "fresh" },
            r.serial_ns.mean,
            r.batch_ns.mean,
            r.serial_ns.mean / r.batch_ns.mean
        );
    }
    println!();
    println!(
        "evidence cache: period {} s, window {} s -> {} hits / {} misses ({:.1}% hit rate)",
        cache.period_us / 1_000_000,
        cache.ttl_us / 1_000_000,
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0
    );
}

/// Renders the sweep as `BENCH_crypto.json`-style rows (one line per
/// benchmark) for pasting into the committed snapshot.
pub fn print_json(crypto: &[CryptoRow], validate: &[ValidateRow], cache: &CacheRow, iters: u32) {
    let row = |id: String, ns: NsPerItem| {
        format!(
            "{{\"id\": \"{id}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters\": {iters}}}",
            ns.mean, ns.min
        )
    };
    let mut rows = Vec::new();
    for r in crypto {
        rows.push(row(format!("batch_verify_serial/{}", r.batch), r.serial_ns));
        rows.push(row(format!("batch_verify/{}", r.batch), r.batch_ns));
    }
    for r in validate {
        let avk = if r.avk_reused {
            "reused_avk"
        } else {
            "fresh_avk"
        };
        rows.push(row(
            format!("as_validate_serial/{avk}/{}", r.batch),
            r.serial_ns,
        ));
        rows.push(row(
            format!("as_validate_batch/{avk}/{}", r.batch),
            r.batch_ns,
        ));
    }
    rows.push(format!(
        "{{\"id\": \"evidence_cache_hit_rate\", \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.3}}}",
        cache.hits,
        cache.misses,
        cache.hit_rate()
    ));
    for r in rows {
        println!("{r},");
    }
}
