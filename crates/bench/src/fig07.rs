//! **Figure 7** — Measurements of the CPU availability vulnerability:
//! relative CPU usage of attacker and victim under each attacker
//! workload, as the VMM Profile Tool reports it. The paper's shape:
//! I/O-bound attackers leave the victim ~100 % of its share; CPU-bound
//! attackers split ~50/50; the CPU_avail attack takes nearly everything.

use crate::fig06::AttackerKind;
use monatt_hypervisor::driver::BusyLoop;
use monatt_hypervisor::engine::ServerSim;
use monatt_hypervisor::ids::PcpuId;
use monatt_hypervisor::scheduler::SchedParams;

/// One bar pair of Figure 7.
#[derive(Clone, Debug)]
pub struct UsageRow {
    /// The co-resident workload.
    pub attacker: AttackerKind,
    /// Attacker VM's share of the pCPU over the window (0 for baseline).
    pub attacker_usage: f64,
    /// Victim VM's share of the pCPU over the window.
    pub victim_usage: f64,
}

/// Measures attacker/victim CPU usage over a `seconds` window for each
/// attacker workload. The victim is a CPU-bound program (it would consume
/// 100 % alone).
pub fn run(seconds: u64) -> Vec<UsageRow> {
    AttackerKind::all()
        .into_iter()
        .map(|attacker| run_row(attacker, seconds))
        .collect()
}

/// Runs a single row of the figure.
pub fn run_row(attacker: AttackerKind, seconds: u64) -> UsageRow {
    let mut sim = ServerSim::new(1, SchedParams::default());
    let victim = sim.create_vm(
        monatt_hypervisor::vm::VmConfig::new("victim", vec![Box::new(BusyLoop::default())])
            .pin(vec![PcpuId(0)]),
    );
    let attacker_vm = match attacker {
        AttackerKind::Baseline => None,
        AttackerKind::Service(svc) => Some(
            sim.create_vm(
                monatt_hypervisor::vm::VmConfig::new("attacker", vec![Box::new(svc.driver(42))])
                    .pin(vec![PcpuId(0)]),
            ),
        ),
        AttackerKind::CpuAvail => {
            let drivers = monatt_attacks::boost::boost_attack_drivers();
            let pins = vec![PcpuId(0); drivers.len()];
            Some(sim.create_vm(monatt_hypervisor::vm::VmConfig::new("attacker", drivers).pin(pins)))
        }
    };
    // Warm up 1 s, then measure over the window.
    sim.run_for(1_000_000);
    let start = sim.now();
    sim.profile_mut().reset_window(start);
    sim.run_for(seconds * 1_000_000);
    let victim_usage = sim.profile().relative_cpu_usage(victim, sim.now());
    let attacker_usage = attacker_vm
        .map(|vm| sim.profile().relative_cpu_usage(vm, sim.now()))
        .unwrap_or(0.0);
    UsageRow {
        attacker,
        attacker_usage,
        victim_usage,
    }
}

/// Prints the paper-style table.
pub fn print(rows: &[UsageRow]) {
    println!("Figure 7: Measurements of CPU Availability Vulnerability");
    println!("attacker\tattacker_cpu\tvictim_cpu");
    for row in rows {
        println!(
            "{}\t{}\t{}",
            row.attacker.label(),
            crate::fmt_pct(row.attacker_usage),
            crate::fmt_pct(row.victim_usage)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monatt_workloads::services::CloudService;

    #[test]
    fn baseline_victim_gets_everything() {
        let row = run_row(AttackerKind::Baseline, 5);
        assert!(row.victim_usage > 0.95, "{row:?}");
    }

    #[test]
    fn io_bound_attacker_leaves_victim_most() {
        let row = run_row(AttackerKind::Service(CloudService::Mail), 5);
        assert!(row.victim_usage > 0.8, "{row:?}");
        assert!(row.attacker_usage < 0.2, "{row:?}");
    }

    #[test]
    fn cpu_bound_attacker_splits_fairly() {
        let row = run_row(AttackerKind::Service(CloudService::Database), 5);
        assert!((row.victim_usage - 0.5).abs() < 0.15, "{row:?}");
    }

    #[test]
    fn attack_starves_victim() {
        let row = run_row(AttackerKind::CpuAvail, 5);
        assert!(row.victim_usage < 0.10, "{row:?}");
        assert!(row.attacker_usage > 0.80, "{row:?}");
    }
}
