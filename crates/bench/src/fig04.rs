//! **Figure 4** — Cross-VM covert information leakage: the sender VM's
//! CPU usage intervals as observed by the receiver VM, and the achieved
//! channel bandwidth (the paper reports 200 bps).

use monatt_attacks::covert::{
    bits_to_message, CovertReceiver, CovertSender, GapSample, DEFAULT_ONE_US, DEFAULT_ZERO_US,
};
use monatt_hypervisor::engine::ServerSim;
use monatt_hypervisor::ids::PcpuId;
use monatt_hypervisor::scheduler::SchedParams;
use monatt_hypervisor::time::SimTime;
use monatt_hypervisor::vm::VmConfig;

/// Results of the covert-channel trace experiment.
#[derive(Clone, Debug)]
pub struct CovertTrace {
    /// The receiver's observed gaps (time, duration) — the y-axis of
    /// Figure 4 over time.
    pub gaps: Vec<GapSample>,
    /// Achieved bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Decoded bytes (the transmitted message is the repeating byte
    /// `0xA5`).
    pub decoded: Vec<u8>,
    /// Whether the repeating message pattern was recovered.
    pub message_recovered: bool,
}

/// Runs the covert channel for `seconds` of simulated time: the sender
/// and receiver VMs share pCPU 0, exactly as in Section 4.4.1.
pub fn run(seconds: u64, message: &[u8]) -> CovertTrace {
    let mut sim = ServerSim::new(1, SchedParams::default());
    let sender = CovertSender::new(message);
    let receiver = CovertReceiver::new();
    let log = receiver.log();
    sim.create_vm(VmConfig::new("sender", vec![Box::new(sender)]).pin(vec![PcpuId(0)]));
    sim.create_vm(VmConfig::new("receiver", vec![Box::new(receiver)]).pin(vec![PcpuId(0)]));
    sim.run_until(SimTime::from_secs(seconds));
    let elapsed_us = sim.now().as_micros();
    let log = log.borrow();
    let bits = log.decode((DEFAULT_ONE_US + DEFAULT_ZERO_US) / 2);
    // Search all 8 alignments for the repeating message.
    let target: Vec<bool> = monatt_attacks::covert::message_to_bits(message);
    // The repeating pattern can start at any bit offset within one cycle.
    let message_recovered = (0..target.len().min(bits.len())).any(|off| {
        bits[off..]
            .chunks_exact(target.len())
            .take(5)
            .filter(|c| *c == target.as_slice())
            .count()
            >= 5
    });
    CovertTrace {
        gaps: log.gaps.clone(),
        bandwidth_bps: log.bandwidth_bps(elapsed_us),
        decoded: bits_to_message(&bits),
        message_recovered,
    }
}

/// Prints the paper-style output: the interval trace and the bandwidth.
pub fn print(trace: &CovertTrace) {
    println!("Figure 4: Cross-VM Covert Information Leakage");
    println!("time_ms\tinterval_ms");
    for gap in trace.gaps.iter().take(120) {
        println!(
            "{:.1}\t{:.2}",
            gap.at_us as f64 / 1_000.0,
            gap.gap_us as f64 / 1_000.0
        );
    }
    println!("... ({} observations total)", trace.gaps.len());
    println!("bandwidth: {:.0} bps (paper: 200 bps)", trace.bandwidth_bps);
    println!("message recovered: {}", trace.message_recovered);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_matches_paper() {
        let trace = run(3, b"\xA5");
        assert!(
            (trace.bandwidth_bps - 200.0).abs() < 30.0,
            "bandwidth {} should be near 200 bps",
            trace.bandwidth_bps
        );
    }

    #[test]
    fn message_is_recovered() {
        let trace = run(3, b"\xA5");
        assert!(trace.message_recovered);
        assert!(!trace.gaps.is_empty());
    }

    #[test]
    fn arbitrary_messages_transfer() {
        let trace = run(3, b"hi");
        assert!(trace.message_recovered);
    }
}
