//! # monatt-bench
//!
//! Harnesses that regenerate every table and figure of the CloudMonatt
//! evaluation (Sections 4 and 7 of the paper). Each `figNN` module
//! exposes a `run()` function returning structured results and a
//! `print()` helper producing the paper-style rows; the `src/bin/`
//! binaries are thin wrappers. The modules' unit tests assert the
//! paper's qualitative claims (who wins, by what factor, where the
//! crossovers are), so `cargo test -p monatt-bench` re-checks the whole
//! reproduction.

#![warn(missing_docs)]

pub mod batch;
pub mod chaos;
pub mod faults;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod protocol;
pub mod queue;
pub mod scale;
pub mod sec722;
pub mod table1;

/// Formats a microsecond duration as seconds with millisecond precision.
pub fn fmt_secs(us: u64) -> String {
    format!("{:.3}s", us as f64 / 1_000_000.0)
}

/// Renders a unit-interval value as a percentage.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(1_234_000), "1.234s");
        assert_eq!(fmt_pct(0.5), "50.0%");
    }
}
