//! **Queue microbenchmark** — push/pop/cancel cost of the retained
//! BinaryHeap event queue versus the hierarchical timer wheel, at three
//! pending-timer populations. Not a paper figure: this harness measures
//! the data-structure swap at the heart of the event engine (see
//! DESIGN.md §12). The heap pays `O(log n)` comparisons per operation;
//! the wheel files and cascades in amortized O(1), which is what keeps
//! the per-event cost flat between a 10³- and a 10⁷-timer backlog.
//!
//! Cancellation is modelled the way each structure supports it: the
//! wheel tombstones by sequence number natively; the heap (which has no
//! cancel) pairs with a side set of cancelled stamps that the pop path
//! skips — the standard lazy-deletion idiom the engine would otherwise
//! have needed.

use monatt_hypervisor::queue::EventQueue;
use monatt_hypervisor::wheel::TimerWheel;
use std::collections::BTreeSet;
use std::time::Instant;

/// Pending-timer populations swept.
pub const SIZES: [usize; 3] = [1_000, 100_000, 10_000_000];

/// Reduced populations for the CI smoke run.
pub const SMOKE_SIZES: [usize; 2] = [1_000, 100_000];

/// One row of the microbenchmark: nanoseconds per operation at a given
/// pending population.
#[derive(Clone, Copy, Debug)]
pub struct QueueRow {
    /// Timers resident while operating.
    pub pending: usize,
    /// BinaryHeap: push all `pending` timers, ns/op.
    pub heap_push_ns: f64,
    /// BinaryHeap: drain all `pending` timers in order, ns/op.
    pub heap_pop_ns: f64,
    /// BinaryHeap: tombstone half, then drain survivors, ns/op.
    pub heap_cancel_ns: f64,
    /// Timer wheel: push, ns/op.
    pub wheel_push_ns: f64,
    /// Timer wheel: pop, ns/op.
    pub wheel_pop_ns: f64,
    /// Timer wheel: cancel half, then drain survivors, ns/op.
    pub wheel_cancel_ns: f64,
}

/// Deterministic 64-bit mixer (splitmix64) for due-time generation —
/// no RNG dependency, identical schedule every run.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Due times spread over a ~17-minute virtual horizon: enough spread to
/// occupy several wheel levels, dense enough for same-tick collisions.
fn due_times(n: usize) -> Vec<u64> {
    const HORIZON_US: u64 = 1 << 30;
    (0..n as u64).map(|i| 1 + mix(i) % HORIZON_US).collect()
}

fn ns_per_op(elapsed: std::time::Duration, ops: usize) -> f64 {
    elapsed.as_nanos() as f64 / ops.max(1) as f64
}

/// Measures one pending population.
fn measure(pending: usize) -> QueueRow {
    let dues = due_times(pending);

    // BinaryHeap push + pop.
    let mut heap: EventQueue<(u64, u64), u64> = EventQueue::new();
    let start = Instant::now();
    for (seq, &due) in dues.iter().enumerate() {
        heap.schedule((due, seq as u64), seq as u64);
    }
    let heap_push = start.elapsed();
    let start = Instant::now();
    let mut drained = 0usize;
    while heap.pop().is_some() {
        drained += 1;
    }
    let heap_pop = start.elapsed();
    assert_eq!(drained, pending, "heap lost entries");

    // BinaryHeap cancel: refill, tombstone every other stamp in a side
    // set, then drain skipping tombstones — the lazy-deletion pattern.
    let mut heap: EventQueue<(u64, u64), u64> = EventQueue::new();
    for (seq, &due) in dues.iter().enumerate() {
        heap.schedule((due, seq as u64), seq as u64);
    }
    let start = Instant::now();
    let mut tombstones: BTreeSet<u64> = BTreeSet::new();
    for seq in (0..pending as u64).step_by(2) {
        tombstones.insert(seq);
    }
    let mut survivors = 0usize;
    while let Some(((_, seq), _)) = heap.pop() {
        if !tombstones.remove(&seq) {
            survivors += 1;
        }
    }
    let heap_cancel = start.elapsed();
    assert_eq!(
        survivors,
        pending - pending.div_ceil(2),
        "heap cancel lost entries"
    );

    // Wheel push + pop.
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    let start = Instant::now();
    for (seq, &due) in dues.iter().enumerate() {
        wheel.insert(due, seq as u64, seq as u64);
    }
    let wheel_push = start.elapsed();
    let start = Instant::now();
    let mut drained = 0usize;
    while wheel.pop().is_some() {
        drained += 1;
    }
    let wheel_pop = start.elapsed();
    assert_eq!(drained, pending, "wheel lost entries");

    // Wheel cancel: refill, tombstone every other stamp natively, drain.
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    for (seq, &due) in dues.iter().enumerate() {
        wheel.insert(due, seq as u64, seq as u64);
    }
    let start = Instant::now();
    for seq in (0..pending as u64).step_by(2) {
        wheel.cancel(seq);
    }
    let mut survivors = 0usize;
    while wheel.pop().is_some() {
        survivors += 1;
    }
    let wheel_cancel = start.elapsed();
    assert_eq!(
        survivors,
        pending - pending.div_ceil(2),
        "wheel cancel lost entries"
    );

    // Cancel phases touch 1.5·pending entries (half cancelled + drain);
    // normalize per scheduled timer so rows compare like for like.
    QueueRow {
        pending,
        heap_push_ns: ns_per_op(heap_push, pending),
        heap_pop_ns: ns_per_op(heap_pop, pending),
        heap_cancel_ns: ns_per_op(heap_cancel, pending),
        wheel_push_ns: ns_per_op(wheel_push, pending),
        wheel_pop_ns: ns_per_op(wheel_pop, pending),
        wheel_cancel_ns: ns_per_op(wheel_cancel, pending),
    }
}

/// Sweeps the given pending populations.
pub fn run(sizes: &[usize]) -> Vec<QueueRow> {
    sizes.iter().map(|&n| measure(n)).collect()
}

/// Prints the sweep as a table.
pub fn print(rows: &[QueueRow]) {
    println!("Queue microbench: ns/op, BinaryHeap vs hierarchical timer wheel");
    println!("pending\theap-push\theap-pop\theap-cancel\twheel-push\twheel-pop\twheel-cancel");
    for row in rows {
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            row.pending,
            row.heap_push_ns,
            row.heap_pop_ns,
            row.heap_cancel_ns,
            row.wheel_push_ns,
            row.wheel_pop_ns,
            row.wheel_cancel_ns,
        );
    }
}

/// Renders the rows as the `queue_bench` JSON fragment embedded in
/// `BENCH_scale.json`.
pub fn to_json_fragment(rows: &[QueueRow]) -> String {
    let mut out = String::from("  \"queue_bench\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pending\": {}, \"heap_push_ns\": {:.1}, \"heap_pop_ns\": {:.1}, \
             \"heap_cancel_ns\": {:.1}, \"wheel_push_ns\": {:.1}, \"wheel_pop_ns\": {:.1}, \
             \"wheel_cancel_ns\": {:.1}}}{}\n",
            row.pending,
            row.heap_push_ns,
            row.heap_pop_ns,
            row.heap_cancel_ns,
            row.wheel_push_ns,
            row.wheel_pop_ns,
            row.wheel_cancel_ns,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_structures_agree_and_report_sane_rates() {
        let rows = run(&[1_000]);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.pending, 1_000);
        for ns in [
            row.heap_push_ns,
            row.heap_pop_ns,
            row.heap_cancel_ns,
            row.wheel_push_ns,
            row.wheel_pop_ns,
            row.wheel_cancel_ns,
        ] {
            assert!(ns > 0.0 && ns < 1e7, "implausible ns/op {ns}");
        }
    }

    #[test]
    fn due_schedule_is_deterministic() {
        assert_eq!(due_times(64), due_times(64));
        // Same-tick collisions exist at scale (pigeonhole over the
        // horizon would need 2^30 entries, so check determinism plus a
        // forced collision via the wheel's (due, seq) ordering instead).
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        wheel.insert(5, 1, 10);
        wheel.insert(5, 0, 20);
        assert_eq!(wheel.pop(), Some((5, 0, 20)));
        assert_eq!(wheel.pop(), Some((5, 1, 10)));
    }
}
