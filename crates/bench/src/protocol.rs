//! **Protocol-IR throughput bench** — sessions per second of host time
//! for the three compiled attestation programs at a 1k-VM fleet: the
//! flat Figure-3 exchange, the layered (delegated platform-first)
//! program, and the K=4 multi-property fan-out. All three run through
//! the same interpreter (`core/src/protocol/run.rs`); this harness
//! pins what the protocol-as-data layer costs in engine throughput and
//! what the composite programs cost relative to flat Figure 3 (layered
//! spawns one child session, fan-out spawns K).
//!
//! The committed numbers live in `BENCH_protocol.json`.

use monatt_core::{CloudBuilder, Flavor, Image, SecurityProperty, Vid, VmRequest, WorkloadSpec};
use std::time::Instant;

/// Fleet size: VMs launched and round-robined over by the driver loop.
pub const FLEET: usize = 1_000;

/// Attestation API calls timed per variant in the full run.
pub const ITERS: u32 = 2_000;
/// Reduced call count for `--smoke`.
pub const SMOKE_ITERS: u32 = 200;

/// The four properties fanned out over in the K=4 variant.
pub const FANOUT_PROPERTIES: [SecurityProperty; 4] = [
    SecurityProperty::RuntimeIntegrity,
    SecurityProperty::StartupIntegrity,
    SecurityProperty::CovertChannelFreedom,
    SecurityProperty::SchedulerFairness,
];

/// The three compiled programs under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The flat Figure-3 exchange (`Protocol::figure3_customer`).
    Flat,
    /// Layered attestation: platform verdict gates the VM measurement.
    Layered,
    /// K=4 multi-property fan-out under one session.
    Fanout,
}

impl Variant {
    /// Stable row identifier.
    pub fn id(self) -> &'static str {
        match self {
            Variant::Flat => "figure3_flat",
            Variant::Layered => "layered",
            Variant::Fanout => "fanout_k4",
        }
    }
}

/// One row of the throughput sweep.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolRow {
    /// Which compiled program ran.
    pub variant: Variant,
    /// VMs in the fleet.
    pub fleet: usize,
    /// Timed attestation API calls.
    pub calls: u32,
    /// Host wall-clock nanoseconds for the timed loop.
    pub wall_ns: u64,
    /// Engine sessions completed during the timed loop (layered = 2 per
    /// call, fan-out = K+1 per call).
    pub sessions: u64,
    /// Virtual (simulated) latency of one clean call, microseconds.
    pub virtual_us: u64,
}

impl ProtocolRow {
    /// API calls per second of host time.
    pub fn calls_per_sec(&self) -> f64 {
        self.calls as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Engine sessions per second of host time.
    pub fn sessions_per_sec(&self) -> f64 {
        self.sessions as f64 / (self.wall_ns as f64 / 1e9)
    }
}

fn attest(
    cloud: &mut monatt_core::Cloud,
    variant: Variant,
    vid: Vid,
) -> monatt_core::AttestationReport {
    match variant {
        Variant::Flat => cloud
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .expect("flat attestation"),
        Variant::Layered => cloud
            .layered_attest(vid, SecurityProperty::RuntimeIntegrity)
            .expect("layered attestation"),
        Variant::Fanout => cloud
            .multi_attest(vid, &FANOUT_PROPERTIES)
            .expect("fan-out attestation"),
    }
}

/// Times `calls` attestations of one variant round-robined over a
/// `fleet`-VM cloud.
pub fn measure(variant: Variant, fleet: usize, calls: u32) -> ProtocolRow {
    let servers = fleet.div_ceil(16).max(1);
    let mut cloud = CloudBuilder::new()
        .servers(servers)
        .pcpus_per_server(16)
        .seed(0x1B + fleet as u64)
        .build();
    cloud.set_network_logging(false);
    let mut vids = Vec::with_capacity(fleet);
    for _ in 0..fleet {
        // Idle workloads: the protocol engine is what's under test, and
        // busy VMs make the hypervisor's scheduler simulation (not the
        // session layer) dominate host time at a 1k fleet.
        let vid = cloud
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity)
                    .workload(WorkloadSpec::Idle),
            )
            .expect("launch");
        vids.push(vid);
    }
    // Warm the session arena, wire buffers and wheel slots so the timed
    // loop measures the steady state.
    for &vid in vids.iter().take(32) {
        attest(&mut cloud, variant, vid);
    }
    let virtual_us = attest(&mut cloud, variant, vids[0]).elapsed_us;
    cloud.reset_protocol_stats();
    let start = Instant::now();
    for i in 0..calls {
        let vid = vids[i as usize % vids.len()];
        let report = attest(&mut cloud, variant, vid);
        std::hint::black_box(&report);
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    let stats = cloud.protocol_stats();
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed,
        "ledger drift during the timed loop"
    );
    ProtocolRow {
        variant,
        fleet,
        calls,
        wall_ns,
        sessions: stats.sessions_completed,
        virtual_us,
    }
}

/// Runs all three variants at the given fleet size.
pub fn run(fleet: usize, calls: u32) -> Vec<ProtocolRow> {
    [Variant::Flat, Variant::Layered, Variant::Fanout]
        .into_iter()
        .map(|v| measure(v, fleet, calls))
        .collect()
}

/// Prints the sweep as a table.
pub fn print(rows: &[ProtocolRow]) {
    println!("Protocol-IR throughput: compiled programs at fleet {FLEET}");
    println!(
        "{:>14} {:>7} {:>7} {:>12} {:>14} {:>12}",
        "program", "fleet", "calls", "calls/s", "sessions/s", "virtual"
    );
    for r in rows {
        println!(
            "{:>14} {:>7} {:>7} {:>12.0} {:>14.0} {:>12}",
            r.variant.id(),
            r.fleet,
            r.calls,
            r.calls_per_sec(),
            r.sessions_per_sec(),
            crate::fmt_secs(r.virtual_us),
        );
    }
}

/// Renders the sweep as the committed `BENCH_protocol.json` document.
pub fn to_json(rows: &[ProtocolRow]) -> String {
    let mut out = String::from("{\n  \"protocol_throughput\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"fleet\": {}, \"calls\": {}, \
             \"calls_per_sec\": {:.0}, \"sessions_per_sec\": {:.0}, \
             \"sessions\": {}, \"virtual_us\": {}}}{}\n",
            r.variant.id(),
            r.fleet,
            r.calls,
            r.calls_per_sec(),
            r.sessions_per_sec(),
            r.sessions,
            r.virtual_us,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_programs_cost_proportional_sessions() {
        // A tiny fleet keeps this unit test fast; CI smoke drives the
        // 1k fleet through the binary.
        let rows = run(8, 16);
        let by = |v: Variant| rows.iter().find(|r| r.variant == v).unwrap();
        let flat = by(Variant::Flat);
        let layered = by(Variant::Layered);
        let fanout = by(Variant::Fanout);
        // Every API call resolves to a fixed number of engine sessions:
        // flat = 1, layered = parent + platform child, fan-out = parent
        // + one child per property.
        assert_eq!(flat.sessions, u64::from(flat.calls));
        assert_eq!(layered.sessions, 2 * u64::from(layered.calls));
        assert_eq!(
            fanout.sessions,
            (1 + FANOUT_PROPERTIES.len() as u64) * u64::from(fanout.calls)
        );
        // Composite programs take longer in virtual time than flat
        // Figure 3 — they run more hops.
        assert!(layered.virtual_us > flat.virtual_us);
        assert!(fanout.virtual_us > flat.virtual_us);
    }
}
