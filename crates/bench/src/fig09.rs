//! **Figure 9** — Performance of VM launching: the per-stage time
//! breakdown (scheduling, networking, block-device-mapping, spawning,
//! attestation) across three images × three flavors. The paper reports an
//! attestation-stage overhead of about 20 %.

use monatt_core::{CloudBuilder, Flavor, Image, LaunchTiming, SecurityProperty, VmRequest};

/// One bar of Figure 9.
#[derive(Clone, Debug)]
pub struct LaunchRow {
    /// Image used.
    pub image: Image,
    /// Flavor used.
    pub flavor: Flavor,
    /// Stage breakdown.
    pub timing: LaunchTiming,
}

impl LaunchRow {
    /// Attestation stage as a fraction of total launch time.
    pub fn attestation_fraction(&self) -> f64 {
        self.timing.attestation_us as f64 / self.timing.total_us() as f64
    }
}

/// Launches one VM per image × flavor combination and records the stage
/// breakdown.
pub fn run() -> Vec<LaunchRow> {
    let mut rows = Vec::new();
    for image in Image::ALL {
        for flavor in Flavor::ALL {
            // Fresh cloud per launch so placements don't interact.
            let mut cloud = CloudBuilder::new().servers(3).seed(17).build();
            cloud
                .request_vm(
                    VmRequest::new(flavor, image).require(SecurityProperty::StartupIntegrity),
                )
                .expect("launch succeeds");
            rows.push(LaunchRow {
                image,
                flavor,
                timing: cloud.last_launch_timing().expect("timing recorded"),
            });
        }
    }
    rows
}

/// Prints the paper-style stacked-bar data.
pub fn print(rows: &[LaunchRow]) {
    println!("Figure 9: Performance for VM launching");
    println!(
        "image\tflavor\tscheduling\tnetworking\tmapping\tspawning\tattestation\ttotal\tattest%"
    );
    for row in rows {
        let t = &row.timing;
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.1}%",
            row.image,
            row.flavor,
            crate::fmt_secs(t.scheduling_us),
            crate::fmt_secs(t.networking_us),
            crate::fmt_secs(t.block_device_us),
            crate::fmt_secs(t.spawning_us),
            crate::fmt_secs(t.attestation_us),
            crate::fmt_secs(t.total_us()),
            row.attestation_fraction() * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attestation_overhead_is_about_twenty_percent() {
        let rows = run();
        assert_eq!(rows.len(), 9);
        for row in &rows {
            let frac = row.attestation_fraction();
            assert!(
                (0.08..0.35).contains(&frac),
                "{}/{}: attestation fraction {frac}",
                row.image,
                row.flavor
            );
        }
        let avg: f64 = rows
            .iter()
            .map(LaunchRow::attestation_fraction)
            .sum::<f64>()
            / rows.len() as f64;
        assert!((0.10..0.30).contains(&avg), "average fraction {avg}");
    }

    #[test]
    fn totals_are_seconds_scale_and_ordered() {
        let rows = run();
        for row in &rows {
            let total = row.timing.total_us();
            assert!(
                (1_500_000..9_000_000).contains(&total),
                "{}/{}: total {total}us",
                row.image,
                row.flavor
            );
        }
        // Bigger images and flavors take longer.
        let find = |image: Image, flavor: Flavor| {
            rows.iter()
                .find(|r| r.image == image && r.flavor == flavor)
                .unwrap()
                .timing
                .total_us()
        };
        assert!(find(Image::Ubuntu, Flavor::Large) > find(Image::Cirros, Flavor::Small));
        assert!(find(Image::Fedora, Flavor::Small) > find(Image::Cirros, Flavor::Small));
    }
}
