//! **Figure 10** — Performance effect of periodic runtime attestation:
//! cloud benchmark throughput in a VM while the customer requests
//! periodic attestation at different frequencies (none, 1 min, 10 s,
//! 5 s). The paper finds no degradation, because CPU-resource monitoring
//! measures at VM switches without intercepting execution.

use monatt_core::{
    CloudBuilder, Flavor, Image, SecurityProperty, ServerId, VmRequest, WorkloadSpec,
};
use monatt_workloads::services::CloudService;

/// The attestation frequencies of Figure 10 (None = no attestation).
pub const FREQUENCIES: [Option<u64>; 4] =
    [None, Some(60_000_000), Some(10_000_000), Some(5_000_000)];

/// Human labels for [`FREQUENCIES`].
pub fn frequency_label(freq: Option<u64>) -> String {
    match freq {
        None => "no attest".into(),
        Some(us) if us >= 60_000_000 => format!("{}min", us / 60_000_000),
        Some(us) => format!("{}s", us / 1_000_000),
    }
}

/// One bar group of Figure 10.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// The benchmark service.
    pub service: CloudService,
    /// Requests completed per frequency, same order as [`FREQUENCIES`].
    pub requests: Vec<u64>,
}

impl ThroughputRow {
    /// Relative performance vs the no-attestation column.
    pub fn relative(&self) -> Vec<f64> {
        let base = self.requests[0].max(1) as f64;
        self.requests.iter().map(|&r| r as f64 / base).collect()
    }
}

/// Runs each service for `seconds` under each attestation frequency.
pub fn run(seconds: u64) -> Vec<ThroughputRow> {
    CloudService::ALL
        .iter()
        .map(|&service| {
            let requests = FREQUENCIES
                .iter()
                .map(|&freq| run_one(service, freq, seconds))
                .collect();
            ThroughputRow { service, requests }
        })
        .collect()
}

fn run_one(service: CloudService, freq: Option<u64>, seconds: u64) -> u64 {
    let mut cloud = CloudBuilder::new().servers(2).seed(23).build();
    // The paper's setup: an ubuntu-large VM running the benchmark.
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Large, Image::Ubuntu)
                .require(SecurityProperty::CpuAvailability { min_share_pct: 0 })
                .workload(WorkloadSpec::Service(service))
                .on_server(ServerId(0)),
        )
        .expect("launch");
    let sub = freq.map(|f| {
        cloud
            .runtime_attest_periodic(
                vid,
                SecurityProperty::CpuAvailability { min_share_pct: 0 },
                f,
            )
            .expect("subscribe")
    });
    cloud.run(seconds * 1_000_000);
    if let Some(sub) = sub {
        let reports = cloud.stop_attest_periodic(sub).expect("reports");
        // Only frequencies shorter than the window are guaranteed to fire.
        if freq.is_some_and(|f| f < seconds * 1_000_000) {
            assert!(
                !reports.is_empty(),
                "periodic attestation should have fired"
            );
        }
    }
    cloud.service_requests(vid).expect("service stats")
}

/// Prints the paper-style relative performance table.
pub fn print(rows: &[ThroughputRow]) {
    println!("Figure 10: Performance Effect of Runtime Attestation");
    let labels: Vec<String> = FREQUENCIES.iter().map(|f| frequency_label(*f)).collect();
    println!("benchmark\t{}", labels.join("\t"));
    for row in rows {
        let rel: Vec<String> = row
            .relative()
            .iter()
            .map(|&r| format!("{:.1}%", r * 100.0))
            .collect();
        println!("{}\t{}", row.service, rel.join("\t"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attestation_does_not_degrade_throughput() {
        // A 40-second window keeps test time modest while giving the 5s
        // frequency 7 attestations.
        for row in run(40) {
            let rel = row.relative();
            for (i, &r) in rel.iter().enumerate() {
                assert!(
                    r > 0.97,
                    "{} at {}: relative performance {r}",
                    row.service,
                    frequency_label(FREQUENCIES[i])
                );
            }
        }
    }
}
