//! **Figure 11** — Attestation and reaction times during VM runtime: for
//! each response strategy (Termination, Suspension, Migration) and VM
//! flavor, the attestation time plus the response time. The paper's
//! shape: Termination is fastest, Migration slowest and growing with VM
//! size.

use monatt_core::{
    CloudBuilder, Flavor, Image, ResponseAction, SecurityProperty, ServerId, VmRequest,
    WorkloadSpec,
};

/// One bar of Figure 11.
#[derive(Clone, Debug)]
pub struct ResponseRow {
    /// The response strategy.
    pub action: ResponseAction,
    /// The VM flavor.
    pub flavor: Flavor,
    /// Time to detect (one runtime attestation round).
    pub attestation_us: u64,
    /// Time to execute the response.
    pub response_us: u64,
}

impl ResponseRow {
    /// Total reaction time.
    pub fn total_us(&self) -> u64 {
        self.attestation_us + self.response_us
    }
}

/// Runs the response-timing sweep: for each strategy × flavor, launch a
/// VM, co-locate the availability attacker, detect it by attestation and
/// execute the response.
pub fn run() -> Vec<ResponseRow> {
    let mut rows = Vec::new();
    for action in [
        ResponseAction::Termination,
        ResponseAction::Suspension,
        ResponseAction::Migration,
    ] {
        for flavor in Flavor::ALL {
            rows.push(run_one(action, flavor));
        }
    }
    rows
}

fn run_one(action: ResponseAction, flavor: Flavor) -> ResponseRow {
    let mut cloud = CloudBuilder::new().servers(2).seed(31).build();
    let victim = cloud
        .request_vm(
            VmRequest::new(flavor, Image::Ubuntu)
                .require(SecurityProperty::CpuAvailability { min_share_pct: 50 })
                .workload(WorkloadSpec::Busy)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .expect("launch victim");
    let _attacker = cloud
        .request_vm(
            VmRequest::new(Flavor::Medium, Image::Cirros)
                .workload(WorkloadSpec::BoostAttack)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .expect("launch attacker");
    cloud.advance(1_000_000);
    let report = cloud
        .runtime_attest_current(
            victim,
            SecurityProperty::CpuAvailability { min_share_pct: 50 },
        )
        .expect("attestation");
    assert!(!report.healthy(), "the attack should be detected");
    let timing = cloud.respond(victim, action).expect("response");
    ResponseRow {
        action,
        flavor,
        attestation_us: report.elapsed_us,
        response_us: timing.response_us,
    }
}

/// Prints the paper-style table.
pub fn print(rows: &[ResponseRow]) {
    println!("Figure 11: Attestation reaction times during VM runtime");
    println!("response\tflavor\tattestation\tresponse\ttotal");
    for row in rows {
        println!(
            "{}\t{}\t{}\t{}\t{}",
            row.action,
            row.flavor,
            crate::fmt_secs(row.attestation_us),
            crate::fmt_secs(row.response_us),
            crate::fmt_secs(row.total_us())
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_ordering_matches_paper() {
        let rows = run();
        assert_eq!(rows.len(), 9);
        let response_of = |action: ResponseAction, flavor: Flavor| {
            rows.iter()
                .find(|r| r.action == action && r.flavor == flavor)
                .unwrap()
                .response_us
        };
        for flavor in Flavor::ALL {
            // Termination < Suspension < Migration.
            assert!(
                response_of(ResponseAction::Termination, flavor)
                    < response_of(ResponseAction::Suspension, flavor)
            );
            assert!(
                response_of(ResponseAction::Suspension, flavor)
                    < response_of(ResponseAction::Migration, flavor)
            );
        }
        // Migration grows with VM size.
        assert!(
            response_of(ResponseAction::Migration, Flavor::Large)
                > response_of(ResponseAction::Migration, Flavor::Small)
        );
    }

    #[test]
    fn migration_is_seconds_scale() {
        let row = run_one(ResponseAction::Migration, Flavor::Large);
        let total = row.total_us();
        assert!(
            (5_000_000..25_000_000).contains(&total),
            "large migration total {total}us"
        );
    }
}
