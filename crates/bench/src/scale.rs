//! **Scale sweep** — one round of N concurrent periodic attestations on
//! a 10% lossy network versus the serialized baseline. Not a paper
//! figure: this harness measures the discrete-event engine added on top
//! of the Figure-3 protocol. All N subscriptions share one period, so a
//! whole round comes due at the same virtual instant; a serialized
//! controller would run the sessions back to back (N × the single-session
//! latency), the event engine interleaves them on one queue and finishes
//! the round in roughly one session's latency.

use monatt_core::{CloudBuilder, Flavor, Image, SecurityProperty, VmRequest};
use monatt_net::sim::FaultModel;

/// Fleet sizes swept (concurrent periodic subscriptions). The 1k/10k/
/// 100k tail is what the timer-wheel engine and slab session arena buy:
/// the pre-wheel BinaryHeap engine stopped at 64.
pub const FLEETS: [usize; 7] = [1, 4, 16, 64, 1_000, 10_000, 100_000];

/// Reduced fleet sizes for the CI smoke run — 1k exercises the wheel's
/// cascade levels and the arena's steady state without the 100k cost.
pub const SMOKE_FLEETS: [usize; 2] = [1, 1_000];

/// The shared subscription period.
const PERIOD_US: u64 = 1_000_000;

/// One row of the scale sweep.
#[derive(Clone, Copy, Debug)]
pub struct ScaleRow {
    /// Concurrent subscriptions in the round.
    pub fleet: usize,
    /// Clean-network single-session latency (the serialized unit cost).
    pub single_us: u64,
    /// Virtual time from the round coming due to its last report.
    pub round_us: u64,
    /// `fleet * single_us`: what a serialized controller would pay.
    pub serialized_us: u64,
    /// High-water mark of concurrently in-flight sessions.
    pub max_in_flight: u64,
    /// Retransmissions the lossy round needed.
    pub retries: u64,
    /// Messages the fault model dropped during the round.
    pub dropped: u64,
}

impl ScaleRow {
    /// Speed-up of the interleaved round over the serialized baseline.
    pub fn speedup(&self) -> f64 {
        self.serialized_us as f64 / self.round_us.max(1) as f64
    }
}

/// Runs one round of `fleet` concurrent subscriptions at 10% loss.
fn measure(fleet: usize) -> ScaleRow {
    let servers = fleet.div_ceil(16).max(1);
    let mut cloud = CloudBuilder::new()
        .servers(servers)
        .pcpus_per_server(16)
        .seed(0x5CA1E + fleet as u64)
        .build();
    // The transmit transcript is a debugging aid; at 100k sessions it
    // would dominate memory. Delivery fates are identical either way.
    cloud.set_network_logging(false);
    let mut vids = Vec::with_capacity(fleet);
    for _ in 0..fleet {
        let vid = cloud
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .expect("launch on a clean network");
        vids.push(vid);
    }
    let single_us = cloud
        .runtime_attest_current(vids[0], SecurityProperty::RuntimeIntegrity)
        .expect("clean-path attestation")
        .elapsed_us;
    let mut subs = Vec::with_capacity(fleet);
    for &vid in &vids {
        let id = cloud
            .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, PERIOD_US)
            .expect("subscribe");
        subs.push(id);
    }
    cloud
        .network_mut()
        .set_fault_model(FaultModel::new(0xD1CE + fleet as u64).drop_prob(0.10));
    cloud.reset_protocol_stats();
    let due = cloud.wall_clock_us() + PERIOD_US;
    // A horizon just past the due instant admits exactly one firing per
    // subscription; the event loop still drains every session to
    // completion past the horizon.
    cloud.run(PERIOD_US + 1);
    let stats = cloud.protocol_stats();
    let dropped = cloud
        .network_mut()
        .fault_stats()
        .map(|f| f.dropped)
        .unwrap_or(0);
    let mut last_report = due;
    for &id in &subs {
        let reports = cloud.stop_attest_periodic(id).expect("collect reports");
        if let Some(first) = reports.first() {
            last_report = last_report.max(first.issued_at_us);
        }
    }
    ScaleRow {
        fleet,
        single_us,
        round_us: last_report - due,
        serialized_us: fleet as u64 * single_us,
        max_in_flight: stats.max_in_flight,
        retries: stats.retries,
        dropped,
    }
}

/// Sweeps the given fleet sizes.
pub fn run(fleets: &[usize]) -> Vec<ScaleRow> {
    fleets.iter().map(|&n| measure(n)).collect()
}

/// Prints the sweep as a table.
pub fn print(rows: &[ScaleRow]) {
    println!("Scale sweep: one round of N concurrent attestations at 10% loss");
    println!("fleet\tsingle\tround\tserialized\tspeedup\tin-flight\tretries\tdropped");
    for row in rows {
        println!(
            "{}\t{}\t{}\t{}\t{:.1}x\t{}\t{}\t{}",
            row.fleet,
            crate::fmt_secs(row.single_us),
            crate::fmt_secs(row.round_us),
            crate::fmt_secs(row.serialized_us),
            row.speedup(),
            row.max_in_flight,
            row.retries,
            row.dropped,
        );
    }
}

/// Renders the sweep as the committed `BENCH_scale.json` document.
/// `queue_rows`, when non-empty, adds the queue microbench section
/// (see [`crate::queue`]) to the same file.
pub fn to_json(rows: &[ScaleRow], queue_rows: &[crate::queue::QueueRow]) -> String {
    let mut out = String::from("{\n  \"scale_sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fleet\": {}, \"single_us\": {}, \"round_us\": {}, \
             \"serialized_us\": {}, \"speedup\": {:.2}, \"max_in_flight\": {}, \
             \"retries\": {}, \"dropped\": {}}}{}\n",
            row.fleet,
            row.single_us,
            row.round_us,
            row.serialized_us,
            row.speedup(),
            row.max_in_flight,
            row.retries,
            row.dropped,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]");
    if !queue_rows.is_empty() {
        out.push_str(",\n");
        out.push_str(&crate::queue::to_json_fragment(queue_rows));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_round_beats_serialized_baseline() {
        // A small fleet keeps this unit test fast; the CI smoke run
        // drives SMOKE_FLEETS (including 1k) through the binary.
        let rows = run(&[1, 8]);
        let eight = rows.iter().find(|r| r.fleet == 8).unwrap();
        // The whole fleet is in flight at once, and the round costs a
        // couple of single-session latencies, not eight.
        assert_eq!(eight.max_in_flight, 8);
        assert!(
            eight.round_us < 3 * eight.single_us,
            "round {} vs single {}",
            eight.round_us,
            eight.single_us
        );
        assert!(eight.speedup() > 2.0, "speedup {:.2}", eight.speedup());
    }

    #[test]
    fn single_session_round_matches_clean_latency_scale() {
        let rows = run(&[1]);
        let one = &rows[0];
        assert_eq!(one.max_in_flight, 1);
        // One lossy session: the round is the session, give or take the
        // retransmit timeouts the drops cost.
        assert!(one.round_us >= one.single_us);
        assert!(one.round_us < 2 * one.single_us);
    }
}
