//! **Figure 6** — Performance for CPU availability attacks: relative
//! execution time of the victim's programs (bzip2, hmmer, astar) when
//! co-resident with different attacker workloads. The paper's shape:
//! I/O-bound attackers ≈1×, CPU-bound attackers ≈2×, the CPU availability
//! attack >10×.

use monatt_attacks::boost::boost_attack_drivers;
use monatt_hypervisor::driver::WorkloadDriver;
use monatt_hypervisor::engine::ServerSim;
use monatt_hypervisor::ids::PcpuId;
use monatt_hypervisor::scheduler::SchedParams;
use monatt_workloads::programs::SpecProgram;
use monatt_workloads::services::CloudService;

/// The attacker workload column of Figures 6 and 7.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackerKind {
    /// No co-resident VM (solo baseline).
    Baseline,
    /// A cloud service workload.
    Service(CloudService),
    /// The CPU availability attack of Section 4.5.1.
    CpuAvail,
}

impl AttackerKind {
    /// The full column set of Figure 6, in paper order.
    pub fn all() -> Vec<AttackerKind> {
        let mut kinds = vec![AttackerKind::Baseline];
        kinds.extend(CloudService::ALL.into_iter().map(AttackerKind::Service));
        kinds.push(AttackerKind::CpuAvail);
        kinds
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            AttackerKind::Baseline => "baseline".into(),
            AttackerKind::Service(s) => s.name().into(),
            AttackerKind::CpuAvail => "CPU_avail".into(),
        }
    }

    fn drivers(&self, seed: u64) -> Option<Vec<Box<dyn WorkloadDriver>>> {
        match self {
            AttackerKind::Baseline => None,
            AttackerKind::Service(svc) => Some(vec![Box::new(svc.driver(seed))]),
            AttackerKind::CpuAvail => Some(boost_attack_drivers()),
        }
    }
}

/// One cell of Figure 6.
#[derive(Clone, Debug)]
pub struct Cell {
    /// The victim's program.
    pub program: SpecProgram,
    /// The co-resident workload.
    pub attacker: AttackerKind,
    /// Victim execution time relative to the solo baseline.
    pub relative_time: f64,
}

/// Runs one victim/attacker pairing and returns the victim's relative
/// execution time. `boost` toggles the scheduler-ablation variant.
pub fn run_cell(program: SpecProgram, attacker: AttackerKind, params: SchedParams) -> f64 {
    let mut sim = ServerSim::new(1, params);
    let victim_prog = program.driver();
    let stats = victim_prog.stats();
    sim.create_vm(
        monatt_hypervisor::vm::VmConfig::new("victim", vec![Box::new(victim_prog)])
            .pin(vec![PcpuId(0)]),
    );
    if let Some(drivers) = attacker.drivers(42) {
        let pins = vec![PcpuId(0); drivers.len()];
        sim.create_vm(monatt_hypervisor::vm::VmConfig::new("attacker", drivers).pin(pins));
    }
    // Run until the victim finishes (cap at 60x the solo time).
    let baseline_us = program.work_us();
    let cap = baseline_us * 60;
    let mut elapsed = 0u64;
    while stats.borrow().finished_at.is_none() && elapsed < cap {
        sim.run_for(500_000);
        elapsed += 500_000;
    }
    let finish = stats.borrow().elapsed_us().unwrap_or(cap) as f64;
    finish / baseline_us as f64
}

/// Runs the full Figure 6 matrix.
pub fn run(params: SchedParams) -> Vec<Cell> {
    let mut cells = Vec::new();
    for program in SpecProgram::ALL {
        for attacker in AttackerKind::all() {
            cells.push(Cell {
                program,
                attacker,
                relative_time: run_cell(program, attacker, params),
            });
        }
    }
    cells
}

/// Prints the paper-style matrix.
pub fn print(cells: &[Cell]) {
    println!("Figure 6: Performance for CPU Availability Attacks");
    println!("victim\tattacker\trelative_execution_time");
    for cell in cells {
        println!(
            "{}\t{}\t{:.2}x",
            cell.program,
            cell.attacker.label(),
            cell.relative_time
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(program: SpecProgram, attacker: AttackerKind) -> f64 {
        run_cell(program, attacker, SchedParams::default())
    }

    #[test]
    fn baseline_is_one() {
        let r = cell(SpecProgram::Bzip2, AttackerKind::Baseline);
        assert!((r - 1.0).abs() < 0.02, "baseline = {r}");
    }

    #[test]
    fn io_bound_attackers_barely_hurt() {
        for svc in [CloudService::File, CloudService::Stream, CloudService::Mail] {
            let r = cell(SpecProgram::Bzip2, AttackerKind::Service(svc));
            assert!(r < 1.4, "{svc}: relative time {r} should be near 1x");
        }
    }

    #[test]
    fn cpu_bound_attackers_double_the_time() {
        for svc in [CloudService::Database, CloudService::Web, CloudService::App] {
            let r = cell(SpecProgram::Bzip2, AttackerKind::Service(svc));
            assert!(
                (1.5..2.6).contains(&r),
                "{svc}: relative time {r} should be near 2x (fair share)"
            );
        }
    }

    #[test]
    fn availability_attack_degrades_more_than_ten_times() {
        // The paper's headline: "the victim's performance is degraded by
        // more than ten times".
        let r = cell(SpecProgram::Bzip2, AttackerKind::CpuAvail);
        assert!(r > 10.0, "attack slowdown was only {r}x");
    }

    #[test]
    fn precise_accounting_ablation_restores_fairness() {
        let r = run_cell(
            SpecProgram::Bzip2,
            AttackerKind::CpuAvail,
            SchedParams::with_precise_accounting(),
        );
        assert!(
            r < 4.0,
            "with precise accounting the attack should collapse, got {r}x"
        );
    }
}
