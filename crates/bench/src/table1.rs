//! **Table 1** — the monitoring and attestation request APIs: exercises
//! all four customer-facing calls (`startup_attest_current`,
//! `runtime_attest_current`, `runtime_attest_periodic`,
//! `stop_attest_periodic`) end to end.

use monatt_core::{
    AttestationReport, CloudBuilder, Flavor, Image, SecurityProperty, VmRequest, WorkloadSpec,
};

/// The outcome of exercising each Table 1 API once.
#[derive(Clone, Debug)]
pub struct ApiDemo {
    /// `startup_attest_current` result.
    pub startup: AttestationReport,
    /// `runtime_attest_current` result.
    pub runtime: AttestationReport,
    /// Reports accumulated by a periodic subscription before
    /// `stop_attest_periodic`.
    pub periodic_reports: Vec<AttestationReport>,
}

/// Runs the demo: one VM, all four APIs.
pub fn run() -> ApiDemo {
    let mut cloud = CloudBuilder::new().servers(3).seed(5).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Medium, Image::Fedora)
                .require(SecurityProperty::StartupIntegrity)
                .require(SecurityProperty::RuntimeIntegrity)
                .workload(WorkloadSpec::Busy),
        )
        .expect("launch");
    let startup = cloud
        .startup_attest_current(vid, SecurityProperty::StartupIntegrity)
        .expect("startup attestation");
    let runtime = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .expect("runtime attestation");
    let sub = cloud
        .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 5_000_000)
        .expect("subscribe");
    cloud.run(16_000_000);
    let periodic_reports = cloud.stop_attest_periodic(sub).expect("unsubscribe");
    ApiDemo {
        startup,
        runtime,
        periodic_reports,
    }
}

/// Prints the Table 1 walkthrough.
pub fn print(demo: &ApiDemo) {
    println!("Table 1: Types of Monitoring and Attestation Requests");
    println!(
        "startup_attest_current  -> {:?} in {}",
        demo.startup.status,
        crate::fmt_secs(demo.startup.elapsed_us)
    );
    println!(
        "runtime_attest_current  -> {:?} in {}",
        demo.runtime.status,
        crate::fmt_secs(demo.runtime.elapsed_us)
    );
    println!(
        "runtime_attest_periodic -> {} fresh reports at 5s frequency",
        demo.periodic_reports.len()
    );
    println!("stop_attest_periodic    -> subscription closed");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_apis_work() {
        let demo = run();
        assert!(demo.startup.healthy());
        assert!(demo.runtime.healthy());
        assert!(
            (2..=4).contains(&demo.periodic_reports.len()),
            "expected ~3 periodic reports, got {}",
            demo.periodic_reports.len()
        );
    }
}
