//! Regenerates Figure 10: benchmark throughput under periodic attestation.

fn main() {
    let rows = monatt_bench::fig10::run(60);
    monatt_bench::fig10::print(&rows);
}
