//! Regenerates Figure 5: covert vs benign CPU usage-interval distributions.

fn main() {
    let d = monatt_bench::fig05::run(3, 30);
    monatt_bench::fig05::print(&d);
}
