//! Regenerates Figure 6: victim slowdown under co-resident workloads.
//! Pass `--precise-accounting` to run the scheduler-hardening ablation.

use monatt_hypervisor::scheduler::SchedParams;

fn main() {
    let precise = std::env::args().any(|a| a == "--precise-accounting");
    let params = if precise {
        println!("(ablation: precise credit accounting)");
        SchedParams::with_precise_accounting()
    } else {
        SchedParams::default()
    };
    let cells = monatt_bench::fig06::run(params);
    monatt_bench::fig06::print(&cells);
}
