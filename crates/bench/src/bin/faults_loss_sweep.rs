//! Runs the network-loss sweep: attestation success rate and latency at
//! increasing message-drop probabilities, with and without per-hop
//! retransmission.
//!
//! Usage: `faults_loss_sweep [--smoke] [--json <path>]`
//! `--smoke` runs a reduced sample count for CI; `--json` additionally
//! writes the machine-readable document (see `BENCH_faults.json`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1));
    let samples = if smoke { 40 } else { 400 };
    let rows = monatt_bench::faults::run(samples);
    monatt_bench::faults::print(&rows);
    if let Some(path) = json_path {
        std::fs::write(path, monatt_bench::faults::to_json(&rows)).expect("write json");
        eprintln!("wrote {path}");
    }
}
