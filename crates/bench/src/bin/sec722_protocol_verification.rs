//! Re-runs the Section 7.2.2 protocol verification and the weakened
//! variants.

fn main() {
    let results = monatt_bench::sec722::run();
    monatt_bench::sec722::print(&results);
}
