//! Runs the protocol-IR throughput bench: sessions/sec for the flat
//! Figure-3, layered and K=4 fan-out compiled programs at a 1k-VM
//! fleet.
//!
//! Usage: `protocol_bench [--smoke] [--json <path>]`
//! `--smoke` cuts the timed call count for CI; `--json <path>` writes
//! the `BENCH_protocol.json` document instead of the table (use `-`
//! for stdout).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| "-".into()));
    let calls = if smoke {
        monatt_bench::protocol::SMOKE_ITERS
    } else {
        monatt_bench::protocol::ITERS
    };
    let rows = monatt_bench::protocol::run(monatt_bench::protocol::FLEET, calls);
    match json_path {
        Some(path) => {
            let doc = monatt_bench::protocol::to_json(&rows);
            if path == "-" {
                print!("{doc}");
            } else {
                std::fs::write(&path, doc).expect("write json");
                eprintln!("wrote {path}");
            }
        }
        None => monatt_bench::protocol::print(&rows),
    }
}
