//! Exercises the four Table 1 monitoring/attestation APIs.

fn main() {
    let demo = monatt_bench::table1::run();
    monatt_bench::table1::print(&demo);
}
