//! Regenerates Figure 4: the cross-VM covert channel trace.

fn main() {
    let trace = monatt_bench::fig04::run(3, b"\xA5");
    monatt_bench::fig04::print(&trace);
}
