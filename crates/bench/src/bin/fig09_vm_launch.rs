//! Regenerates Figure 9: VM launch stage breakdown with attestation.

fn main() {
    let rows = monatt_bench::fig09::run();
    monatt_bench::fig09::print(&rows);
}
