//! Runs the queue microbenchmark: push/pop/cancel ns/op for the
//! BinaryHeap event queue versus the hierarchical timer wheel at
//! 10^3 / 10^5 / 10^7 pending timers.
//!
//! Usage: `queue_bench [--smoke]`
//! `--smoke` sweeps the reduced population set for CI. The committed
//! numbers live in `BENCH_scale.json` (written by `scale_sweep --json`,
//! which embeds this sweep alongside the fleet curves).

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &monatt_bench::queue::SMOKE_SIZES
    } else {
        &monatt_bench::queue::SIZES
    };
    let rows = monatt_bench::queue::run(sizes);
    monatt_bench::queue::print(&rows);
}
