//! Regenerates Figure 7: relative CPU usage of attacker and victim.

fn main() {
    let rows = monatt_bench::fig07::run(10);
    monatt_bench::fig07::print(&rows);
}
