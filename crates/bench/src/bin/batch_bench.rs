//! Runs the batched-verification microbenchmark: serial vs batched
//! Schnorr verification and AS-validate at batch 1 / 8 / 64, plus the
//! evidence-cache hit-rate sweep (DESIGN.md §13).
//!
//! Usage: `batch_bench [--smoke] [--json]`
//! `--smoke` cuts the timing iterations and the simulated horizon for
//! CI; `--json` prints `BENCH_crypto.json`-style rows instead of the
//! table. The committed numbers live in the `batch_*` rows of
//! `BENCH_crypto.json`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let iters = if smoke {
        monatt_bench::batch::SMOKE_ITERS
    } else {
        monatt_bench::batch::ITERS
    };
    let run_us = if smoke { 120_000_000 } else { 600_000_000 };
    let crypto = monatt_bench::batch::run_crypto(&monatt_bench::batch::SIZES, iters);
    let validate = monatt_bench::batch::run_validate(&monatt_bench::batch::SIZES, iters);
    let cache = monatt_bench::batch::run_cache(run_us);
    if json {
        monatt_bench::batch::print_json(&crypto, &validate, &cache, iters);
    } else {
        monatt_bench::batch::print(&crypto, &validate, &cache);
    }
}
