//! Runs the chaos sweep: periodic attestation fleets under seeded
//! crash/recovery churn, message loss, admission shedding and session
//! deadlines, verifying the liveness invariants in every cell. Every
//! cell runs on the K=4 sharded event engine (see `chaos::SHARDS`).
//!
//! Usage: `chaos_sweep [--smoke] [--control-plane] [--json <path>]`
//! `--smoke` runs a reduced grid for CI; `--control-plane` runs only
//! the replicated control-plane churn grid (sharded controllers + AS
//! replica pool under their own MTBF process); `--json` additionally
//! writes the machine-readable document (see `BENCH_chaos.json`),
//! which always carries both grids.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let cp_only = args.iter().any(|a| a == "--control-plane");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1));
    let cp_rows = if smoke {
        monatt_bench::chaos::run_control_plane(
            &monatt_bench::chaos::CP_SMOKE_FLEETS,
            &monatt_bench::chaos::CP_SMOKE_CONFIGS,
            &monatt_bench::chaos::CP_SMOKE_MTBFS,
        )
    } else {
        monatt_bench::chaos::run_control_plane(
            &monatt_bench::chaos::CP_FLEETS,
            &monatt_bench::chaos::CP_CONFIGS,
            &monatt_bench::chaos::CP_MTBFS,
        )
    };
    if cp_only {
        monatt_bench::chaos::print_control_plane(&cp_rows);
        return;
    }
    let rows = if smoke {
        monatt_bench::chaos::run(
            &monatt_bench::chaos::SMOKE_FLEETS,
            &monatt_bench::chaos::SMOKE_MTBFS,
            &monatt_bench::chaos::SMOKE_LOSSES,
        )
    } else {
        monatt_bench::chaos::run(
            &monatt_bench::chaos::FLEETS,
            &monatt_bench::chaos::MTBFS,
            &monatt_bench::chaos::LOSSES,
        )
    };
    monatt_bench::chaos::print(&rows);
    monatt_bench::chaos::print_control_plane(&cp_rows);
    if let Some(path) = json_path {
        std::fs::write(
            path,
            monatt_bench::chaos::to_json_with_control_plane(&rows, &cp_rows),
        )
        .expect("write json");
        eprintln!("wrote {path}");
    }
}
