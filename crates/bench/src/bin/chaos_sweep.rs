//! Runs the chaos sweep: periodic attestation fleets under seeded
//! crash/recovery churn, message loss, admission shedding and session
//! deadlines, verifying the liveness invariants in every cell. Every
//! cell runs on the K=4 sharded event engine (see `chaos::SHARDS`).
//!
//! Usage: `chaos_sweep [--smoke] [--json <path>]`
//! `--smoke` runs a reduced grid for CI; `--json` additionally writes
//! the machine-readable document (see `BENCH_chaos.json`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1));
    let rows = if smoke {
        monatt_bench::chaos::run(
            &monatt_bench::chaos::SMOKE_FLEETS,
            &monatt_bench::chaos::SMOKE_MTBFS,
            &monatt_bench::chaos::SMOKE_LOSSES,
        )
    } else {
        monatt_bench::chaos::run(
            &monatt_bench::chaos::FLEETS,
            &monatt_bench::chaos::MTBFS,
            &monatt_bench::chaos::LOSSES,
        )
    };
    monatt_bench::chaos::print(&rows);
    if let Some(path) = json_path {
        std::fs::write(path, monatt_bench::chaos::to_json(&rows)).expect("write json");
        eprintln!("wrote {path}");
    }
}
