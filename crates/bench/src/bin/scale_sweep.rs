//! Runs the concurrency scale sweep: one round of N periodic
//! attestations at 10% message loss versus the serialized baseline.
//!
//! Usage: `scale_sweep [--smoke] [--json <path>]`
//! `--smoke` sweeps a reduced fleet set for CI; `--json` additionally
//! writes the machine-readable document (see `BENCH_scale.json`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1));
    let fleets: &[usize] = if smoke {
        &monatt_bench::scale::SMOKE_FLEETS
    } else {
        &monatt_bench::scale::FLEETS
    };
    let rows = monatt_bench::scale::run(fleets);
    monatt_bench::scale::print(&rows);
    if let Some(path) = json_path {
        // The committed document carries the queue microbench alongside
        // the fleet sweep (smoke runs skip --json, so CI never pays for
        // the 10^7-timer population).
        let sizes: &[usize] = if smoke {
            &monatt_bench::queue::SMOKE_SIZES
        } else {
            &monatt_bench::queue::SIZES
        };
        let queue_rows = monatt_bench::queue::run(sizes);
        monatt_bench::queue::print(&queue_rows);
        std::fs::write(path, monatt_bench::scale::to_json(&rows, &queue_rows)).expect("write json");
        eprintln!("wrote {path}");
    }
}
