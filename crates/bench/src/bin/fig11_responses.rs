//! Regenerates Figure 11: attestation + response reaction times.

fn main() {
    let rows = monatt_bench::fig11::run();
    monatt_bench::fig11::print(&rows);
}
