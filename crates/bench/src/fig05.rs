//! **Figure 5** — Measurements of covert-channel vulnerabilities: the
//! probability distribution of CPU usage intervals recorded by the 30
//! Trust Evidence Registers, for a covert-channel sender (two peaks) and
//! a benign VM (single peak at the 30 ms slice).

use monatt_attacks::covert::{CovertReceiver, CovertSender};
use monatt_core::interpret::{analyze_intervals, IntervalAnalysis};
use monatt_hypervisor::driver::BusyLoop;
use monatt_hypervisor::engine::ServerSim;
use monatt_hypervisor::ids::PcpuId;
use monatt_hypervisor::scheduler::SchedParams;
use monatt_hypervisor::time::SimTime;
use monatt_hypervisor::vm::VmConfig;

/// The two distributions of Figure 5 plus their interpretations.
#[derive(Clone, Debug)]
pub struct IntervalDistributions {
    /// Normalized covert-channel sender distribution over `bins` bins.
    pub covert: Vec<f64>,
    /// Normalized benign-VM distribution.
    pub benign: Vec<f64>,
    /// Detector verdict on the covert pattern.
    pub covert_analysis: IntervalAnalysis,
    /// Detector verdict on the benign pattern.
    pub benign_analysis: IntervalAnalysis,
    /// Number of histogram bins used.
    pub bins: usize,
}

/// Runs both scenarios for `seconds`, with a configurable bin count (the
/// paper uses 30; the bin-count sweep is the ablation of DESIGN.md).
pub fn run(seconds: u64, bins: usize) -> IntervalDistributions {
    // Covert scenario: sender + receiver sharing pCPU 0.
    let mut sim = ServerSim::new(1, SchedParams::default());
    let sender = CovertSender::new(b"\xA5");
    let receiver = CovertReceiver::new();
    let sender_vm =
        sim.create_vm(VmConfig::new("sender", vec![Box::new(sender)]).pin(vec![PcpuId(0)]));
    sim.create_vm(VmConfig::new("receiver", vec![Box::new(receiver)]).pin(vec![PcpuId(0)]));
    sim.run_until(SimTime::from_secs(seconds));
    let covert_hist = sim.profile().interval_histogram(sender_vm, bins, 1_000);

    // Benign scenario: two CPU-bound VMs sharing pCPU 0.
    let mut sim = ServerSim::new(1, SchedParams::default());
    let benign_vm = sim.create_vm(
        VmConfig::new("benign", vec![Box::new(BusyLoop::default())]).pin(vec![PcpuId(0)]),
    );
    sim.create_vm(VmConfig::new("other", vec![Box::new(BusyLoop::default())]).pin(vec![PcpuId(0)]));
    sim.run_until(SimTime::from_secs(seconds));
    let benign_hist = sim.profile().interval_histogram(benign_vm, bins, 1_000);

    let normalize = |hist: &[u64]| {
        let total: u64 = hist.iter().sum();
        hist.iter()
            .map(|&v| {
                if total == 0 {
                    0.0
                } else {
                    v as f64 / total as f64
                }
            })
            .collect::<Vec<f64>>()
    };
    IntervalDistributions {
        covert: normalize(&covert_hist),
        benign: normalize(&benign_hist),
        covert_analysis: analyze_intervals(&covert_hist, 1_000),
        benign_analysis: analyze_intervals(&benign_hist, 1_000),
        bins,
    }
}

/// Prints the paper-style distribution table.
pub fn print(d: &IntervalDistributions) {
    println!(
        "Figure 5: Measurements of Covert-channel Vulnerabilities ({} bins)",
        d.bins
    );
    println!("interval_ms\tcovert_prob\tbenign_prob");
    for i in 0..d.bins {
        println!("({},{}]\t{:.3}\t{:.3}", i, i + 1, d.covert[i], d.benign[i]);
    }
    println!(
        "covert verdict: {} (centers: {:?})",
        if d.covert_analysis.covert {
            "COVERT CHANNEL"
        } else {
            "benign"
        },
        d.covert_analysis.centers_ms
    );
    println!(
        "benign verdict: {}",
        if d.benign_analysis.covert {
            "COVERT CHANNEL"
        } else {
            "benign"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covert_pattern_has_two_peaks_benign_has_one() {
        let d = run(3, 30);
        assert!(d.covert_analysis.covert, "{:?}", d.covert_analysis);
        assert!(!d.benign_analysis.covert, "{:?}", d.benign_analysis);
        // Covert mass concentrates in the 1ms and 4ms bins.
        assert!(d.covert[0] + d.covert[3] > 0.9, "{:?}", d.covert);
        // Benign mass concentrates at the 30ms slice.
        assert!(d.benign[29] > 0.8, "{:?}", d.benign);
    }

    #[test]
    fn detection_robust_to_bin_count() {
        // The DESIGN.md ablation: fewer bins still detect, down to a
        // point.
        for bins in [30, 15, 10] {
            let d = run(2, bins);
            assert!(
                d.covert_analysis.covert,
                "covert channel should be detected with {bins} bins"
            );
            assert!(!d.benign_analysis.covert);
        }
    }
}
