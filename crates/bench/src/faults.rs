//! **Loss sweep** — attestation success rate and latency on a lossy
//! network, with and without per-hop retransmission. Not a paper figure:
//! this harness validates the fault-tolerance layer added on top of the
//! Figure-3 protocol. Each message is dropped independently with
//! probability `p`; the retransmitting cloud uses the default
//! [`RetryPolicy`], the fail-fast cloud a single attempt per hop (the
//! pre-retransmit behaviour).

use monatt_core::{
    CloudBuilder, CloudError, Flavor, Image, RetryPolicy, SecurityProperty, Vid, VmRequest,
};
use monatt_net::sim::FaultModel;

/// The drop probabilities swept (fraction of messages lost).
pub const DROP_PROBS: [f64; 6] = [0.0, 0.02, 0.05, 0.1, 0.2, 0.3];

/// One row of the loss sweep: both configurations at one drop rate.
#[derive(Clone, Copy, Debug)]
pub struct LossRow {
    /// Per-message drop probability.
    pub drop_prob: f64,
    /// Attestations attempted per configuration.
    pub samples: usize,
    /// Successful attestations with retransmission enabled.
    pub retry_success: usize,
    /// Successful attestations with fail-fast hops.
    pub fail_fast_success: usize,
    /// Mean latency of successful retransmitting attestations.
    pub retry_latency_us: u64,
    /// Mean latency of successful fail-fast attestations.
    pub fail_fast_latency_us: u64,
    /// Total retransmissions performed by the retrying cloud.
    pub retries: u64,
    /// Retrying attestations that exhausted the budget (peer declared
    /// unreachable).
    pub unreachable: usize,
}

impl LossRow {
    /// Success rate of the retransmitting configuration.
    pub fn retry_success_rate(&self) -> f64 {
        self.retry_success as f64 / self.samples as f64
    }

    /// Success rate of the fail-fast configuration.
    pub fn fail_fast_success_rate(&self) -> f64 {
        self.fail_fast_success as f64 / self.samples as f64
    }
}

struct SweepCloud {
    cloud: monatt_core::Cloud,
    vid: Vid,
}

fn sweep_cloud(retry: RetryPolicy) -> SweepCloud {
    let mut cloud = CloudBuilder::new().servers(3).seed(99).retry(retry).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .expect("launch on a clean network");
    SweepCloud { cloud, vid }
}

fn measure(sc: &mut SweepCloud, drop_prob: f64, samples: usize) -> (usize, u64, u64, usize) {
    // Fresh fault stream per (policy, probability) cell so the two
    // configurations face statistically identical networks.
    let seed = 0xD0_0D + (drop_prob * 1000.0) as u64;
    sc.cloud
        .network_mut()
        .set_fault_model(FaultModel::new(seed).drop_prob(drop_prob));
    sc.cloud.reset_protocol_stats();
    let mut successes = 0usize;
    let mut latency_sum = 0u64;
    let mut unreachable = 0usize;
    for _ in 0..samples {
        match sc
            .cloud
            .runtime_attest_current(sc.vid, SecurityProperty::RuntimeIntegrity)
        {
            Ok(report) => {
                successes += 1;
                latency_sum += report.elapsed_us;
            }
            Err(CloudError::Unreachable { .. }) => unreachable += 1,
            Err(_) => {}
        }
    }
    let mean_latency = if successes > 0 {
        latency_sum / successes as u64
    } else {
        0
    };
    (
        successes,
        mean_latency,
        sc.cloud.protocol_stats().retries,
        unreachable,
    )
}

/// Sweeps [`DROP_PROBS`] with `samples` attestations per configuration.
pub fn run(samples: usize) -> Vec<LossRow> {
    let mut rows = Vec::new();
    for &drop_prob in &DROP_PROBS {
        let mut retrying = sweep_cloud(RetryPolicy::default());
        let mut fail_fast = sweep_cloud(RetryPolicy::disabled());
        let (retry_success, retry_latency_us, retries, unreachable) =
            measure(&mut retrying, drop_prob, samples);
        let (fail_fast_success, fail_fast_latency_us, _, _) =
            measure(&mut fail_fast, drop_prob, samples);
        rows.push(LossRow {
            drop_prob,
            samples,
            retry_success,
            fail_fast_success,
            retry_latency_us,
            fail_fast_latency_us,
            retries,
            unreachable,
        });
    }
    rows
}

/// Prints the sweep as a table.
pub fn print(rows: &[LossRow]) {
    println!("Loss sweep: attestation under message loss (retry vs fail-fast)");
    println!("drop\tretry-ok\tfailfast-ok\tretry-lat\tfailfast-lat\tretries\tunreach");
    for row in rows {
        println!(
            "{:.2}\t{}\t{}\t{}\t{}\t{}\t{}",
            row.drop_prob,
            crate::fmt_pct(row.retry_success_rate()),
            crate::fmt_pct(row.fail_fast_success_rate()),
            crate::fmt_secs(row.retry_latency_us),
            crate::fmt_secs(row.fail_fast_latency_us),
            row.retries,
            row.unreachable,
        );
    }
}

/// Renders the sweep as the committed `BENCH_faults.json` document.
pub fn to_json(rows: &[LossRow]) -> String {
    let mut out = String::from("{\n  \"loss_sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"drop_prob\": {:.2}, \"samples\": {}, \"retry_success_rate\": {:.4}, \
             \"fail_fast_success_rate\": {:.4}, \"retry_latency_us\": {}, \
             \"fail_fast_latency_us\": {}, \"retries\": {}, \"unreachable\": {}}}{}\n",
            row.drop_prob,
            row.samples,
            row.retry_success_rate(),
            row.fail_fast_success_rate(),
            row.retry_latency_us,
            row.fail_fast_latency_us,
            row.retries,
            row.unreachable,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retries_hold_ninety_nine_percent_at_ten_percent_loss() {
        let rows = run(100);
        let row = rows
            .iter()
            .find(|r| (r.drop_prob - 0.1).abs() < 1e-9)
            .unwrap();
        assert!(
            row.retry_success_rate() >= 0.99,
            "retry success at 10% loss: {}",
            row.retry_success_rate()
        );
        // Fail-fast visibly degrades: one drop among six hops kills the
        // attestation, so the expected rate is roughly 0.9^6 ≈ 0.53.
        assert!(
            row.fail_fast_success_rate() < 0.9,
            "fail-fast at 10% loss: {}",
            row.fail_fast_success_rate()
        );
        assert!(row.retries > 0);
    }

    #[test]
    fn clean_network_is_bit_identical_across_policies() {
        // With no loss the retransmit layer must add nothing: same
        // success count, same mean latency, zero retries.
        let rows = run(20);
        let row = &rows[0];
        assert_eq!(row.drop_prob, 0.0);
        assert_eq!(row.retry_success, row.samples);
        assert_eq!(row.fail_fast_success, row.samples);
        assert_eq!(row.retry_latency_us, row.fail_fast_latency_us);
        assert_eq!(row.retries, 0);
    }

    #[test]
    fn success_rate_degrades_monotonically_without_retries() {
        let rows = run(60);
        // More loss never helps the fail-fast configuration (allow a
        // small sampling wobble).
        for pair in rows.windows(2) {
            assert!(
                pair[1].fail_fast_success_rate() <= pair[0].fail_fast_success_rate() + 0.05,
                "{:?}",
                pair
            );
        }
        // And retries dominate fail-fast everywhere.
        for row in &rows {
            assert!(row.retry_success >= row.fail_fast_success, "{row:?}");
        }
    }

    #[test]
    fn json_document_is_well_formed() {
        let rows = run(5);
        let json = to_json(&rows);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert_eq!(json.matches("drop_prob").count(), DROP_PROBS.len());
    }
}
