//! **Section 7.2.2** — Protocol verification: re-checks the secrecy,
//! integrity and authentication properties of the attestation protocol
//! with the bounded Dolev-Yao verifier (the paper used ProVerif), and
//! demonstrates attack-finding on weakened variants.

use monatt_verifier::cloudmonatt::{verify_cloudmonatt, ModelConfig};
use monatt_verifier::search::VerifyOutcome;

/// One verification scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name.
    pub name: &'static str,
    /// What the expected verdict means.
    pub expectation: &'static str,
    /// Model configuration.
    pub config: ModelConfig,
    /// Whether the protocol should verify cleanly.
    pub expect_verified: bool,
}

/// The scenario matrix: the deployed protocol plus each weakened variant.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "full protocol",
            expectation: "all properties hold",
            config: ModelConfig::full(),
            expect_verified: true,
        },
        Scenario {
            name: "no quote signatures + compromised host hop",
            expectation: "attacker forges measurements (integrity broken)",
            config: ModelConfig {
                sign_quotes: false,
                leak_kz: true,
                ..ModelConfig::full()
            },
            expect_verified: false,
        },
        Scenario {
            name: "no channel encryption",
            expectation: "P, M, R leak (secrecy broken)",
            config: ModelConfig {
                encrypt_channels: false,
                ..ModelConfig::full()
            },
            expect_verified: false,
        },
        Scenario {
            name: "no nonces + long-term attestation key + recorded session",
            expectation: "stale measurements replayable (freshness broken)",
            config: ModelConfig {
                include_nonces: false,
                fresh_attestation_key: false,
                preload_old_session: true,
                ..ModelConfig::full()
            },
            expect_verified: false,
        },
        Scenario {
            name: "no nonces but fresh per-session attestation keys",
            expectation: "per-session ASKs alone blocks replay (defence in depth)",
            config: ModelConfig {
                include_nonces: false,
                fresh_attestation_key: true,
                preload_old_session: true,
                ..ModelConfig::full()
            },
            expect_verified: true,
        },
    ]
}

/// Runs all scenarios.
pub fn run() -> Vec<(Scenario, VerifyOutcome)> {
    scenarios()
        .into_iter()
        .map(|s| {
            let outcome = verify_cloudmonatt(&s.config);
            (s, outcome)
        })
        .collect()
}

/// Prints the verification report.
pub fn print(results: &[(Scenario, VerifyOutcome)]) {
    println!("Section 7.2.2: Protocol Verification (bounded Dolev-Yao)");
    for (scenario, outcome) in results {
        let verdict = if outcome.verified() {
            "VERIFIED"
        } else {
            "ATTACK FOUND"
        };
        println!(
            "\n[{verdict}] {} — {} ({} branches)",
            scenario.name, scenario.expectation, outcome.branches
        );
        for v in &outcome.violations {
            println!("  - {}: {}", v.property, v.detail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_match_expectations() {
        for (scenario, outcome) in run() {
            assert_eq!(
                outcome.verified(),
                scenario.expect_verified,
                "{}: expected verified={}, got violations {:#?}",
                scenario.name,
                scenario.expect_verified,
                outcome.violations
            );
        }
    }
}
