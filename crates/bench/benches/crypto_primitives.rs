//! Criterion benchmarks of the cryptographic substrate: the per-operation
//! costs behind the attestation protocol's latency model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use monatt_crypto::drbg::Drbg;
use monatt_crypto::group::Group;
use monatt_crypto::modmath::{mod_exp, mod_exp_ref, mod_mul, mod_mul_ref, mod_sub};
use monatt_crypto::schnorr::SigningKey;
use monatt_crypto::sha256::sha256;
use monatt_crypto::{EphemeralSecret, SealKey};

/// Before/after kernels of the modular-arithmetic hot path. The `_naive`
/// variants are the seed implementation (binary long division); the
/// Montgomery variants are what the protocol now runs. BENCH_crypto.json
/// snapshots these numbers.
fn bench_modmath(c: &mut Criterion) {
    let grp = Group::default_group();
    let mut rng = Drbg::from_seed(9);
    let a = rng.next_u256_in_group(&grp.p);
    let b = rng.next_u256_in_group(&grp.p);
    let e = rng.next_u256_in_group(&grp.q);
    c.bench_function("mod_mul_naive", |bch| {
        bch.iter(|| mod_mul_ref(std::hint::black_box(&a), &b, &grp.p))
    });
    c.bench_function("mod_mul_montgomery", |bch| {
        bch.iter(|| mod_mul(std::hint::black_box(&a), &b, &grp.p))
    });
    c.bench_function("mod_exp_naive", |bch| {
        bch.iter(|| mod_exp_ref(std::hint::black_box(&a), &e, &grp.p))
    });
    c.bench_function("mod_exp_montgomery_w4", |bch| {
        bch.iter(|| mod_exp(std::hint::black_box(&a), &e, &grp.p))
    });
    c.bench_function("pow_g_fixed_window", |bch| {
        bch.iter(|| grp.pow_g(std::hint::black_box(&e)))
    });
}

/// The two shapes of Schnorr verification's double exponentiation:
/// two separate ladders (seed) vs. one shared Shamir chain (current).
fn bench_double_exp(c: &mut Criterion) {
    let grp = Group::default_group();
    let mut rng = Drbg::from_seed(10);
    let pk = grp.pow_g(&rng.next_u256_in_group(&grp.q));
    let s = rng.next_u256_in_group(&grp.q);
    let neg_e = mod_sub(&grp.q, &rng.next_u256_in_group(&grp.q), &grp.q);
    c.bench_function("verify_core_two_ladders", |bch| {
        bch.iter(|| grp.mul(&grp.pow_g(std::hint::black_box(&s)), &grp.pow(&pk, &neg_e)))
    });
    c.bench_function("schnorr_verify_shamir", |bch| {
        bch.iter(|| grp.pow_double(&grp.g, std::hint::black_box(&s), &pk, &neg_e))
    });
}

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let mut rng = Drbg::from_seed(1);
    let key = SigningKey::generate(&mut rng);
    let msg = b"attestation report for vid-42";
    let sig = key.sign(msg);
    c.bench_function("schnorr_sign", |b| {
        b.iter(|| key.sign(std::hint::black_box(msg)))
    });
    c.bench_function("schnorr_verify", |b| {
        b.iter(|| {
            key.verifying_key()
                .verify(std::hint::black_box(msg), &sig)
                .unwrap()
        })
    });
}

fn bench_dh(c: &mut Criterion) {
    let mut rng = Drbg::from_seed(2);
    let alice = EphemeralSecret::generate(&mut rng);
    let bob = EphemeralSecret::generate(&mut rng);
    c.bench_function("dh_agree", |b| {
        b.iter(|| {
            alice
                .agree(std::hint::black_box(&bob.public_share()), b"bench")
                .unwrap()
        })
    });
}

fn bench_seal(c: &mut Criterion) {
    let key = SealKey::derive(&[7u8; 32], b"bench");
    let payload = vec![0u8; 1024];
    let nonce = [1u8; 12];
    let sealed = key.seal(&nonce, b"", &payload);
    c.bench_function("seal_1KiB", |b| {
        b.iter(|| key.seal(&nonce, b"", std::hint::black_box(&payload)))
    });
    c.bench_function("open_1KiB", |b| {
        b.iter(|| {
            key.open(&nonce, b"", std::hint::black_box(&sealed))
                .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_modmath,
    bench_double_exp,
    bench_sha256,
    bench_schnorr,
    bench_dh,
    bench_seal
);
criterion_main!(benches);
