//! Criterion benchmarks of the cryptographic substrate: the per-operation
//! costs behind the attestation protocol's latency model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::SigningKey;
use monatt_crypto::sha256::sha256;
use monatt_crypto::{EphemeralSecret, SealKey};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let mut rng = Drbg::from_seed(1);
    let key = SigningKey::generate(&mut rng);
    let msg = b"attestation report for vid-42";
    let sig = key.sign(msg);
    c.bench_function("schnorr_sign", |b| b.iter(|| key.sign(std::hint::black_box(msg))));
    c.bench_function("schnorr_verify", |b| {
        b.iter(|| key.verifying_key().verify(std::hint::black_box(msg), &sig).unwrap())
    });
}

fn bench_dh(c: &mut Criterion) {
    let mut rng = Drbg::from_seed(2);
    let alice = EphemeralSecret::generate(&mut rng);
    let bob = EphemeralSecret::generate(&mut rng);
    c.bench_function("dh_agree", |b| {
        b.iter(|| alice.agree(std::hint::black_box(&bob.public_share()), b"bench").unwrap())
    });
}

fn bench_seal(c: &mut Criterion) {
    let key = SealKey::derive(&[7u8; 32], b"bench");
    let payload = vec![0u8; 1024];
    let nonce = [1u8; 12];
    let sealed = key.seal(&nonce, b"", &payload);
    c.bench_function("seal_1KiB", |b| {
        b.iter(|| key.seal(&nonce, b"", std::hint::black_box(&payload)))
    });
    c.bench_function("open_1KiB", |b| {
        b.iter(|| key.open(&nonce, b"", std::hint::black_box(&sealed)).unwrap())
    });
}

criterion_group!(benches, bench_sha256, bench_schnorr, bench_dh, bench_seal);
criterion_main!(benches);
