//! Criterion benchmarks of the attestation machinery itself: how fast our
//! implementation executes the Figure 3 protocol pieces (independent of
//! the simulated latency model), and how it scales with cloud size — the
//! scalability argument of Section 3.2.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monatt_core::{
    AttestationServer, CloudBuilder, CloudServerNode, Flavor, Image, MeasurementSpec, ReferenceDb,
    SecurityProperty, ServerId, Vid, VmRequest,
};
use monatt_crypto::drbg::Drbg;
use monatt_hypervisor::driver::IdleDriver;
use monatt_hypervisor::scheduler::SchedParams;

fn bench_quote_roundtrip(c: &mut Criterion) {
    let mut rng = Drbg::from_seed(1);
    let mut attserver = AttestationServer::new(&mut rng);
    let refs = ReferenceDb::new();
    let mut node = CloudServerNode::boot(
        ServerId(0),
        1,
        SchedParams::default(),
        Drbg::from_seed(2),
        refs.platform_components(),
        &[SecurityProperty::StartupIntegrity],
    );
    attserver.register_cloud_server(node.identity_key());
    node.launch_vm(
        Vid(1),
        Image::Cirros,
        Image::Cirros.pristine_bytes(),
        vec![Box::new(IdleDriver)],
        256,
    );
    c.bench_function("measure_quote_validate", |b| {
        b.iter(|| {
            let resp: monatt_core::messages::MeasureResponse = node
                .attest(Vid(1), MeasurementSpec::BootIntegrity, [3u8; 32])
                .unwrap()
                .into();
            attserver
                .validate_response(&resp, Vid(1), MeasurementSpec::BootIntegrity, [3u8; 32])
                .unwrap();
        })
    });
}

fn bench_full_attestation(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_attestation");
    group.sample_size(20);
    for servers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(servers),
            &servers,
            |b, &servers| {
                let mut cloud = CloudBuilder::new().servers(servers).seed(9).build();
                let vid = cloud
                    .request_vm(
                        VmRequest::new(Flavor::Small, Image::Cirros)
                            .require(SecurityProperty::RuntimeIntegrity),
                    )
                    .unwrap();
                b.iter(|| {
                    cloud
                        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quote_roundtrip, bench_full_attestation);
criterion_main!(benches);
