//! Criterion benchmarks of the covert-channel detector: histogram
//! clustering cost per attestation (it must be cheap, since the
//! Attestation Server interprets every periodic report).

use criterion::{criterion_group, criterion_main, Criterion};
use monatt_core::analyze_intervals;

fn bench_analyze(c: &mut Criterion) {
    // A realistic bimodal histogram.
    let mut covert = vec![0u64; 30];
    covert[0] = 320;
    covert[3] = 290;
    covert[29] = 5;
    let mut benign = vec![0u64; 30];
    benign[29] = 330;
    c.bench_function("analyze_intervals_covert", |b| {
        b.iter(|| analyze_intervals(std::hint::black_box(&covert), 1_000))
    });
    c.bench_function("analyze_intervals_benign", |b| {
        b.iter(|| analyze_intervals(std::hint::black_box(&benign), 1_000))
    });
}

criterion_group!(benches, bench_analyze);
criterion_main!(benches);
