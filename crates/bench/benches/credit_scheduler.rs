//! Criterion benchmarks of the hypervisor simulator: wall-clock cost of
//! simulating one second for contended and uncontended servers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monatt_hypervisor::driver::BusyLoop;
use monatt_hypervisor::engine::ServerSim;
use monatt_hypervisor::ids::PcpuId;
use monatt_hypervisor::scheduler::SchedParams;
use monatt_hypervisor::vm::VmConfig;

fn bench_simulated_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_second");
    group.sample_size(20);
    for vms in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(vms), &vms, |b, &vms| {
            b.iter(|| {
                let mut sim = ServerSim::new(4, SchedParams::default());
                for i in 0..vms {
                    sim.create_vm(
                        VmConfig::new(&format!("vm{i}"), vec![Box::new(BusyLoop::new(500))])
                            .pin(vec![PcpuId(i % 4)]),
                    );
                }
                sim.run_for(1_000_000);
                sim.now()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulated_second);
criterion_main!(benches);
