//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses: `criterion_group!` / `criterion_main!`, bench groups,
//! throughput annotation, and per-benchmark timing with an adaptive
//! iteration count.
//!
//! It is a measurement harness, not a statistics engine: each benchmark
//! is calibrated to ~10 ms batches, timed over a fixed number of batches,
//! and reported as mean/min ns per iteration. Set `CRITERION_JSON=<path>`
//! to also write a machine-readable summary of every benchmark that ran
//! in the process (the repo commits such snapshots, e.g.
//! `BENCH_crypto.json`, to track performance across PRs).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Target wall-clock time for one timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(10);
/// Timed batches per benchmark.
const BATCHES: u32 = 7;

static RESULTS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

#[derive(Clone, Debug)]
struct Record {
    id: String,
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
    throughput: Option<Throughput>,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter (within a named group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    best_batch_ns: f64,
}

impl Bencher {
    /// Times `f`, running it enough times for a stable estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: double the iteration count until one batch takes
        // long enough to time reliably.
        let mut iters_per_batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                std::hint::black_box(f());
            }
            let took = start.elapsed();
            if took >= BATCH_TARGET || iters_per_batch >= 1 << 40 {
                break;
            }
            iters_per_batch = if took.is_zero() {
                iters_per_batch * 128
            } else {
                let scale = BATCH_TARGET.as_secs_f64() / took.as_secs_f64();
                (iters_per_batch as f64 * scale.clamp(1.5, 128.0)).ceil() as u64
            };
        }
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                std::hint::black_box(f());
            }
            let took = start.elapsed();
            total += took;
            best = best.min(took);
        }
        self.iters = iters_per_batch * BATCHES as u64;
        self.elapsed = total;
        // Per-batch best gives the record a noise floor.
        self.best_batch_ns = best.as_nanos() as f64 / iters_per_batch as f64;
    }

    fn mean_ns(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

/// The benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(id.into(), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput used to contextualize subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(format!("{}/{}", self.name, id.into()), self.throughput, f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(format!("{}/{}", self.name, id.id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: String, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        best_batch_ns: 0.0,
    };
    f(&mut bencher);
    let mean_ns = bencher.mean_ns();
    let min_ns = if bencher.best_batch_ns > 0.0 {
        bencher.best_batch_ns
    } else {
        mean_ns
    };
    let mut line = format!("{id:<48} {:>14}/iter", format_ns(mean_ns));
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Bytes(n) | Throughput::Elements(n) => n as f64 * 1e9 / mean_ns.max(1e-9),
        };
        let unit = match tp {
            Throughput::Bytes(_) => "B/s",
            Throughput::Elements(_) => "elem/s",
        };
        line.push_str(&format!("  {per_sec:>12.3e} {unit}"));
    }
    println!("{line}");
    RESULTS.lock().unwrap().push(Record {
        id,
        mean_ns,
        min_ns,
        iters: bencher.iters,
        throughput,
    });
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Writes the JSON summary if `CRITERION_JSON` is set. Called by the
/// `criterion_main!`-generated `main` after all groups have run.
pub fn write_summary() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let tp = match r.throughput {
            Some(Throughput::Bytes(n)) => format!(", \"throughput_bytes\": {n}"),
            Some(Throughput::Elements(n)) => format!(", \"throughput_elements\": {n}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"id\": {:?}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters\": {}{}}}{}\n",
            r.id,
            r.mean_ns,
            r.min_ns,
            r.iters,
            tp,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: failed to write {path}: {e}");
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| std::hint::black_box(1u64 + 1)));
        let results = RESULTS.lock().unwrap();
        let rec = results.iter().find(|r| r.id == "noop_add").unwrap();
        assert!(rec.iters > 0);
        assert!(rec.mean_ns >= 0.0);
    }

    #[test]
    fn group_prefixes_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).throughput(Throughput::Bytes(64));
        g.bench_function("inner", |b| b.iter(|| std::hint::black_box(2u64 * 2)));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| std::hint::black_box(n * n))
        });
        g.finish();
        let results = RESULTS.lock().unwrap();
        assert!(results.iter().any(|r| r.id == "grp/inner"));
        assert!(results.iter().any(|r| r.id == "grp/8"));
    }
}
