//! SSL-like authenticated secure channels.
//!
//! The CloudMonatt architecture "expects the customer, Cloud Controller,
//! Attestation Server and secure Cloud Servers to implement the SSL
//! protocol" (Section 3.4.1): mutual authentication with long-term
//! identity key pairs, then symmetric session keys (Kx, Ky, Kz in
//! Figure 3) protecting each hop.
//!
//! The handshake here is a signed Diffie-Hellman exchange:
//!
//! 1. Initiator → Responder: DH share `A`, signed by the initiator.
//! 2. Responder → Initiator: DH share `B`, signature over `A || B`.
//! 3. Both derive directional [`SealKey`]s from the shared secret bound to
//!    the transcript, and number records with sequence counters (replay
//!    protection).

use crate::wire::{Reader, Wire, WireError, Writer};
use monatt_crypto::dh::{EphemeralSecret, PublicShare};
use monatt_crypto::drbg::Drbg;
use monatt_crypto::error::CryptoError;
use monatt_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use monatt_crypto::SealKey;

/// Channel errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChannelError {
    /// A handshake signature did not verify — wrong peer or tampering.
    PeerAuthentication,
    /// A handshake share was malformed.
    BadShare,
    /// A record failed authentication (tampering).
    RecordAuthentication,
    /// A record carried a sequence number already accepted (or too old
    /// to tell): a benign retransmit duplicate or a replay attack.
    /// Either way the record is rejected, but the channel state is
    /// untouched — later records still open.
    DuplicateRecord,
    /// A record was malformed.
    Malformed,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::PeerAuthentication => write!(f, "peer authentication failed"),
            ChannelError::BadShare => write!(f, "malformed handshake share"),
            ChannelError::RecordAuthentication => write!(f, "record authentication failed"),
            ChannelError::DuplicateRecord => write!(f, "duplicate or replayed record rejected"),
            ChannelError::Malformed => write!(f, "malformed record"),
        }
    }
}

impl std::error::Error for ChannelError {}

impl From<CryptoError> for ChannelError {
    fn from(e: CryptoError) -> Self {
        match e {
            CryptoError::InvalidKey => ChannelError::BadShare,
            CryptoError::InvalidSignature => ChannelError::PeerAuthentication,
            _ => ChannelError::RecordAuthentication,
        }
    }
}

/// First handshake flight: the initiator's signed DH share.
#[derive(Clone, Debug)]
pub struct Hello {
    share: PublicShare,
    signature: Signature,
}

impl Wire for Hello {
    fn encode(&self, w: &mut Writer) {
        w.put_fixed(&self.share.to_bytes());
        w.put_fixed(&self.signature.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let share_bytes: [u8; 32] = r.get_fixed()?;
        let sig_bytes: [u8; 64] = r.get_fixed()?;
        Ok(Hello {
            share: PublicShare::from_bytes(&share_bytes)
                .map_err(|_| WireError::InvalidDiscriminant(0))?,
            signature: Signature::from_bytes(&sig_bytes),
        })
    }
}

/// Second handshake flight: the responder's signed DH share (signature
/// covers both shares, binding the transcript).
#[derive(Clone, Debug)]
pub struct HelloReply {
    share: PublicShare,
    signature: Signature,
}

impl Wire for HelloReply {
    fn encode(&self, w: &mut Writer) {
        w.put_fixed(&self.share.to_bytes());
        w.put_fixed(&self.signature.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let share_bytes: [u8; 32] = r.get_fixed()?;
        let sig_bytes: [u8; 64] = r.get_fixed()?;
        Ok(HelloReply {
            share: PublicShare::from_bytes(&share_bytes)
                .map_err(|_| WireError::InvalidDiscriminant(0))?,
            signature: Signature::from_bytes(&sig_bytes),
        })
    }
}

/// Initiator-side state between the two flights.
pub struct PendingHandshake {
    secret: EphemeralSecret,
    hello_share: PublicShare,
}

impl std::fmt::Debug for PendingHandshake {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The ephemeral secret redacts itself; keep the whole handshake
        // state down to the public share regardless.
        f.debug_struct("PendingHandshake")
            .field("hello_share", &self.hello_share)
            .finish_non_exhaustive()
    }
}

/// An established channel endpoint: directional keys + sequence numbers,
/// plus a cached label naming the remote endpoint so per-record paths
/// never re-format peer names.
///
/// Receiving uses a DTLS-style sliding anti-replay window rather than a
/// strict monotonic cursor: a late (reordered) record within
/// [`REPLAY_WINDOW`] of the newest accepted sequence is still accepted
/// exactly once, while any second copy — a retransmit duplicate or an
/// attacker replay — is rejected with [`ChannelError::DuplicateRecord`]
/// without desynchronizing the channel.
pub struct SecureChannel {
    send_key: SealKey,
    recv_key: SealKey,
    send_seq: u64,
    /// Highest sequence number accepted so far (meaningful only when
    /// `recv_count > 0`).
    recv_max: u64,
    /// Bitmap over the window: bit `i` set means sequence
    /// `recv_max - i` was accepted.
    recv_window: u64,
    /// Total records accepted.
    recv_count: u64,
    peer: Box<str>,
}

impl std::fmt::Debug for SecureChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Directional session keys stay out of the output; sequence
        // numbers and the peer label are enough for diagnostics.
        f.debug_struct("SecureChannel")
            .field("peer", &self.peer)
            .field("send_seq", &self.send_seq)
            .field("recv_max", &self.recv_max)
            .field("recv_count", &self.recv_count)
            .finish_non_exhaustive()
    }
}

/// Width of the receive anti-replay window, in records. Records older
/// than `recv_max - REPLAY_WINDOW + 1` are rejected as replays even if
/// never seen — the window is the bound on how much reordering a
/// retransmitting sender can produce.
pub const REPLAY_WINDOW: u64 = 64;

/// Label used until [`SecureChannel::set_peer`] names the remote endpoint.
const DEFAULT_PEER: &str = "peer";

#[cold]
fn transcript_context(a: &PublicShare, b: &PublicShare) -> Vec<u8> {
    let mut ctx = Vec::with_capacity(64 + 16);
    ctx.extend_from_slice(b"monatt-channel-v1");
    ctx.extend_from_slice(&a.to_bytes());
    ctx.extend_from_slice(&b.to_bytes());
    ctx
}

/// Starts a handshake: produces the first flight and pending state.
pub fn initiate(rng: &mut Drbg, identity: &SigningKey) -> (Hello, PendingHandshake) {
    let secret = EphemeralSecret::generate(rng);
    let share = secret.public_share();
    let signature = identity.sign(&share.to_bytes());
    (
        Hello { share, signature },
        PendingHandshake {
            secret,
            hello_share: share,
        },
    )
}

/// Responder side: verifies the first flight against the initiator's
/// known identity key and produces the reply plus an established channel.
///
/// # Errors
///
/// [`ChannelError::PeerAuthentication`] on a bad signature,
/// [`ChannelError::BadShare`] on an invalid group element.
#[cold]
pub fn respond(
    rng: &mut Drbg,
    identity: &SigningKey,
    initiator_key: &VerifyingKey,
    hello: &Hello,
) -> Result<(HelloReply, SecureChannel), ChannelError> {
    initiator_key
        .verify(&hello.share.to_bytes(), &hello.signature)
        .map_err(|_| ChannelError::PeerAuthentication)?;
    let secret = EphemeralSecret::generate(rng);
    let my_share = secret.public_share();
    let ctx = transcript_context(&hello.share, &my_share);
    let session = secret.agree(&hello.share, &ctx)?;
    let mut sign_payload = hello.share.to_bytes().to_vec();
    sign_payload.extend_from_slice(&my_share.to_bytes());
    let signature = identity.sign(&sign_payload);
    // Responder sends with the "r2i" key and receives with "i2r".
    Ok((
        HelloReply {
            share: my_share,
            signature,
        },
        SecureChannel {
            send_key: SealKey::derive(&session, b"r2i"),
            recv_key: SealKey::derive(&session, b"i2r"),
            send_seq: 0,
            recv_max: 0,
            recv_window: 0,
            recv_count: 0,
            peer: DEFAULT_PEER.into(),
        },
    ))
}

/// Initiator side: verifies the reply against the responder's known
/// identity key and establishes the channel.
///
/// # Errors
///
/// [`ChannelError::PeerAuthentication`] on a bad signature,
/// [`ChannelError::BadShare`] on an invalid group element.
#[cold]
pub fn complete(
    pending: PendingHandshake,
    responder_key: &VerifyingKey,
    reply: &HelloReply,
) -> Result<SecureChannel, ChannelError> {
    let mut signed = pending.hello_share.to_bytes().to_vec();
    signed.extend_from_slice(&reply.share.to_bytes());
    responder_key
        .verify(&signed, &reply.signature)
        .map_err(|_| ChannelError::PeerAuthentication)?;
    let ctx = transcript_context(&pending.hello_share, &reply.share);
    let session = pending.secret.agree(&reply.share, &ctx)?;
    Ok(SecureChannel {
        send_key: SealKey::derive(&session, b"i2r"),
        recv_key: SealKey::derive(&session, b"r2i"),
        send_seq: 0,
        recv_max: 0,
        recv_window: 0,
        recv_count: 0,
        peer: DEFAULT_PEER.into(),
    })
}

impl SecureChannel {
    /// Seals a record. The sequence number is carried in an 8-byte header
    /// (authenticated through the nonce, DTLS-style), so a tampered or
    /// dropped record does not desynchronize the channel.
    ///
    /// Allocating convenience; the warm path uses [`Self::seal_into`].
    #[cold]
    pub fn seal(&mut self, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut record = Vec::new();
        self.seal_into(aad, plaintext, &mut record);
        record
    }

    /// [`Self::seal`] into a caller-owned record buffer (contents
    /// replaced, capacity reused) — the steady-state form for the
    /// session hot path.
    pub fn seal_into(&mut self, aad: &[u8], plaintext: &[u8], record: &mut Vec<u8>) {
        let seq = self.send_seq;
        self.send_seq += 1;
        let nonce = seq_nonce(seq);
        record.clear();
        record.extend_from_slice(&seq.to_be_bytes());
        self.send_key.seal_into(&nonce, aad, plaintext, record);
    }

    /// Opens a record, enforcing at-most-once delivery through the
    /// sliding anti-replay window: gaps (dropped records) are tolerated,
    /// a reordered record within [`REPLAY_WINDOW`] of the newest accepted
    /// sequence is accepted exactly once, and any already-accepted or
    /// out-of-window sequence is rejected without touching channel state.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Malformed`] for records too short to carry a
    /// header, [`ChannelError::DuplicateRecord`] for a duplicate or
    /// replay, [`ChannelError::RecordAuthentication`] on tampering.
    ///
    /// Allocating convenience; the warm path uses [`Self::open_into`].
    #[cold]
    pub fn open(&mut self, aad: &[u8], record: &[u8]) -> Result<Vec<u8>, ChannelError> {
        let mut pt = Vec::new();
        self.open_into(aad, record, &mut pt)?;
        Ok(pt)
    }

    /// [`Self::open`] into a caller-owned plaintext buffer (contents
    /// replaced, capacity reused; unspecified on error) — the
    /// steady-state form for the session hot path.
    ///
    /// # Errors
    ///
    /// As [`Self::open`].
    pub fn open_into(
        &mut self,
        aad: &[u8],
        record: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), ChannelError> {
        if record.len() < 8 {
            return Err(ChannelError::Malformed);
        }
        let (seq_prefix, body) = record.split_at(8);
        let mut seq_bytes = [0u8; 8];
        seq_bytes.copy_from_slice(seq_prefix);
        let seq = u64::from_be_bytes(seq_bytes);
        // Replay check first — it is cheap and needs no key material.
        if self.recv_count > 0 && seq <= self.recv_max {
            let age = self.recv_max - seq;
            if age >= REPLAY_WINDOW {
                // Too old to track: reject conservatively.
                return Err(ChannelError::DuplicateRecord);
            }
            if self.recv_window & (1u64 << age) != 0 {
                return Err(ChannelError::DuplicateRecord);
            }
        }
        let nonce = seq_nonce(seq);
        out.clear();
        self.recv_key
            .open_into(&nonce, aad, body, out)
            .map_err(|_| ChannelError::RecordAuthentication)?;
        // Only authenticated records advance the window.
        if self.recv_count == 0 || seq > self.recv_max {
            let shift = if self.recv_count == 0 {
                // First record: the window starts at `seq` alone.
                REPLAY_WINDOW
            } else {
                seq - self.recv_max
            };
            self.recv_window = if shift >= REPLAY_WINDOW {
                0
            } else {
                self.recv_window << shift
            };
            self.recv_window |= 1;
            self.recv_max = seq;
        } else {
            self.recv_window |= 1u64 << (self.recv_max - seq);
        }
        self.recv_count += 1;
        Ok(())
    }

    /// Names the remote endpoint. The label is cached on the channel so
    /// hot paths (routing, error reporting) can borrow it instead of
    /// formatting an identifier per record.
    pub fn set_peer(&mut self, name: &str) {
        self.peer = name.into();
    }

    /// The cached remote-endpoint label (`"peer"` until
    /// [`Self::set_peer`] is called).
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Records sent so far.
    pub fn records_sent(&self) -> u64 {
        self.send_seq
    }

    /// Records accepted so far.
    pub fn records_received(&self) -> u64 {
        self.recv_count
    }
}

fn seq_nonce(seq: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    let (_, seq_part) = nonce.split_at_mut(4);
    seq_part.copy_from_slice(&seq.to_be_bytes());
    nonce
}

/// Convenience: runs the whole handshake in-process (no network) and
/// returns the two endpoints. Useful for tests and for co-located
/// components.
///
/// # Errors
///
/// Propagates any handshake failure.
pub fn handshake_pair(
    rng: &mut Drbg,
    initiator_identity: &SigningKey,
    responder_identity: &SigningKey,
) -> Result<(SecureChannel, SecureChannel), ChannelError> {
    let (hello, pending) = initiate(rng, initiator_identity);
    let (reply, responder_chan) = respond(
        rng,
        responder_identity,
        &initiator_identity.verifying_key(),
        &hello,
    )?;
    let initiator_chan = complete(pending, &responder_identity.verifying_key(), &reply)?;
    Ok((initiator_chan, responder_chan))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> (Drbg, SigningKey, SigningKey) {
        let mut rng = Drbg::from_seed(55);
        let a = SigningKey::generate(&mut rng);
        let b = SigningKey::generate(&mut rng);
        (rng, a, b)
    }

    #[test]
    fn handshake_and_bidirectional_records() {
        let (mut rng, alice, bob) = keys();
        let (mut a, mut b) = handshake_pair(&mut rng, &alice, &bob).unwrap();
        let r1 = a.seal(b"hdr", b"request");
        assert_eq!(b.open(b"hdr", &r1).unwrap(), b"request");
        let r2 = b.seal(b"hdr", b"response");
        assert_eq!(a.open(b"hdr", &r2).unwrap(), b"response");
        assert_eq!(a.records_sent(), 1);
        assert_eq!(a.records_received(), 1);
    }

    #[test]
    fn wrong_initiator_identity_rejected() {
        let (mut rng, alice, bob) = keys();
        let mallory = SigningKey::generate(&mut rng);
        let (hello, _) = initiate(&mut rng, &mallory);
        // Bob expects Alice.
        let result = respond(&mut rng, &bob, &alice.verifying_key(), &hello);
        assert!(matches!(result, Err(ChannelError::PeerAuthentication)));
    }

    #[test]
    fn wrong_responder_identity_rejected() {
        let (mut rng, alice, bob) = keys();
        let mallory = SigningKey::generate(&mut rng);
        let (hello, pending) = initiate(&mut rng, &alice);
        let (reply, _) = respond(&mut rng, &mallory, &alice.verifying_key(), &hello).unwrap();
        // Alice expects Bob but Mallory answered.
        assert!(matches!(
            complete(pending, &bob.verifying_key(), &reply),
            Err(ChannelError::PeerAuthentication)
        ));
    }

    #[test]
    fn tampered_hello_rejected() {
        let (mut rng, alice, bob) = keys();
        let (hello, _) = initiate(&mut rng, &alice);
        let mut bytes = hello.to_wire();
        bytes[40] ^= 1; // flip a signature bit
        let tampered = Hello::from_wire(&bytes).unwrap();
        assert!(respond(&mut rng, &bob, &alice.verifying_key(), &tampered).is_err());
    }

    #[test]
    fn replayed_record_rejected() {
        let (mut rng, alice, bob) = keys();
        let (mut a, mut b) = handshake_pair(&mut rng, &alice, &bob).unwrap();
        let r1 = a.seal(b"", b"one");
        assert!(b.open(b"", &r1).is_ok());
        // Replay of r1: already accepted, rejected without desync.
        assert_eq!(b.open(b"", &r1), Err(ChannelError::DuplicateRecord));
        // The channel still accepts the next fresh record.
        let r2 = a.seal(b"", b"two");
        assert_eq!(b.open(b"", &r2).unwrap(), b"two");
    }

    #[test]
    fn reordered_record_accepted_once_gaps_tolerated() {
        let (mut rng, alice, bob) = keys();
        let (mut a, mut b) = handshake_pair(&mut rng, &alice, &bob).unwrap();
        let r1 = a.seal(b"", b"one");
        let r2 = a.seal(b"", b"two");
        // Forward jump (r1 delayed in transit) is tolerated...
        assert_eq!(b.open(b"", &r2).unwrap(), b"two");
        // ...the late r1 still arrives within the window and opens once...
        assert_eq!(b.open(b"", &r1).unwrap(), b"one");
        // ...but a second copy of either is a duplicate.
        assert_eq!(b.open(b"", &r1), Err(ChannelError::DuplicateRecord));
        assert_eq!(b.open(b"", &r2), Err(ChannelError::DuplicateRecord));
    }

    #[test]
    fn records_behind_the_window_rejected() {
        let (mut rng, alice, bob) = keys();
        let (mut a, mut b) = handshake_pair(&mut rng, &alice, &bob).unwrap();
        let r0 = a.seal(b"", b"zero");
        // Push the window far past r0 without delivering it.
        for _ in 0..REPLAY_WINDOW {
            let r = a.seal(b"", b"fill");
            assert!(b.open(b"", &r).is_ok());
        }
        // r0 (seq 0) is now out of the window: rejected although unseen.
        assert_eq!(b.open(b"", &r0), Err(ChannelError::DuplicateRecord));
    }

    #[test]
    fn duplicate_rejection_does_not_desync() {
        let (mut rng, alice, bob) = keys();
        let (mut a, mut b) = handshake_pair(&mut rng, &alice, &bob).unwrap();
        for i in 0..10u8 {
            let r = a.seal(b"", &[i]);
            assert_eq!(b.open(b"", &r).unwrap(), vec![i]);
            assert_eq!(b.open(b"", &r), Err(ChannelError::DuplicateRecord));
        }
        assert_eq!(b.records_received(), 10);
    }

    #[test]
    fn channel_recovers_after_tampered_record() {
        let (mut rng, alice, bob) = keys();
        let (mut a, mut b) = handshake_pair(&mut rng, &alice, &bob).unwrap();
        let mut r1 = a.seal(b"", b"one");
        r1[10] ^= 1;
        assert!(b.open(b"", &r1).is_err());
        // The next clean record still opens.
        let r2 = a.seal(b"", b"two");
        assert_eq!(b.open(b"", &r2).unwrap(), b"two");
    }

    #[test]
    fn short_record_is_malformed() {
        let (mut rng, alice, bob) = keys();
        let (_a, mut b) = handshake_pair(&mut rng, &alice, &bob).unwrap();
        assert_eq!(b.open(b"", &[1, 2, 3]), Err(ChannelError::Malformed));
    }

    #[test]
    fn tampered_record_rejected() {
        let (mut rng, alice, bob) = keys();
        let (mut a, mut b) = handshake_pair(&mut rng, &alice, &bob).unwrap();
        let mut r = a.seal(b"", b"payload");
        r[0] ^= 1;
        assert!(b.open(b"", &r).is_err());
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let (mut rng, alice, bob) = keys();
        let (mut a, _b) = handshake_pair(&mut rng, &alice, &bob).unwrap();
        let record = a.seal(b"", b"SECRET-MEASUREMENT");
        let needle = b"SECRET-MEASUREMENT";
        let found = record.windows(needle.len()).any(|w| w == needle.as_slice());
        assert!(!found, "plaintext must not appear in the record");
    }

    #[test]
    fn peer_labels_default_and_update() {
        let (mut rng, alice, bob) = keys();
        let (mut a, b) = handshake_pair(&mut rng, &alice, &bob).unwrap();
        assert_eq!(a.peer(), "peer");
        assert_eq!(b.peer(), "peer");
        a.set_peer("bob");
        assert_eq!(a.peer(), "bob");
    }

    #[test]
    fn handshake_messages_roundtrip_on_wire() {
        let (mut rng, alice, bob) = keys();
        let (hello, pending) = initiate(&mut rng, &alice);
        let hello2 = Hello::from_wire(&hello.to_wire()).unwrap();
        let (reply, mut b) = respond(&mut rng, &bob, &alice.verifying_key(), &hello2).unwrap();
        let reply2 = HelloReply::from_wire(&reply.to_wire()).unwrap();
        let mut a = complete(pending, &bob.verifying_key(), &reply2).unwrap();
        let r = a.seal(b"", b"over the wire");
        assert_eq!(b.open(b"", &r).unwrap(), b"over the wire");
    }
}
