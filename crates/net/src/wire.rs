//! Canonical wire encoding for protocol messages.
//!
//! Attestation quotes and signatures are computed over encoded bytes, so
//! the encoding must be deterministic and unambiguous: every field is
//! fixed-width or length-prefixed, integers are big-endian.

use std::error::Error;
use std::fmt;

/// Decoding errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Fewer bytes remained than the field required.
    UnexpectedEnd,
    /// Bytes remained after the value was fully decoded.
    TrailingBytes,
    /// A length prefix exceeded the sanity limit.
    LengthOverflow,
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// An enum discriminant was out of range.
    InvalidDiscriminant(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of input"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
            WireError::LengthOverflow => write!(f, "length prefix exceeds limit"),
            WireError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::InvalidDiscriminant(d) => write!(f, "invalid discriminant {d}"),
        }
    }
}

impl Error for WireError {}

/// Sanity limit on variable-length fields (16 MiB).
const MAX_LEN: usize = 16 * 1024 * 1024;

/// An append-only encoder.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer that encodes into `buf`'s storage: the contents
    /// are cleared, the capacity is kept. Pair with
    /// [`Writer::into_bytes`] to re-encode into a long-lived buffer
    /// without reallocating.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Writer { buf }
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends fixed-width bytes with no length prefix (use for hashes,
    /// keys, nonces whose length is fixed by the protocol).
    pub fn put_fixed(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends length-prefixed bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Two reusable encode buffers for call sites that need a pair of wire
/// encodings alive at the same time — typically the fields of a quote
/// digest (measurement spec + measurement, or property + status). After
/// the first use the buffers hold their steady-state capacity, so warm
/// paths encode without touching the heap.
#[derive(Clone, Debug, Default)]
pub struct EncodeScratch {
    a: Vec<u8>,
    b: Vec<u8>,
}

impl EncodeScratch {
    /// Creates an empty scratch pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `a` and `b` into the two retained buffers and returns
    /// their encodings as slices.
    pub fn encode_pair<'s, A: Wire, B: Wire>(&'s mut self, a: &A, b: &B) -> (&'s [u8], &'s [u8]) {
        a.encode_into(&mut self.a);
        b.encode_into(&mut self.b);
        (&self.a, &self.b)
    }
}

/// A cursor over encoded bytes.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::UnexpectedEnd)?;
        let out = self
            .data
            .get(self.pos..end)
            .ok_or(WireError::UnexpectedEnd)?;
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_be_bytes(arr))
    }

    /// Reads a bool (0 or 1; other values are an invalid discriminant).
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            d => Err(WireError::InvalidDiscriminant(d)),
        }
    }

    /// Reads `N` fixed bytes.
    pub fn get_fixed<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let b = self.take(N)?;
        let mut arr = [0u8; N];
        arr.copy_from_slice(b);
        Ok(arr)
    }

    /// Reads length-prefixed bytes.
    ///
    /// Allocating convenience: returns an owned copy. Warm-path decoders
    /// borrow the payload in place via [`Self::take`] instead.
    #[cold]
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.get_u32()? as usize;
        if len > MAX_LEN {
            return Err(WireError::LengthOverflow);
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.get_bytes()?).map_err(|_| WireError::InvalidUtf8)
    }

    /// Asserts that all input was consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// A type with a canonical wire encoding.
pub trait Wire: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decodes a value from `r`.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes to a standalone byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Encodes into `buf`, replacing its contents but reusing its
    /// capacity — the steady-state form of [`Wire::to_wire`] for hot
    /// paths that own a long-lived encode buffer.
    fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(buf));
        self.encode(&mut w);
        *buf = w.into_bytes();
    }

    /// Decodes from a standalone byte vector, requiring full consumption.
    ///
    /// # Errors
    ///
    /// Any [`WireError`], including [`WireError::TrailingBytes`] if input
    /// remains after decoding.
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        id: u64,
        name: String,
        payload: Vec<u8>,
        flag: bool,
        digest: [u8; 32],
    }

    impl Wire for Demo {
        fn encode(&self, w: &mut Writer) {
            w.put_u64(self.id);
            w.put_str(&self.name);
            w.put_bytes(&self.payload);
            w.put_bool(self.flag);
            w.put_fixed(&self.digest);
        }

        fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
            Ok(Demo {
                id: r.get_u64()?,
                name: r.get_str()?,
                payload: r.get_bytes()?,
                flag: r.get_bool()?,
                digest: r.get_fixed()?,
            })
        }
    }

    fn demo() -> Demo {
        Demo {
            id: 42,
            name: "attest".into(),
            payload: vec![1, 2, 3],
            flag: true,
            digest: [7u8; 32],
        }
    }

    #[test]
    fn roundtrip() {
        let d = demo();
        assert_eq!(Demo::from_wire(&d.to_wire()).unwrap(), d);
    }

    #[test]
    fn deterministic() {
        assert_eq!(demo().to_wire(), demo().to_wire());
    }

    #[test]
    fn truncation_detected() {
        let bytes = demo().to_wire();
        for cut in [0, 1, 8, bytes.len() - 1] {
            assert!(
                Demo::from_wire(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = demo().to_wire();
        bytes.push(0);
        assert_eq!(Demo::from_wire(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn bad_bool_rejected() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.get_bool(), Err(WireError::InvalidDiscriminant(2)));
    }

    #[test]
    fn oversize_length_rejected() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes(), Err(WireError::LengthOverflow));
    }

    #[test]
    fn length_prefix_edges_near_max_len() {
        // len == MAX_LEN is within the sanity limit: with a short buffer
        // the reader reports truncation, not overflow.
        let mut w = Writer::new();
        w.put_u32(MAX_LEN as u32);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes(), Err(WireError::UnexpectedEnd));
        // len == MAX_LEN + 1 trips the limit before any allocation.
        let mut w = Writer::new();
        w.put_u32(MAX_LEN as u32 + 1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes(), Err(WireError::LengthOverflow));
        // And a full MAX_LEN-sized field actually round-trips.
        let mut w = Writer::new();
        w.put_bytes(&vec![0xA5u8; MAX_LEN]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap().len(), MAX_LEN);
        r.finish().unwrap();
    }

    #[test]
    fn utf8_validation() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str(), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn display_messages_nonempty() {
        for e in [
            WireError::UnexpectedEnd,
            WireError::TrailingBytes,
            WireError::LengthOverflow,
            WireError::InvalidUtf8,
            WireError::InvalidDiscriminant(9),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
