//! The simulated network joining the four CloudMonatt entities, with
//! Dolev-Yao attacker hooks: the adversary "has full control of the
//! network between different servers … able to eavesdrop as well as
//! falsify the attestation messages" (Section 3.3).
//!
//! Transmission is synchronous (the architecture's flows are
//! request/response RPCs); each transmit reports the latency it would have
//! taken, which the core crate's latency model accumulates into the
//! end-to-end timings of Figures 9-11.

use std::collections::VecDeque;

/// What the attacker does to a message in flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Intercept {
    /// Deliver unmodified.
    Pass,
    /// Deliver a substituted payload.
    Modify(Vec<u8>),
    /// Drop the message (receiver sees nothing).
    Drop,
}

/// A Dolev-Yao network adversary. Implementations see every message and
/// decide its fate.
pub trait NetworkAttacker {
    /// Called for each message in flight.
    fn intercept(&mut self, from: &str, to: &str, payload: &[u8]) -> Intercept;
}

/// A record of one transmission, kept in the network log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransmitRecord {
    /// Sender endpoint name.
    pub from: String,
    /// Receiver endpoint name.
    pub to: String,
    /// Bytes as submitted by the sender.
    pub sent: Vec<u8>,
    /// Bytes as delivered (`None` if dropped).
    pub delivered: Option<Vec<u8>>,
    /// Simulated latency of the transmission, microseconds.
    pub latency_us: u64,
}

/// A latency model: fixed per-message cost plus a per-kilobyte cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Base per-message latency (propagation + protocol overhead).
    pub base_us: u64,
    /// Additional latency per kilobyte of payload.
    pub per_kb_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // ~0.3 ms base on a LAN plus 1 Gbps-ish serialization cost
        // (8 us/KB).
        LatencyModel {
            base_us: 300,
            per_kb_us: 8,
        }
    }
}

impl LatencyModel {
    /// Latency for a payload of `len` bytes.
    pub fn latency_for(&self, len: usize) -> u64 {
        self.base_us + (len as u64).div_ceil(1024) * self.per_kb_us
    }
}

/// Delivery outcome of a transmit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Delivered bytes, or `None` if the attacker dropped the message.
    pub payload: Option<Vec<u8>>,
    /// Simulated transmission latency.
    pub latency_us: u64,
}

/// The simulated network.
pub struct SimNetwork {
    latency: LatencyModel,
    attacker: Option<Box<dyn NetworkAttacker>>,
    log: Vec<TransmitRecord>,
}

impl std::fmt::Debug for SimNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNetwork")
            .field("latency", &self.latency)
            .field("messages", &self.log.len())
            .field("attacker", &self.attacker.is_some())
            .finish()
    }
}

impl Default for SimNetwork {
    fn default() -> Self {
        Self::new(LatencyModel::default())
    }
}

impl SimNetwork {
    /// Creates a benign network with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        SimNetwork {
            latency,
            attacker: None,
            log: Vec::new(),
        }
    }

    /// Installs (or replaces) the network adversary.
    pub fn set_attacker(&mut self, attacker: Box<dyn NetworkAttacker>) {
        self.attacker = Some(attacker);
    }

    /// Removes the adversary.
    pub fn clear_attacker(&mut self) {
        self.attacker = None;
    }

    /// Transmits `payload` from `from` to `to`, applying the adversary.
    pub fn transmit(&mut self, from: &str, to: &str, payload: &[u8]) -> Delivery {
        let action = match &mut self.attacker {
            Some(att) => att.intercept(from, to, payload),
            None => Intercept::Pass,
        };
        let delivered = match action {
            Intercept::Pass => Some(payload.to_vec()),
            Intercept::Modify(m) => Some(m),
            Intercept::Drop => None,
        };
        let latency_us = self
            .latency
            .latency_for(delivered.as_ref().map_or(payload.len(), Vec::len));
        self.log.push(TransmitRecord {
            from: from.to_owned(),
            to: to.to_owned(),
            sent: payload.to_vec(),
            delivered: delivered.clone(),
            latency_us,
        });
        Delivery {
            payload: delivered,
            latency_us,
        }
    }

    /// The full transmission log.
    pub fn log(&self) -> &[TransmitRecord] {
        &self.log
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }
}

/// A passive eavesdropper: records copies of everything, passes all
/// messages through. Used to check confidentiality properties.
#[derive(Debug, Default)]
pub struct Eavesdropper {
    /// Captured payloads in transmission order.
    pub captured: Vec<Vec<u8>>,
}

impl NetworkAttacker for Eavesdropper {
    fn intercept(&mut self, _from: &str, _to: &str, payload: &[u8]) -> Intercept {
        self.captured.push(payload.to_vec());
        Intercept::Pass
    }
}

/// An active tamperer: flips a byte in every message between the
/// configured endpoints.
#[derive(Debug)]
pub struct Tamperer {
    /// Only tamper with messages whose destination contains this string
    /// (empty = all).
    pub target_to: String,
    /// How many messages were modified.
    pub modified: u64,
}

impl Tamperer {
    /// Tampers with every message to destinations matching `target_to`.
    pub fn new(target_to: &str) -> Self {
        Tamperer {
            target_to: target_to.to_owned(),
            modified: 0,
        }
    }
}

impl NetworkAttacker for Tamperer {
    fn intercept(&mut self, _from: &str, to: &str, payload: &[u8]) -> Intercept {
        if !self.target_to.is_empty() && !to.contains(&self.target_to) {
            return Intercept::Pass;
        }
        if payload.is_empty() {
            return Intercept::Pass;
        }
        let mut m = payload.to_vec();
        let mid = m.len() / 2;
        m[mid] ^= 0x01;
        self.modified += 1;
        Intercept::Modify(m)
    }
}

/// A replay attacker: records messages to a target, and from the `replay_after`-th
/// message onward replaces each new message with the first recorded one.
#[derive(Debug)]
pub struct Replayer {
    target_to: String,
    recorded: VecDeque<Vec<u8>>,
    seen: u64,
    replay_after: u64,
    /// How many replays were injected.
    pub replayed: u64,
}

impl Replayer {
    /// Replays the first captured message (to destinations matching
    /// `target_to`) in place of every message after the first
    /// `replay_after`.
    pub fn new(target_to: &str, replay_after: u64) -> Self {
        Replayer {
            target_to: target_to.to_owned(),
            recorded: VecDeque::new(),
            seen: 0,
            replay_after,
            replayed: 0,
        }
    }
}

impl NetworkAttacker for Replayer {
    fn intercept(&mut self, _from: &str, to: &str, payload: &[u8]) -> Intercept {
        if !self.target_to.is_empty() && !to.contains(&self.target_to) {
            return Intercept::Pass;
        }
        self.seen += 1;
        self.recorded.push_back(payload.to_vec());
        if self.seen > self.replay_after {
            if let Some(old) = self.recorded.front() {
                self.replayed += 1;
                return Intercept::Modify(old.clone());
            }
        }
        Intercept::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_delivery() {
        let mut net = SimNetwork::default();
        let d = net.transmit("customer", "controller", b"hello");
        assert_eq!(d.payload.as_deref(), Some(b"hello".as_slice()));
        assert!(d.latency_us >= 300);
        assert_eq!(net.log().len(), 1);
        assert_eq!(net.log()[0].from, "customer");
    }

    #[test]
    fn latency_scales_with_size() {
        let model = LatencyModel {
            base_us: 100,
            per_kb_us: 10,
        };
        assert_eq!(model.latency_for(0), 100);
        assert_eq!(model.latency_for(1), 110);
        assert_eq!(model.latency_for(1024), 110);
        assert_eq!(model.latency_for(1025), 120);
        assert_eq!(model.latency_for(10 * 1024), 200);
    }

    #[test]
    fn eavesdropper_sees_but_passes() {
        let mut net = SimNetwork::default();
        net.set_attacker(Box::new(Eavesdropper::default()));
        let d = net.transmit("a", "b", b"payload");
        assert_eq!(d.payload.as_deref(), Some(b"payload".as_slice()));
    }

    #[test]
    fn tamperer_modifies_targeted_messages() {
        let mut net = SimNetwork::default();
        net.set_attacker(Box::new(Tamperer::new("server")));
        let d = net.transmit("attestation", "cloud-server-1", b"request");
        assert_ne!(d.payload.as_deref(), Some(b"request".as_slice()));
        let d2 = net.transmit("customer", "controller", b"request");
        assert_eq!(d2.payload.as_deref(), Some(b"request".as_slice()));
    }

    #[test]
    fn replayer_replays_first_message() {
        let mut net = SimNetwork::default();
        net.set_attacker(Box::new(Replayer::new("", 1)));
        let d1 = net.transmit("a", "b", b"first");
        assert_eq!(d1.payload.as_deref(), Some(b"first".as_slice()));
        let d2 = net.transmit("a", "b", b"second");
        assert_eq!(d2.payload.as_deref(), Some(b"first".as_slice()));
    }

    #[test]
    fn drop_is_logged() {
        struct Dropper;
        impl NetworkAttacker for Dropper {
            fn intercept(&mut self, _: &str, _: &str, _: &[u8]) -> Intercept {
                Intercept::Drop
            }
        }
        let mut net = SimNetwork::default();
        net.set_attacker(Box::new(Dropper));
        let d = net.transmit("a", "b", b"gone");
        assert_eq!(d.payload, None);
        assert_eq!(net.log()[0].delivered, None);
    }

    #[test]
    fn clear_attacker_restores_benign() {
        let mut net = SimNetwork::default();
        net.set_attacker(Box::new(Tamperer::new("")));
        net.transmit("a", "b", b"x");
        net.clear_attacker();
        let d = net.transmit("a", "b", b"y");
        assert_eq!(d.payload.as_deref(), Some(b"y".as_slice()));
    }
}
