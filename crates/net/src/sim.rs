//! The simulated network joining the four CloudMonatt entities, with
//! Dolev-Yao attacker hooks: the adversary "has full control of the
//! network between different servers … able to eavesdrop as well as
//! falsify the attestation messages" (Section 3.3).
//!
//! Besides the adversary, the network models *benign* faults — the
//! drops, duplicates, bit corruption and queueing delay of a real lossy
//! LAN — through a seeded probabilistic [`FaultModel`]. Faults compose
//! with the attacker: the adversary intercepts first (it controls the
//! network), then the fault model degrades whatever the adversary let
//! through, so attacks and packet loss coexist in one simulation.
//!
//! Transmission is synchronous (the architecture's flows are
//! request/response RPCs); each transmit reports the latency it would have
//! taken, which the core crate's latency model accumulates into the
//! end-to-end timings of Figures 9-11. Serialization cost is always
//! charged on the bytes the *sender* submitted — an adversary inflating
//! the payload (or a duplicate fault) does not distort the sender-side
//! timing model.

use monatt_crypto::drbg::Drbg;
use std::collections::BTreeSet;

/// What the attacker does to a message in flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Intercept {
    /// Deliver unmodified.
    Pass,
    /// Deliver a substituted payload.
    Modify(Vec<u8>),
    /// Drop the message (receiver sees nothing).
    Drop,
}

/// A Dolev-Yao network adversary. Implementations see every message and
/// decide its fate.
pub trait NetworkAttacker {
    /// Called for each message in flight.
    fn intercept(&mut self, from: &str, to: &str, payload: &[u8]) -> Intercept;
}

/// A record of one transmission, kept in the network log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransmitRecord {
    /// Sender endpoint name.
    pub from: String,
    /// Receiver endpoint name.
    pub to: String,
    /// Bytes as submitted by the sender.
    pub sent: Vec<u8>,
    /// Bytes as delivered (`None` if dropped).
    pub delivered: Option<Vec<u8>>,
    /// Simulated latency of the transmission, microseconds.
    pub latency_us: u64,
}

/// A latency model: fixed per-message cost plus a per-kilobyte cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Base per-message latency (propagation + protocol overhead).
    pub base_us: u64,
    /// Additional latency per kilobyte of payload.
    pub per_kb_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // ~0.3 ms base on a LAN plus 1 Gbps-ish serialization cost
        // (8 us/KB).
        LatencyModel {
            base_us: 300,
            per_kb_us: 8,
        }
    }
}

impl LatencyModel {
    /// Latency for a payload of `len` bytes.
    pub fn latency_for(&self, len: usize) -> u64 {
        self.base_us + (len as u64).div_ceil(1024) * self.per_kb_us
    }
}

/// Delivery outcome of a transmit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Delivered bytes, or `None` if the attacker or a fault dropped the
    /// message.
    pub payload: Option<Vec<u8>>,
    /// Simulated transmission latency (including any fault-injected
    /// extra delay).
    pub latency_us: u64,
    /// The network delivered a second, identical copy of the payload
    /// (benign duplication — e.g. a spurious link-layer retransmit).
    pub duplicated: bool,
}

/// The outcome of one transmission, resolved against an absolute
/// virtual-time axis (see [`SimNetwork::send_at`]).
#[derive(Clone, Debug)]
pub struct ScheduledDelivery {
    /// Delivered bytes, or `None` if the attacker or a fault dropped
    /// the message.
    pub payload: Option<Vec<u8>>,
    /// Absolute virtual time at which the record reaches the receiver.
    /// Meaningful only when `payload` is `Some`.
    pub deliver_at_us: u64,
    /// Simulated transmission latency (including fault-injected delay).
    pub latency_us: u64,
    /// The network delivered a second, identical copy of the payload.
    pub duplicated: bool,
}

/// Outcome of a buffer-reusing transmit ([`SimNetwork::transmit_into`],
/// [`SimNetwork::send_at_into`]): the delivered bytes live in the
/// caller's buffer, so the outcome itself is `Copy` and allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransmitOutcome {
    /// Whether the receiver sees the message at all. When `false` the
    /// caller's output buffer is left empty.
    pub delivered: bool,
    /// Absolute virtual time at which the record reaches the receiver
    /// (`now_us + latency_us`; for [`SimNetwork::transmit_into`] the
    /// caller's `now_us` is taken as 0).
    pub deliver_at_us: u64,
    /// Simulated transmission latency (including fault-injected delay).
    pub latency_us: u64,
    /// The network delivered a second, identical copy of the payload.
    pub duplicated: bool,
}

/// A seeded, probabilistic model of *benign* network faults: each
/// message is independently dropped, duplicated, bit-corrupted and/or
/// delayed. All draws come from a deterministic [`Drbg`], so a seeded
/// run replays exactly.
///
/// Probabilities are independent; drop dominates (a dropped message
/// cannot also be duplicated or corrupted). Every message consumes the
/// same number of RNG draws regardless of outcome, so changing one
/// probability does not reshuffle the fate of later messages.
#[derive(Debug)]
pub struct FaultModel {
    drop_prob: f64,
    duplicate_prob: f64,
    corrupt_prob: f64,
    delay_prob: f64,
    delay_us: u64,
    rng: Drbg,
    stats: FaultStats,
}

/// Counters of the faults a [`FaultModel`] actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages with a flipped byte.
    pub corrupted: u64,
    /// Messages given extra queueing delay.
    pub delayed: u64,
}

impl FaultModel {
    /// A fault-free model (all probabilities zero) with its own seeded
    /// RNG stream.
    pub fn new(seed: u64) -> Self {
        FaultModel {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            delay_us: 0,
            rng: Drbg::from_seed(seed ^ 0xFA_17_5E_ED),
            stats: FaultStats::default(),
        }
    }

    /// Sets the per-message drop probability.
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-message duplication probability.
    pub fn duplicate_prob(mut self, p: f64) -> Self {
        self.duplicate_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-message corruption probability (one byte flipped).
    pub fn corrupt_prob(mut self, p: f64) -> Self {
        self.corrupt_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-message probability of `delay_us` extra latency.
    pub fn delay(mut self, p: f64, delay_us: u64) -> Self {
        self.delay_prob = p.clamp(0.0, 1.0);
        self.delay_us = delay_us;
        self
    }

    /// Counters of the faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// One uniform draw in `[0, 1)`.
    fn draw(&mut self) -> f64 {
        // 53 random bits — exact as an f64 fraction.
        (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Applies the model to a message about to be delivered, mutating
    /// `payload` in place (corruption flips one byte; a dropped message
    /// leaves the bytes alone — the caller discards them). Returns
    /// whether the message is delivered, whether a duplicate copy
    /// arrives, and extra delay in microseconds.
    fn apply_in_place(&mut self, payload: &mut [u8]) -> (bool, bool, u64) {
        // Fixed draw count per message keeps seeded runs stable across
        // probability changes.
        let (d_drop, d_dup, d_corrupt, d_delay) =
            (self.draw(), self.draw(), self.draw(), self.draw());
        let corrupt_at = self.rng.next_u64();
        let extra = if d_delay < self.delay_prob {
            self.stats.delayed += 1;
            self.delay_us
        } else {
            0
        };
        if d_drop < self.drop_prob {
            self.stats.dropped += 1;
            return (false, false, extra);
        }
        if d_corrupt < self.corrupt_prob && !payload.is_empty() {
            let idx = (corrupt_at % payload.len() as u64) as usize;
            if let Some(byte) = payload.get_mut(idx) {
                *byte ^= 0x01;
            }
            self.stats.corrupted += 1;
        }
        let duplicated = d_dup < self.duplicate_prob;
        if duplicated {
            self.stats.duplicated += 1;
        }
        (true, duplicated, extra)
    }
}

/// The simulated network.
pub struct SimNetwork {
    latency: LatencyModel,
    attacker: Option<Box<dyn NetworkAttacker>>,
    faults: Option<FaultModel>,
    // Endpoints whose host node is crashed. Messages from or to a down
    // endpoint are black-holed before the attacker or fault model act
    // on them — a crashed machine neither sends nor receives, and its
    // silence must not consume fault-model RNG draws (the clean path's
    // draw sequence is pinned by the golden trace).
    down_endpoints: BTreeSet<String>,
    blackholed: u64,
    // Per-message log entries allocate (owned endpoint names and byte
    // copies), so large-fleet sweeps turn the log off; fates, latencies
    // and RNG draws are identical either way.
    logging: bool,
    log: Vec<TransmitRecord>,
}

impl std::fmt::Debug for SimNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNetwork")
            .field("latency", &self.latency)
            .field("messages", &self.log.len())
            .field("attacker", &self.attacker.is_some())
            .field("down_endpoints", &self.down_endpoints)
            .finish()
    }
}

impl Default for SimNetwork {
    fn default() -> Self {
        Self::new(LatencyModel::default())
    }
}

impl SimNetwork {
    /// Creates a benign network with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        SimNetwork {
            latency,
            attacker: None,
            faults: None,
            down_endpoints: BTreeSet::new(),
            blackholed: 0,
            logging: true,
            log: Vec::new(),
        }
    }

    /// Turns the transmission log on or off (on by default). With the
    /// log off nothing is recorded and the per-message bookkeeping
    /// allocations disappear; message fates are unaffected.
    pub fn set_logging(&mut self, on: bool) {
        self.logging = on;
    }

    /// Marks `endpoint` as down: every message from or to it is
    /// black-holed until [`SimNetwork::set_endpoint_up`]. Idempotent.
    pub fn set_endpoint_down(&mut self, endpoint: &str) {
        self.down_endpoints.insert(endpoint.to_owned());
    }

    /// Brings `endpoint` back: deliveries involving it resume.
    pub fn set_endpoint_up(&mut self, endpoint: &str) {
        self.down_endpoints.remove(endpoint);
    }

    /// Whether `endpoint` is currently black-holed.
    pub fn endpoint_is_down(&self, endpoint: &str) -> bool {
        self.down_endpoints.contains(endpoint)
    }

    /// Messages black-holed because one of their endpoints was down.
    pub fn blackholed(&self) -> u64 {
        self.blackholed
    }

    /// Installs (or replaces) the network adversary.
    pub fn set_attacker(&mut self, attacker: Box<dyn NetworkAttacker>) {
        self.attacker = Some(attacker);
    }

    /// Removes the adversary.
    pub fn clear_attacker(&mut self) {
        self.attacker = None;
    }

    /// Installs (or replaces) the benign fault model. Faults apply after
    /// the adversary, so both can be active at once.
    pub fn set_fault_model(&mut self, faults: FaultModel) {
        self.faults = Some(faults);
    }

    /// Removes the fault model (the network becomes lossless again).
    pub fn clear_fault_model(&mut self) {
        self.faults = None;
    }

    /// The installed fault model's injection counters, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(FaultModel::stats)
    }

    /// Transmits `payload` from `from` to `to`, applying first the
    /// adversary, then the benign fault model.
    pub fn transmit(&mut self, from: &str, to: &str, payload: &[u8]) -> Delivery {
        let mut out = Vec::new();
        let outcome = self.transmit_into(from, to, payload, 0, &mut out);
        Delivery {
            payload: outcome.delivered.then_some(out),
            latency_us: outcome.latency_us,
            duplicated: outcome.duplicated,
        }
    }

    /// [`SimNetwork::transmit`] with the delivered bytes written into
    /// `out` (cleared first; left empty when the message is lost). This
    /// is the one implementation of the transmit pipeline — the
    /// allocating forms delegate here, so adversary order, fault RNG
    /// draws and latency charging cannot diverge between them. With
    /// logging off and no adversary in play this path allocates nothing
    /// beyond what `out` already holds.
    pub fn transmit_into(
        &mut self,
        from: &str,
        to: &str,
        payload: &[u8],
        now_us: u64,
        out: &mut Vec<u8>,
    ) -> TransmitOutcome {
        out.clear();
        if self.down_endpoints.contains(from) || self.down_endpoints.contains(to) {
            // A crashed node neither transmits nor receives. Checked
            // before the attacker and fault model so a black-holed
            // message consumes zero fault RNG draws. Serialization is
            // still charged: the sender finds out from its timeout, not
            // instantaneously.
            self.blackholed += 1;
            let latency_us = self.latency.latency_for(payload.len());
            if self.logging {
                self.log.push(TransmitRecord {
                    from: from.to_owned(),
                    to: to.to_owned(),
                    sent: payload.to_vec(),
                    delivered: None,
                    latency_us,
                });
            }
            return TransmitOutcome {
                delivered: false,
                deliver_at_us: now_us.saturating_add(latency_us),
                latency_us,
                duplicated: false,
            };
        }
        let action = match &mut self.attacker {
            Some(att) => att.intercept(from, to, payload),
            None => Intercept::Pass,
        };
        let delivered = match action {
            Intercept::Pass => {
                out.extend_from_slice(payload);
                true
            }
            Intercept::Modify(m) => {
                out.extend_from_slice(&m);
                true
            }
            Intercept::Drop => false,
        };
        let (delivered, duplicated, extra_delay_us) = match (&mut self.faults, delivered) {
            (Some(faults), true) => faults.apply_in_place(out),
            (_, delivered) => (delivered, false, 0),
        };
        // Serialization is charged on the bytes the sender actually put
        // on the wire, not on what the adversary or a duplicate fault
        // delivered.
        let latency_us = self.latency.latency_for(payload.len()) + extra_delay_us;
        if self.logging {
            self.log.push(TransmitRecord {
                from: from.to_owned(),
                to: to.to_owned(),
                sent: payload.to_vec(),
                delivered: delivered.then(|| out.clone()),
                latency_us,
            });
        }
        if !delivered {
            out.clear();
        }
        TransmitOutcome {
            delivered,
            deliver_at_us: now_us.saturating_add(latency_us),
            latency_us,
            duplicated,
        }
    }

    /// Transmits `payload` at virtual time `now_us`, returning the
    /// delivery resolved into an absolute arrival instant for an event
    /// queue to schedule. The simulator knows a message's fate the
    /// moment it is sent (there is no concurrent receiver), so
    /// discrete-event callers learn everything here and schedule exactly
    /// one follow-up: the arrival of a delivered record, or — for a
    /// lost or rejected one — the sender's loss-detection timeout.
    ///
    /// Adversary, fault model, serialization charging and the
    /// transmission log are all identical to [`SimNetwork::transmit`].
    pub fn send_at(
        &mut self,
        from: &str,
        to: &str,
        payload: &[u8],
        now_us: u64,
    ) -> ScheduledDelivery {
        let mut out = Vec::new();
        let outcome = self.transmit_into(from, to, payload, now_us, &mut out);
        ScheduledDelivery {
            deliver_at_us: outcome.deliver_at_us,
            payload: outcome.delivered.then_some(out),
            latency_us: outcome.latency_us,
            duplicated: outcome.duplicated,
        }
    }

    /// [`SimNetwork::send_at`] with the delivered bytes written into
    /// `out` (cleared first; left empty when the message is lost) — the
    /// steady-state form for discrete-event callers that own a receive
    /// buffer.
    pub fn send_at_into(
        &mut self,
        from: &str,
        to: &str,
        payload: &[u8],
        now_us: u64,
        out: &mut Vec<u8>,
    ) -> TransmitOutcome {
        self.transmit_into(from, to, payload, now_us, out)
    }

    /// The full transmission log.
    pub fn log(&self) -> &[TransmitRecord] {
        &self.log
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }
}

/// A passive eavesdropper: records copies of everything, passes all
/// messages through. Used to check confidentiality properties.
#[derive(Debug, Default)]
pub struct Eavesdropper {
    /// Captured payloads in transmission order.
    pub captured: Vec<Vec<u8>>,
}

impl NetworkAttacker for Eavesdropper {
    fn intercept(&mut self, _from: &str, _to: &str, payload: &[u8]) -> Intercept {
        self.captured.push(payload.to_vec());
        Intercept::Pass
    }
}

/// An active tamperer: flips a byte in every message between the
/// configured endpoints.
#[derive(Debug)]
pub struct Tamperer {
    /// Only tamper with messages whose destination contains this string
    /// (empty = all).
    pub target_to: String,
    /// How many messages were modified.
    pub modified: u64,
}

impl Tamperer {
    /// Tampers with every message to destinations matching `target_to`.
    pub fn new(target_to: &str) -> Self {
        Tamperer {
            target_to: target_to.to_owned(),
            modified: 0,
        }
    }
}

impl NetworkAttacker for Tamperer {
    fn intercept(&mut self, _from: &str, to: &str, payload: &[u8]) -> Intercept {
        if !self.target_to.is_empty() && !to.contains(&self.target_to) {
            return Intercept::Pass;
        }
        if payload.is_empty() {
            return Intercept::Pass;
        }
        let mut m = payload.to_vec();
        let mid = m.len() / 2;
        if let Some(byte) = m.get_mut(mid) {
            *byte ^= 0x01;
        }
        self.modified += 1;
        Intercept::Modify(m)
    }
}

/// A replay attacker: records the first message to a target, and from the
/// `replay_after`-th message onward replaces each new message with it.
#[derive(Debug)]
pub struct Replayer {
    target_to: String,
    // Only the first capture is ever replayed; keeping more would leak
    // memory over a long periodic run.
    recorded: Option<Vec<u8>>,
    seen: u64,
    replay_after: u64,
    /// How many replays were injected.
    pub replayed: u64,
}

impl Replayer {
    /// Replays the first captured message (to destinations matching
    /// `target_to`) in place of every message after the first
    /// `replay_after`.
    pub fn new(target_to: &str, replay_after: u64) -> Self {
        Replayer {
            target_to: target_to.to_owned(),
            recorded: None,
            seen: 0,
            replay_after,
            replayed: 0,
        }
    }
}

impl NetworkAttacker for Replayer {
    fn intercept(&mut self, _from: &str, to: &str, payload: &[u8]) -> Intercept {
        if !self.target_to.is_empty() && !to.contains(&self.target_to) {
            return Intercept::Pass;
        }
        self.seen += 1;
        if self.recorded.is_none() {
            self.recorded = Some(payload.to_vec());
        }
        if self.seen > self.replay_after {
            if let Some(old) = &self.recorded {
                self.replayed += 1;
                return Intercept::Modify(old.clone());
            }
        }
        Intercept::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_delivery() {
        let mut net = SimNetwork::default();
        let d = net.transmit("customer", "controller", b"hello");
        assert_eq!(d.payload.as_deref(), Some(b"hello".as_slice()));
        assert!(d.latency_us >= 300);
        assert_eq!(net.log().len(), 1);
        assert_eq!(net.log()[0].from, "customer");
    }

    #[test]
    fn latency_scales_with_size() {
        let model = LatencyModel {
            base_us: 100,
            per_kb_us: 10,
        };
        assert_eq!(model.latency_for(0), 100);
        assert_eq!(model.latency_for(1), 110);
        assert_eq!(model.latency_for(1024), 110);
        assert_eq!(model.latency_for(1025), 120);
        assert_eq!(model.latency_for(10 * 1024), 200);
    }

    #[test]
    fn eavesdropper_sees_but_passes() {
        let mut net = SimNetwork::default();
        net.set_attacker(Box::new(Eavesdropper::default()));
        let d = net.transmit("a", "b", b"payload");
        assert_eq!(d.payload.as_deref(), Some(b"payload".as_slice()));
    }

    #[test]
    fn tamperer_modifies_targeted_messages() {
        let mut net = SimNetwork::default();
        net.set_attacker(Box::new(Tamperer::new("server")));
        let d = net.transmit("attestation", "cloud-server-1", b"request");
        assert_ne!(d.payload.as_deref(), Some(b"request".as_slice()));
        let d2 = net.transmit("customer", "controller", b"request");
        assert_eq!(d2.payload.as_deref(), Some(b"request".as_slice()));
    }

    #[test]
    fn replayer_replays_first_message() {
        let mut net = SimNetwork::default();
        net.set_attacker(Box::new(Replayer::new("", 1)));
        let d1 = net.transmit("a", "b", b"first");
        assert_eq!(d1.payload.as_deref(), Some(b"first".as_slice()));
        let d2 = net.transmit("a", "b", b"second");
        assert_eq!(d2.payload.as_deref(), Some(b"first".as_slice()));
    }

    #[test]
    fn drop_is_logged() {
        struct Dropper;
        impl NetworkAttacker for Dropper {
            fn intercept(&mut self, _: &str, _: &str, _: &[u8]) -> Intercept {
                Intercept::Drop
            }
        }
        let mut net = SimNetwork::default();
        net.set_attacker(Box::new(Dropper));
        let d = net.transmit("a", "b", b"gone");
        assert_eq!(d.payload, None);
        assert_eq!(net.log()[0].delivered, None);
    }

    #[test]
    fn latency_charged_on_sent_bytes_not_inflated_delivery() {
        struct Inflater;
        impl NetworkAttacker for Inflater {
            fn intercept(&mut self, _: &str, _: &str, payload: &[u8]) -> Intercept {
                let mut m = payload.to_vec();
                m.extend_from_slice(&[0u8; 64 * 1024]);
                Intercept::Modify(m)
            }
        }
        let mut clean = SimNetwork::default();
        let baseline = clean.transmit("a", "b", b"msg").latency_us;
        let mut net = SimNetwork::default();
        net.set_attacker(Box::new(Inflater));
        let d = net.transmit("a", "b", b"msg");
        assert!(d.payload.unwrap().len() > 64 * 1024);
        assert_eq!(d.latency_us, baseline);
    }

    #[test]
    fn fault_model_drop_rate_is_about_right() {
        let mut net = SimNetwork::default();
        net.set_fault_model(FaultModel::new(42).drop_prob(0.1));
        let mut dropped = 0;
        for _ in 0..1000 {
            if net.transmit("a", "b", b"x").payload.is_none() {
                dropped += 1;
            }
        }
        assert!((60..=140).contains(&dropped), "dropped {dropped}/1000");
        assert_eq!(net.fault_stats().unwrap().dropped, dropped);
    }

    #[test]
    fn fault_model_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut net = SimNetwork::default();
            net.set_fault_model(FaultModel::new(seed).drop_prob(0.3));
            (0..64)
                .map(|_| net.transmit("a", "b", b"x").payload.is_none())
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn duplicate_fault_flags_delivery() {
        let mut net = SimNetwork::default();
        net.set_fault_model(FaultModel::new(1).duplicate_prob(1.0));
        let d = net.transmit("a", "b", b"x");
        assert!(d.duplicated);
        assert_eq!(d.payload.as_deref(), Some(b"x".as_slice()));
        assert_eq!(net.fault_stats().unwrap().duplicated, 1);
    }

    #[test]
    fn corrupt_fault_flips_one_byte() {
        let mut net = SimNetwork::default();
        net.set_fault_model(FaultModel::new(2).corrupt_prob(1.0));
        let sent = vec![0u8; 32];
        let got = net.transmit("a", "b", &sent).payload.unwrap();
        assert_eq!(got.len(), sent.len());
        let differing = got.iter().zip(&sent).filter(|(a, b)| a != b).count();
        assert_eq!(differing, 1);
    }

    #[test]
    fn delay_fault_adds_latency() {
        let mut clean = SimNetwork::default();
        let baseline = clean.transmit("a", "b", b"x").latency_us;
        let mut net = SimNetwork::default();
        net.set_fault_model(FaultModel::new(3).delay(1.0, 5_000));
        let d = net.transmit("a", "b", b"x");
        assert_eq!(d.latency_us, baseline + 5_000);
    }

    #[test]
    fn faults_compose_with_attacker() {
        // The tamperer modifies, then the fault model drops: both layers
        // act on the same message stream.
        let mut net = SimNetwork::default();
        net.set_attacker(Box::new(Tamperer::new("")));
        net.set_fault_model(FaultModel::new(4).drop_prob(1.0));
        let d = net.transmit("a", "b", b"payload");
        assert_eq!(d.payload, None);
        net.clear_fault_model();
        let d = net.transmit("a", "b", b"payload");
        assert_ne!(d.payload.as_deref(), Some(b"payload".as_slice()));
    }

    #[test]
    fn replayer_keeps_only_first_capture() {
        let mut r = Replayer::new("", u64::MAX);
        for i in 0..100u8 {
            r.intercept("a", "b", &[i]);
        }
        assert_eq!(r.recorded.as_deref(), Some([0u8].as_slice()));
    }

    #[test]
    fn down_endpoint_blackholes_both_directions() {
        let mut net = SimNetwork::default();
        net.set_endpoint_down("server-1");
        assert!(net.endpoint_is_down("server-1"));
        assert_eq!(net.transmit("attserver", "server-1", b"req").payload, None);
        assert_eq!(net.transmit("server-1", "attserver", b"rsp").payload, None);
        assert_eq!(net.blackholed(), 2);
        // Unrelated endpoints are unaffected.
        assert!(net
            .transmit("customer", "controller", b"ok")
            .payload
            .is_some());
        net.set_endpoint_up("server-1");
        assert!(!net.endpoint_is_down("server-1"));
        assert!(net
            .transmit("attserver", "server-1", b"req")
            .payload
            .is_some());
        assert_eq!(net.blackholed(), 2);
    }

    #[test]
    fn blackhole_consumes_no_fault_draws() {
        // Two networks with the same fault seed; one black-holes a
        // message in the middle. The fates of the surrounding messages
        // must be identical — a down endpoint skips the fault model
        // entirely rather than burning its draws.
        let fates = |down: bool| -> Vec<bool> {
            let mut net = SimNetwork::default();
            net.set_fault_model(FaultModel::new(11).drop_prob(0.5));
            let mut out = Vec::new();
            for i in 0..32 {
                if i == 16 && down {
                    net.set_endpoint_down("b");
                    net.transmit("a", "b", b"blackholed");
                    net.set_endpoint_up("b");
                }
                out.push(net.transmit("a", "b", b"x").payload.is_some());
            }
            out
        };
        assert_eq!(fates(false), fates(true));
    }

    #[test]
    fn blackhole_still_charges_latency_and_logs() {
        let mut clean = SimNetwork::default();
        let baseline = clean.transmit("a", "b", b"msg").latency_us;
        let mut net = SimNetwork::default();
        net.set_endpoint_down("b");
        let d = net.transmit("a", "b", b"msg");
        assert_eq!(d.latency_us, baseline);
        assert_eq!(net.log().len(), 1);
        assert_eq!(net.log()[0].delivered, None);
    }

    #[test]
    fn transmit_into_reuses_buffer_and_matches_transmit() {
        let run_owned = |seed: u64| {
            let mut net = SimNetwork::default();
            net.set_fault_model(FaultModel::new(seed).drop_prob(0.3).corrupt_prob(0.3));
            (0..64u8)
                .map(|i| net.transmit("a", "b", &[i, i, i]).payload)
                .collect::<Vec<_>>()
        };
        let run_into = |seed: u64| {
            let mut net = SimNetwork::default();
            net.set_fault_model(FaultModel::new(seed).drop_prob(0.3).corrupt_prob(0.3));
            let mut buf = Vec::new();
            (0..64u8)
                .map(|i| {
                    let o = net.transmit_into("a", "b", &[i, i, i], 0, &mut buf);
                    o.delivered.then(|| buf.clone())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run_owned(9), run_into(9));
    }

    #[test]
    fn lost_message_leaves_out_buffer_empty() {
        let mut net = SimNetwork::default();
        net.set_endpoint_down("b");
        let mut buf = b"stale".to_vec();
        let o = net.transmit_into("a", "b", b"x", 100, &mut buf);
        assert!(!o.delivered);
        assert!(buf.is_empty());
        assert_eq!(o.deliver_at_us, 100 + o.latency_us);
    }

    #[test]
    fn logging_off_records_nothing_but_keeps_fates() {
        let fates = |logging: bool| {
            let mut net = SimNetwork::default();
            net.set_logging(logging);
            net.set_fault_model(FaultModel::new(5).drop_prob(0.5));
            let fates: Vec<bool> = (0..32)
                .map(|_| net.transmit("a", "b", b"x").payload.is_some())
                .collect();
            (fates, net.log().len())
        };
        let (on_fates, on_log) = fates(true);
        let (off_fates, off_log) = fates(false);
        assert_eq!(on_fates, off_fates);
        assert_eq!(on_log, 32);
        assert_eq!(off_log, 0);
    }

    #[test]
    fn clear_attacker_restores_benign() {
        let mut net = SimNetwork::default();
        net.set_attacker(Box::new(Tamperer::new("")));
        net.transmit("a", "b", b"x");
        net.clear_attacker();
        let d = net.transmit("a", "b", b"y");
        assert_eq!(d.payload.as_deref(), Some(b"y".as_slice()));
    }
}
