//! # monatt-net
//!
//! The network substrate of the CloudMonatt reproduction:
//!
//! * [`wire`] — a deterministic canonical encoding for protocol messages
//!   (quotes and signatures are computed over these bytes).
//! * [`channel`] — SSL-like mutually authenticated secure channels:
//!   signed Diffie-Hellman handshake, directional record keys (the
//!   session keys Kx, Ky, Kz of Figure 3), sequence-numbered records with
//!   replay protection.
//! * [`sim`] — a simulated network with a latency model and pluggable
//!   Dolev-Yao adversaries (eavesdrop, tamper, replay, drop), matching
//!   the threat model of Section 3.3.
//!
//! ## Example: a protected hop survives a tamperer
//!
//! ```
//! use monatt_crypto::drbg::Drbg;
//! use monatt_crypto::schnorr::SigningKey;
//! use monatt_net::channel::handshake_pair;
//! use monatt_net::sim::{SimNetwork, Tamperer};
//!
//! let mut rng = Drbg::from_seed(1);
//! let client = SigningKey::generate(&mut rng);
//! let server = SigningKey::generate(&mut rng);
//! let (mut c, mut s) = handshake_pair(&mut rng, &client, &server).unwrap();
//!
//! let mut net = SimNetwork::default();
//! net.set_attacker(Box::new(Tamperer::new("")));
//! let record = c.seal(b"", b"attestation request");
//! let delivered = net.transmit("client", "server", &record).payload.unwrap();
//! assert!(s.open(b"", &delivered).is_err(), "tampering must be detected");
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod sim;
pub mod wire;

pub use channel::{
    complete, handshake_pair, initiate, respond, ChannelError, Hello, HelloReply, SecureChannel,
    REPLAY_WINDOW,
};
pub use sim::{
    Delivery, Eavesdropper, FaultModel, FaultStats, Intercept, LatencyModel, NetworkAttacker,
    Replayer, SimNetwork, Tamperer, TransmitRecord,
};
pub use wire::{Reader, Wire, WireError, Writer};
