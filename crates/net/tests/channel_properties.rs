//! Property-based tests for the secure channel: arbitrary payloads
//! roundtrip; arbitrary corruption is always rejected.

use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::SigningKey;
use monatt_net::channel::handshake_pair;
use proptest::prelude::*;

fn endpoints(seed: u64) -> (monatt_net::SecureChannel, monatt_net::SecureChannel) {
    let mut rng = Drbg::from_seed(seed);
    let a = SigningKey::generate(&mut rng);
    let b = SigningKey::generate(&mut rng);
    handshake_pair(&mut rng, &a, &b).expect("honest handshake")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sequence of payloads roundtrips in order.
    #[test]
    fn payload_streams_roundtrip(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512),
            1..8,
        ),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let (mut tx, mut rx) = endpoints(1);
        for payload in &payloads {
            let record = tx.seal(&aad, payload);
            prop_assert_eq!(&rx.open(&aad, &record).unwrap(), payload);
        }
    }

    /// Flipping any bit of any record is detected.
    #[test]
    fn any_corruption_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        byte in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let (mut tx, mut rx) = endpoints(2);
        let mut record = tx.seal(b"", &payload);
        let idx = byte.index(record.len());
        record[idx] ^= 1 << bit;
        // Either the sequence header or the tag breaks — never a silent
        // wrong plaintext.
        match rx.open(b"", &record) {
            Err(_) => {}
            Ok(pt) => prop_assert_eq!(pt, payload, "accepted record must decrypt correctly"),
        }
    }

    /// Records sealed by an unrelated channel never open.
    #[test]
    fn cross_channel_records_rejected(payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let (mut tx, _) = endpoints(3);
        let (_, mut other_rx) = endpoints(4);
        let record = tx.seal(b"", &payload);
        prop_assert!(other_rx.open(b"", &record).is_err());
    }

    /// Every record accepted exactly once (no replays), in any prefix.
    #[test]
    fn no_record_accepted_twice(count in 1usize..6) {
        let (mut tx, mut rx) = endpoints(5);
        let records: Vec<Vec<u8>> = (0..count).map(|i| tx.seal(b"", &[i as u8])).collect();
        for record in &records {
            prop_assert!(rx.open(b"", record).is_ok());
            prop_assert!(rx.open(b"", record).is_err(), "replay accepted");
        }
    }

    /// Any in-window delivery order is accepted exactly once per record:
    /// the shuffled stream opens fully, then every duplicate is rejected
    /// as [`monatt_net::ChannelError::DuplicateRecord`] and the channel
    /// keeps working afterwards.
    #[test]
    fn any_in_window_order_accepted_exactly_once(
        count in 2usize..12,
        order_seed in any::<u64>(),
        dup in any::<proptest::sample::Index>(),
    ) {
        let (mut tx, mut rx) = endpoints(6);
        let mut records: Vec<Vec<u8>> = (0..count).map(|i| tx.seal(b"", &[i as u8])).collect();
        // Deterministic Fisher-Yates shuffle from the seed.
        let mut state = order_seed | 1;
        for i in (1..records.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            records.swap(i, j);
        }
        for record in &records {
            prop_assert!(rx.open(b"", record).is_ok(), "in-window record rejected");
        }
        let replay = &records[dup.index(records.len())];
        prop_assert_eq!(
            rx.open(b"", replay),
            Err(monatt_net::ChannelError::DuplicateRecord)
        );
        // Duplicate rejection never desyncs: a fresh record still opens.
        let fresh = tx.seal(b"", b"after");
        prop_assert_eq!(rx.open(b"", &fresh).unwrap(), b"after".to_vec());
    }

    /// A tampered record is rejected as an authentication failure (not a
    /// duplicate), and the original still opens afterwards: corruption
    /// neither consumes the sequence number nor desyncs the window.
    #[test]
    fn tampered_record_does_not_consume_sequence(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        byte in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let (mut tx, mut rx) = endpoints(7);
        let record = tx.seal(b"", &payload);
        let mut bad = record.clone();
        // Corrupt strictly after the 8-byte sequence header so the
        // window sees the true sequence number but auth fails.
        let idx = 8 + byte.index(bad.len() - 8);
        bad[idx] ^= 1 << bit;
        prop_assert_eq!(
            rx.open(b"", &bad),
            Err(monatt_net::ChannelError::RecordAuthentication)
        );
        prop_assert_eq!(rx.open(b"", &record).unwrap(), payload);
    }
}
