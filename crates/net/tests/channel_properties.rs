//! Property-based tests for the secure channel: arbitrary payloads
//! roundtrip; arbitrary corruption is always rejected.

use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::SigningKey;
use monatt_net::channel::handshake_pair;
use proptest::prelude::*;

fn endpoints(seed: u64) -> (monatt_net::SecureChannel, monatt_net::SecureChannel) {
    let mut rng = Drbg::from_seed(seed);
    let a = SigningKey::generate(&mut rng);
    let b = SigningKey::generate(&mut rng);
    handshake_pair(&mut rng, &a, &b).expect("honest handshake")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sequence of payloads roundtrips in order.
    #[test]
    fn payload_streams_roundtrip(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512),
            1..8,
        ),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let (mut tx, mut rx) = endpoints(1);
        for payload in &payloads {
            let record = tx.seal(&aad, payload);
            prop_assert_eq!(&rx.open(&aad, &record).unwrap(), payload);
        }
    }

    /// Flipping any bit of any record is detected.
    #[test]
    fn any_corruption_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        byte in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let (mut tx, mut rx) = endpoints(2);
        let mut record = tx.seal(b"", &payload);
        let idx = byte.index(record.len());
        record[idx] ^= 1 << bit;
        // Either the sequence header or the tag breaks — never a silent
        // wrong plaintext.
        match rx.open(b"", &record) {
            Err(_) => {}
            Ok(pt) => prop_assert_eq!(pt, payload, "accepted record must decrypt correctly"),
        }
    }

    /// Records sealed by an unrelated channel never open.
    #[test]
    fn cross_channel_records_rejected(payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let (mut tx, _) = endpoints(3);
        let (_, mut other_rx) = endpoints(4);
        let record = tx.seal(b"", &payload);
        prop_assert!(other_rx.open(b"", &record).is_err());
    }

    /// Every record accepted exactly once (no replays), in any prefix.
    #[test]
    fn no_record_accepted_twice(count in 1usize..6) {
        let (mut tx, mut rx) = endpoints(5);
        let records: Vec<Vec<u8>> = (0..count).map(|i| tx.seal(b"", &[i as u8])).collect();
        for record in &records {
            prop_assert!(rx.open(b"", record).is_ok());
            prop_assert!(rx.open(b"", record).is_err(), "replay accepted");
        }
    }
}
