//! Fixture-corpus and self-lint tests for `monatt-lint`.
//!
//! Each rule must fire on its `bad_*` fixture and stay silent on the
//! matching `good_*` fixture; the suppression syntax must silence all
//! three rules; the allowlist ratchet must reject over-budget and stale
//! entries against the `ws/` mini-workspace; and the real workspace must
//! pass `--deny` with the committed allowlist.

use std::path::{Path, PathBuf};
use std::process::Command;

use monatt_lint::context::FileContext;
use monatt_lint::engine::scan;
use monatt_lint::rules::run_all;
use monatt_lint::{Allowlist, Config, Diagnostic, ALLOWLIST_FILE};

fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
    run_all(&FileContext::new(path, src), &Config::default())
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn ws_root() -> PathBuf {
    fixtures_dir().join("ws")
}

// ---------------------------------------------------------------------------
// secret_hygiene
// ---------------------------------------------------------------------------

#[test]
fn secret_hygiene_fires_on_bad_fixture() {
    let diags = lint(
        "crates/net/src/bad_secret.rs",
        include_str!("fixtures/bad_secret.rs"),
    );
    assert!(
        rules_of(&diags).iter().all(|r| *r == "secret_hygiene"),
        "only secret_hygiene should fire: {diags:?}"
    );
    // One finding per seeded defect: derived Debug, missing manual Debug,
    // missing Drop, Drop without zeroize, and two format-macro leaks.
    assert_eq!(diags.len(), 6, "{diags:?}");
    let expect = |needle: &str| {
        assert!(
            diags.iter().any(|d| d.message.contains(needle)),
            "missing `{needle}` in {diags:?}"
        );
    };
    expect("derives Debug");
    expect("no manual Debug impl");
    expect("no Drop impl");
    expect("does not call a zeroize helper");
    expect("`mac_key` interpolated into `println!`");
    expect("interpolated into `warn!`");
}

#[test]
fn secret_hygiene_silent_on_good_fixture() {
    let diags = lint(
        "crates/net/src/good_secret.rs",
        include_str!("fixtures/good_secret.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// const_time
// ---------------------------------------------------------------------------

#[test]
fn const_time_fires_on_tag_and_digest_comparisons() {
    // Outside the crypto hot-path set only the comparison checks apply.
    let diags = lint(
        "crates/verifier/src/bad_const_time.rs",
        include_str!("fixtures/bad_const_time.rs"),
    );
    assert_eq!(rules_of(&diags), ["const_time", "const_time"], "{diags:?}");
    assert!(diags[0].message.contains("`==` on `tag`"), "{diags:?}");
    assert!(
        diags[1].message.contains("`!=` on `quote_digest`"),
        "{diags:?}"
    );
}

#[test]
fn const_time_hot_path_adds_branch_and_index_findings() {
    // The same source under a hot-path label also flags the
    // secret-dependent branch and table index.
    let diags = lint(
        "crates/crypto/src/montgomery.rs",
        include_str!("fixtures/bad_const_time.rs"),
    );
    assert_eq!(diags.len(), 4, "{diags:?}");
    assert!(rules_of(&diags).iter().all(|r| *r == "const_time"));
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("secret-dependent branch on `exp`")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("secret-dependent table index `exp`")),
        "{diags:?}"
    );
}

#[test]
fn const_time_silent_on_good_fixture() {
    let diags = lint(
        "crates/crypto/src/good_const_time.rs",
        include_str!("fixtures/good_const_time.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// panic_freedom
// ---------------------------------------------------------------------------

#[test]
fn panic_freedom_fires_on_bad_fixture() {
    let diags = lint(
        "crates/core/src/bad_panic.rs",
        include_str!("fixtures/bad_panic.rs"),
    );
    assert!(rules_of(&diags).iter().all(|r| *r == "panic_freedom"));
    // Three unguarded indexes, unwrap, expect, panic!, unreachable!, todo!.
    assert_eq!(diags.len(), 8, "{diags:?}");
    let count = |needle: &str| diags.iter().filter(|d| d.message.contains(needle)).count();
    assert_eq!(count("slice index may panic"), 3, "{diags:?}");
    assert_eq!(count("`.unwrap()`"), 1);
    assert_eq!(count("`.expect()`"), 1);
    assert_eq!(count("`panic!`"), 1);
    assert_eq!(count("`unreachable!`"), 1);
    assert_eq!(count("`todo!`"), 1);
}

#[test]
fn panic_freedom_silent_on_good_fixture() {
    let diags = lint(
        "crates/core/src/good_panic.rs",
        include_str!("fixtures/good_panic.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn panic_freedom_out_of_scope_crate_is_silent() {
    // The same panicking source is out of scope for a non-protocol crate.
    let diags = lint(
        "crates/hypervisor/src/bad_panic.rs",
        include_str!("fixtures/bad_panic.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// suppression
// ---------------------------------------------------------------------------

#[test]
fn suppression_fixture_silences_every_rule() {
    let src = include_str!("fixtures/suppressed.rs");
    let diags = lint("crates/core/src/suppressed.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
    // The suppressions are load-bearing: stripping the comments makes one
    // finding per rule reappear.
    let stripped = src.replace("monatt::", "gone::");
    let diags = lint("crates/core/src/suppressed.rs", &stripped);
    let mut rules = rules_of(&diags);
    rules.sort_unstable();
    assert_eq!(
        rules,
        ["const_time", "panic_freedom", "secret_hygiene"],
        "{diags:?}"
    );
}

// ---------------------------------------------------------------------------
// allowlist ratchet on the ws mini-workspace
// ---------------------------------------------------------------------------

#[test]
fn ws_scan_finds_known_debt_and_skips_shim_crates() {
    let report = scan(&ws_root(), &Config::default(), &Allowlist::default()).unwrap();
    // rand-shim is excluded, so only crates/core/src/lib.rs is scanned.
    assert_eq!(report.files, 1);
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report
        .findings
        .iter()
        .all(|d| d.rule == "panic_freedom" && d.file == "crates/core/src/lib.rs"));
    // With no allowlist the findings are deny violations.
    assert_eq!(report.budgeted, 0);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert!(report.deny_failure());
}

#[test]
fn ws_exact_budget_passes_deny() {
    let allow = Allowlist::parse("panic_freedom crates/core/src/lib.rs 2").unwrap();
    let report = scan(&ws_root(), &Config::default(), &allow).unwrap();
    assert_eq!(report.budgeted, 2);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.stale.is_empty(), "{:?}", report.stale);
    assert!(!report.deny_failure());
}

#[test]
fn ws_over_budget_is_a_violation() {
    let allow = Allowlist::parse("panic_freedom crates/core/src/lib.rs 1").unwrap();
    let report = scan(&ws_root(), &Config::default(), &allow).unwrap();
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert!(report.stale.is_empty());
    assert!(report.deny_failure());
}

#[test]
fn ws_stale_budget_must_be_tightened() {
    // The ratchet only shrinks: a budget larger than reality is an error.
    let allow = Allowlist::parse("panic_freedom crates/core/src/lib.rs 3").unwrap();
    let report = scan(&ws_root(), &Config::default(), &allow).unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.stale.len(), 1, "{:?}", report.stale);
    assert!(report.stale[0].contains("ratchet only shrinks"));
    assert!(report.deny_failure());
}

#[test]
fn ws_widened_panic_scope_reaches_shim_crate_when_unskipped() {
    // Config knobs work end to end: un-skipping rand-shim surfaces its
    // unwrap too.
    let mut cfg = Config::default();
    cfg.skip_crates.retain(|c| c != "rand-shim");
    cfg.panic_crates.push("rand-shim".to_string());
    let report = scan(&ws_root(), &cfg, &Allowlist::default()).unwrap();
    assert_eq!(report.files, 2);
    assert!(report
        .findings
        .iter()
        .any(|d| d.file == "crates/rand-shim/src/lib.rs"));
}

// ---------------------------------------------------------------------------
// self-lint: the real workspace passes --deny with the committed allowlist
// ---------------------------------------------------------------------------

#[test]
fn workspace_self_lint_passes_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let allow = Allowlist::load(&root.join(ALLOWLIST_FILE)).unwrap();
    let report = scan(&root, &Config::default(), &allow).unwrap();
    assert!(report.files > 50, "workspace scan looks too small");
    assert!(
        !report.deny_failure(),
        "workspace fails its own lint: violations={:?} stale={:?} findings={:?}",
        report.violations,
        report.stale,
        report.findings
    );
}

// ---------------------------------------------------------------------------
// CLI: exit codes and JSON output
// ---------------------------------------------------------------------------

fn lint_cmd(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_monatt-lint"))
        .args(args)
        .output()
        .expect("run monatt-lint")
}

#[test]
fn cli_deny_fails_without_allowlist() {
    let ws = ws_root();
    let out = lint_cmd(&["--root", ws.to_str().unwrap(), "--deny"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("DENY:"), "{stdout}");
    assert!(stdout.contains("allowlist budget 0"), "{stdout}");
}

#[test]
fn cli_deny_passes_with_budgeted_allowlist() {
    let ws = ws_root();
    let allow = fixtures_dir().join("ws.allow");
    let out = lint_cmd(&[
        "--root",
        ws.to_str().unwrap(),
        "--allowlist",
        allow.to_str().unwrap(),
        "--deny",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 within allowlist budget"), "{stdout}");
}

#[test]
fn cli_json_reports_findings_and_violations() {
    let ws = ws_root();
    let out = lint_cmd(&["--root", ws.to_str().unwrap(), "--json"]);
    // Without --deny the exit code stays 0 even with findings.
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\"findings\":["), "{stdout}");
    assert!(stdout.contains("\"rule\":\"panic_freedom\""), "{stdout}");
    assert!(stdout.contains("\"files\":1"), "{stdout}");
    assert!(stdout.contains("allowlist budget 0"), "{stdout}");
}

#[test]
fn cli_rejects_unknown_flags() {
    let out = lint_cmd(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown option"), "{stderr}");
}
