//! Fixture-corpus and self-lint tests for `monatt-lint`.
//!
//! Each rule must fire on its `bad_*` fixture and stay silent on the
//! matching `good_*` fixture; the suppression syntax must silence all
//! three rules; the allowlist ratchet must reject over-budget and stale
//! entries against the `ws/` mini-workspace; and the real workspace must
//! pass `--deny` with the committed allowlist.

use std::path::{Path, PathBuf};
use std::process::Command;

use monatt_lint::engine::scan;
use monatt_lint::{lint_file, Allowlist, Config, Diagnostic, ALLOWLIST_FILE};

fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
    lint_file(path, src, &Config::default())
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn ws_root() -> PathBuf {
    fixtures_dir().join("ws")
}

// ---------------------------------------------------------------------------
// secret_hygiene
// ---------------------------------------------------------------------------

#[test]
fn secret_hygiene_fires_on_bad_fixture() {
    let diags = lint(
        "crates/net/src/bad_secret.rs",
        include_str!("fixtures/bad_secret.rs"),
    );
    assert!(
        rules_of(&diags).iter().all(|r| *r == "secret_hygiene"),
        "only secret_hygiene should fire: {diags:?}"
    );
    // One finding per seeded defect: derived Debug, missing manual Debug,
    // missing Drop, Drop without zeroize, and two format-macro leaks.
    assert_eq!(diags.len(), 6, "{diags:?}");
    let expect = |needle: &str| {
        assert!(
            diags.iter().any(|d| d.message.contains(needle)),
            "missing `{needle}` in {diags:?}"
        );
    };
    expect("derives Debug");
    expect("no manual Debug impl");
    expect("no Drop impl");
    expect("does not call a zeroize helper");
    expect("`mac_key` interpolated into `println!`");
    expect("interpolated into `warn!`");
}

#[test]
fn secret_hygiene_silent_on_good_fixture() {
    let diags = lint(
        "crates/net/src/good_secret.rs",
        include_str!("fixtures/good_secret.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// const_time
// ---------------------------------------------------------------------------

#[test]
fn const_time_fires_on_tag_and_digest_comparisons() {
    // Outside the crypto hot-path set only the comparison checks apply.
    let diags = lint(
        "crates/verifier/src/bad_const_time.rs",
        include_str!("fixtures/bad_const_time.rs"),
    );
    assert_eq!(rules_of(&diags), ["const_time", "const_time"], "{diags:?}");
    assert!(diags[0].message.contains("`==` on `tag`"), "{diags:?}");
    assert!(
        diags[1].message.contains("`!=` on `quote_digest`"),
        "{diags:?}"
    );
}

#[test]
fn const_time_hot_path_adds_branch_and_index_findings() {
    // The same source under a hot-path label also flags the
    // secret-dependent branch and table index.
    let diags = lint(
        "crates/crypto/src/montgomery.rs",
        include_str!("fixtures/bad_const_time.rs"),
    );
    assert_eq!(diags.len(), 4, "{diags:?}");
    assert!(rules_of(&diags).iter().all(|r| *r == "const_time"));
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("secret-dependent branch on `exp`")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("secret-dependent table index `exp`")),
        "{diags:?}"
    );
}

#[test]
fn const_time_silent_on_good_fixture() {
    let diags = lint(
        "crates/crypto/src/good_const_time.rs",
        include_str!("fixtures/good_const_time.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// panic_freedom
// ---------------------------------------------------------------------------

#[test]
fn panic_freedom_fires_on_bad_fixture() {
    let diags = lint(
        "crates/core/src/bad_panic.rs",
        include_str!("fixtures/bad_panic.rs"),
    );
    assert!(rules_of(&diags).iter().all(|r| *r == "panic_freedom"));
    // Three unguarded indexes, unwrap, expect, panic!, unreachable!, todo!.
    assert_eq!(diags.len(), 8, "{diags:?}");
    let count = |needle: &str| diags.iter().filter(|d| d.message.contains(needle)).count();
    assert_eq!(count("slice index may panic"), 3, "{diags:?}");
    assert_eq!(count("`.unwrap()`"), 1);
    assert_eq!(count("`.expect()`"), 1);
    assert_eq!(count("`panic!`"), 1);
    assert_eq!(count("`unreachable!`"), 1);
    assert_eq!(count("`todo!`"), 1);
}

#[test]
fn panic_freedom_silent_on_good_fixture() {
    let diags = lint(
        "crates/core/src/good_panic.rs",
        include_str!("fixtures/good_panic.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn panic_freedom_out_of_scope_crate_is_silent() {
    // The same panicking source is out of scope for a non-protocol crate.
    let diags = lint(
        "crates/hypervisor/src/bad_panic.rs",
        include_str!("fixtures/bad_panic.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// suppression
// ---------------------------------------------------------------------------

#[test]
fn suppression_fixture_silences_every_rule() {
    let src = include_str!("fixtures/suppressed.rs");
    let diags = lint("crates/core/src/suppressed.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
    // The suppressions are load-bearing: stripping the comments makes one
    // finding per rule reappear.
    let stripped = src.replace("monatt::", "gone::");
    let diags = lint("crates/core/src/suppressed.rs", &stripped);
    let mut rules = rules_of(&diags);
    rules.sort_unstable();
    assert_eq!(
        rules,
        ["const_time", "panic_freedom", "secret_hygiene"],
        "{diags:?}"
    );
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

#[test]
fn determinism_fires_on_bad_fixture() {
    let diags = lint(
        "crates/core/src/bad_determinism.rs",
        include_str!("fixtures/bad_determinism.rs"),
    );
    assert!(
        rules_of(&diags).iter().all(|r| *r == "determinism"),
        "only determinism should fire: {diags:?}"
    );
    // Two HashMap mentions, three clock mentions (use + return type +
    // two `now()` sites), one ambient RNG; the test-module HashSet is
    // exempt.
    assert_eq!(diags.len(), 7, "{diags:?}");
    let count = |needle: &str| diags.iter().filter(|d| d.message.contains(needle)).count();
    assert_eq!(count("iteration order"), 2, "{diags:?}");
    assert_eq!(count("wall clock"), 4, "{diags:?}");
    assert_eq!(count("ambient randomness"), 1, "{diags:?}");
}

#[test]
fn determinism_silent_on_good_fixture() {
    let diags = lint(
        "crates/core/src/good_determinism.rs",
        include_str!("fixtures/good_determinism.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn determinism_out_of_scope_crate_is_silent() {
    // The verifier crate replays nothing; wall clocks are fine there.
    let diags = lint(
        "crates/verifier/src/bad_determinism.rs",
        include_str!("fixtures/bad_determinism.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// alloc_freedom
// ---------------------------------------------------------------------------

#[test]
fn alloc_freedom_fires_on_bad_fixture() {
    let diags = lint(
        "crates/net/src/wire.rs",
        include_str!("fixtures/bad_alloc.rs"),
    );
    assert!(
        rules_of(&diags).iter().all(|r| *r == "alloc_freedom"),
        "only alloc_freedom should fire: {diags:?}"
    );
    assert_eq!(diags.len(), 4, "{diags:?}");
    let expect = |needle: &str| {
        assert!(
            diags.iter().any(|d| d.message.contains(needle)),
            "missing `{needle}` in {diags:?}"
        );
    };
    expect("`.to_vec()`");
    expect("`format!`");
    expect("`.collect()`");
    expect("`Vec::with_capacity`");
}

#[test]
fn alloc_freedom_silent_on_good_fixture() {
    let diags = lint(
        "crates/net/src/wire.rs",
        include_str!("fixtures/good_alloc.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn alloc_freedom_unenrolled_file_is_silent() {
    // The same allocations are fine outside the warm-path file set.
    let diags = lint(
        "crates/net/src/framing.rs",
        include_str!("fixtures/bad_alloc.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn alloc_freedom_propagates_one_call_deep() {
    use monatt_lint::context::FileContext;
    use monatt_lint::rules::run_all;
    use monatt_lint::Workspace;

    let ws = Workspace::build(vec![
        FileContext::new(
            "crates/net/src/wire.rs",
            include_str!("fixtures/bad_alloc_propagation.rs"),
        ),
        FileContext::new(
            "crates/net/src/label.rs",
            include_str!("fixtures/alloc_helper.rs"),
        ),
    ]);
    let cfg = Config::default();
    let mut diags: Vec<Diagnostic> = (0..ws.files.len())
        .flat_map(|i| run_all(&ws, i, &cfg))
        .collect();
    diags.retain(|d| d.rule == "alloc_freedom");
    // Exactly one propagated finding: `describe` → `mk_label`. The
    // `#[cold]` helper call in `fail` is trusted and not flagged.
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.file, "crates/net/src/wire.rs");
    assert!(d.message.contains("calls `mk_label`"), "{d:?}");
    // The related-location note points into the callee's file.
    assert_eq!(d.notes.len(), 1, "{d:?}");
    assert_eq!(d.notes[0].file, "crates/net/src/label.rs");
    assert!(d.notes[0].message.contains("allocates here"), "{d:?}");
}

// ---------------------------------------------------------------------------
// secret_taint
// ---------------------------------------------------------------------------

#[test]
fn secret_taint_fires_on_bad_fixture() {
    let diags = lint(
        "crates/core/src/bad_taint.rs",
        include_str!("fixtures/bad_taint.rs"),
    );
    assert!(
        rules_of(&diags).iter().all(|r| *r == "secret_taint"),
        "only secret_taint should fire: {diags:?}"
    );
    assert_eq!(diags.len(), 3, "{diags:?}");
    let expect = |needle: &str| {
        diags
            .iter()
            .find(|d| d.message.contains(needle))
            .unwrap_or_else(|| panic!("missing `{needle}` in {diags:?}"))
    };
    let fmt = expect("interpolated into `println!`");
    assert!(fmt.message.contains("`mac_key`"), "{fmt:?}");
    let ser = expect("serialized via `to_hex`");
    assert!(ser.message.contains("`sk_bytes`"), "{ser:?}");
    let cmp = expect("variable-time `==`");
    assert!(cmp.message.contains("`secret`"), "{cmp:?}");
    // Every finding names the concrete sink via a related-location note.
    for d in &diags {
        assert_eq!(d.notes.len(), 1, "{d:?}");
        assert_eq!(d.notes[0].file, d.file);
        assert!(d.notes[0].line > 0);
    }
}

#[test]
fn secret_taint_silent_on_good_fixture() {
    let diags = lint(
        "crates/core/src/good_taint.rs",
        include_str!("fixtures/good_taint.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// static coverage beyond the runtime tests
// ---------------------------------------------------------------------------

#[test]
fn static_rules_cover_files_runtime_tests_skip() {
    // The golden-trace fixture replays the clean attestation path, and
    // `zero_alloc.rs` drives warm rounds — neither executes the outage
    // module or the timer wheel's cold branches. The static rules still
    // police those files: seeding a defect into the real sources makes
    // the matching rule fire, so the guarantee does not depend on a
    // runtime test reaching the code.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let cfg = Config::default();

    let outage = std::fs::read_to_string(root.join("crates/core/src/outage.rs")).unwrap();
    let clean = lint_file("crates/core/src/outage.rs", &outage, &cfg);
    assert!(clean.is_empty(), "outage.rs should be clean: {clean:?}");
    let seeded = format!(
        "{outage}\npub fn drift() -> u64 {{\n    let _t = std::time::Instant::now();\n    0\n}}\n"
    );
    let diags = lint_file("crates/core/src/outage.rs", &seeded, &cfg);
    assert!(
        diags.iter().any(|d| d.rule == "determinism"),
        "determinism covers outage.rs: {diags:?}"
    );

    let wheel = std::fs::read_to_string(root.join("crates/hypervisor/src/wheel.rs")).unwrap();
    let clean = lint_file("crates/hypervisor/src/wheel.rs", &wheel, &cfg);
    assert!(clean.is_empty(), "wheel.rs should be clean: {clean:?}");
    let seeded =
        format!("{wheel}\npub fn snapshot_ids(xs: &[u64]) -> Vec<u64> {{\n    xs.to_vec()\n}}\n");
    let diags = lint_file("crates/hypervisor/src/wheel.rs", &seeded, &cfg);
    assert!(
        diags.iter().any(|d| d.rule == "alloc_freedom"),
        "alloc_freedom covers wheel.rs: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// allowlist ratchet on the ws mini-workspace
// ---------------------------------------------------------------------------

#[test]
fn ws_scan_finds_known_debt_and_skips_shim_crates() {
    let report = scan(&ws_root(), &Config::default(), &Allowlist::default()).unwrap();
    // rand-shim is excluded, so only crates/core/src/lib.rs is scanned.
    assert_eq!(report.files, 1);
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report
        .findings
        .iter()
        .all(|d| d.rule == "panic_freedom" && d.file == "crates/core/src/lib.rs"));
    // With no allowlist the findings are deny violations.
    assert_eq!(report.budgeted, 0);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert!(report.deny_failure());
}

#[test]
fn ws_exact_budget_passes_deny() {
    let allow = Allowlist::parse("panic_freedom crates/core/src/lib.rs 2").unwrap();
    let report = scan(&ws_root(), &Config::default(), &allow).unwrap();
    assert_eq!(report.budgeted, 2);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.stale.is_empty(), "{:?}", report.stale);
    assert!(!report.deny_failure());
}

#[test]
fn ws_over_budget_is_a_violation() {
    let allow = Allowlist::parse("panic_freedom crates/core/src/lib.rs 1").unwrap();
    let report = scan(&ws_root(), &Config::default(), &allow).unwrap();
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert!(report.stale.is_empty());
    assert!(report.deny_failure());
}

#[test]
fn ws_stale_budget_must_be_tightened() {
    // The ratchet only shrinks: a budget larger than reality is an error.
    let allow = Allowlist::parse("panic_freedom crates/core/src/lib.rs 3").unwrap();
    let report = scan(&ws_root(), &Config::default(), &allow).unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.stale.len(), 1, "{:?}", report.stale);
    assert!(report.stale[0].contains("ratchet only shrinks"));
    assert!(report.deny_failure());
}

#[test]
fn ws_duplicate_allowlist_entries_rejected_at_parse() {
    // Two budgets for the same (rule, path) would make the effective
    // budget ambiguous; the parser refuses with both line numbers.
    let err = Allowlist::parse(
        "panic_freedom crates/core/src/lib.rs 1\n\
         const_time crates/tpm/src/quote.rs 1\n\
         panic_freedom crates/core/src/lib.rs 1\n",
    )
    .unwrap_err();
    assert!(err.contains("line 3"), "{err}");
    assert!(err.contains("duplicate entry"), "{err}");
    assert!(err.contains("first budgeted on line 1"), "{err}");
    assert!(err.contains("merge into one line"), "{err}");
    // Hyphen/underscore spellings normalize to the same rule, so they
    // still collide.
    let err = Allowlist::parse(
        "const_time crates/tpm/src/quote.rs 1\nconst-time crates/tpm/src/quote.rs 2\n",
    )
    .unwrap_err();
    assert!(err.contains("duplicate entry"), "{err}");
}

#[test]
fn ws_stale_entry_for_deleted_file_fails_deny() {
    // The budgeted file is gone from the workspace: the entry is dead
    // weight and gets its own message (not the "tighten" one, which
    // would suggest lowering a count on a file that no longer exists).
    let allow = Allowlist::parse("panic_freedom crates/core/src/deleted.rs 2").unwrap();
    let report = scan(&ws_root(), &Config::default(), &allow).unwrap();
    assert_eq!(report.stale.len(), 1, "{:?}", report.stale);
    assert!(
        report.stale[0].contains("no longer exists"),
        "{:?}",
        report.stale
    );
    assert!(
        report.stale[0].contains("delete the entry"),
        "{:?}",
        report.stale
    );
    assert!(!report.stale[0].contains("ratchet only shrinks"));
    assert!(report.deny_failure());
}

#[test]
fn ws_over_budget_and_stale_in_same_run_are_distinct() {
    // One under-budgeted live file plus one deleted file: deny fails
    // with both failure classes, each carrying its own message.
    let allow = Allowlist::parse(
        "panic_freedom crates/core/src/lib.rs 1\n\
         const_time crates/core/src/deleted.rs 1\n",
    )
    .unwrap();
    let report = scan(&ws_root(), &Config::default(), &allow).unwrap();
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert!(
        report.violations[0].contains("allowlist budget 1"),
        "{:?}",
        report.violations
    );
    assert_eq!(report.stale.len(), 1, "{:?}", report.stale);
    assert!(
        report.stale[0].contains("no longer exists"),
        "{:?}",
        report.stale
    );
    assert_ne!(report.violations[0], report.stale[0]);
    assert!(report.deny_failure());
}

#[test]
fn ws_widened_panic_scope_reaches_shim_crate_when_unskipped() {
    // Config knobs work end to end: un-skipping rand-shim surfaces its
    // unwrap too.
    let mut cfg = Config::default();
    cfg.skip_crates.retain(|c| c != "rand-shim");
    cfg.panic_crates.push("rand-shim".to_string());
    let report = scan(&ws_root(), &cfg, &Allowlist::default()).unwrap();
    assert_eq!(report.files, 2);
    assert!(report
        .findings
        .iter()
        .any(|d| d.file == "crates/rand-shim/src/lib.rs"));
}

// ---------------------------------------------------------------------------
// self-lint: the real workspace passes --deny with the committed allowlist
// ---------------------------------------------------------------------------

#[test]
fn workspace_self_lint_passes_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let allow = Allowlist::load(&root.join(ALLOWLIST_FILE)).unwrap();
    let report = scan(&root, &Config::default(), &allow).unwrap();
    assert!(report.files > 50, "workspace scan looks too small");
    assert!(
        !report.deny_failure(),
        "workspace fails its own lint: violations={:?} stale={:?} findings={:?}",
        report.violations,
        report.stale,
        report.findings
    );
}

// ---------------------------------------------------------------------------
// CLI: exit codes and JSON output
// ---------------------------------------------------------------------------

fn lint_cmd(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_monatt-lint"))
        .args(args)
        .output()
        .expect("run monatt-lint")
}

#[test]
fn cli_deny_fails_without_allowlist() {
    let ws = ws_root();
    let out = lint_cmd(&["--root", ws.to_str().unwrap(), "--deny"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("DENY:"), "{stdout}");
    assert!(stdout.contains("allowlist budget 0"), "{stdout}");
}

#[test]
fn cli_deny_passes_with_budgeted_allowlist() {
    let ws = ws_root();
    let allow = fixtures_dir().join("ws.allow");
    let out = lint_cmd(&[
        "--root",
        ws.to_str().unwrap(),
        "--allowlist",
        allow.to_str().unwrap(),
        "--deny",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 within allowlist budget"), "{stdout}");
}

#[test]
fn cli_json_reports_findings_and_violations() {
    let ws = ws_root();
    let out = lint_cmd(&["--root", ws.to_str().unwrap(), "--json"]);
    // Without --deny the exit code stays 0 even with findings.
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\"findings\":["), "{stdout}");
    assert!(stdout.contains("\"rule\":\"panic_freedom\""), "{stdout}");
    assert!(stdout.contains("\"files\":1"), "{stdout}");
    assert!(stdout.contains("allowlist budget 0"), "{stdout}");
}

#[test]
fn cli_rejects_unknown_flags() {
    let out = lint_cmd(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown option"), "{stderr}");
}

#[test]
fn cli_explain_documents_each_rule() {
    for rule in [
        "secret_hygiene",
        "const_time",
        "panic_freedom",
        "determinism",
        "alloc_freedom",
        "secret_taint",
    ] {
        let out = lint_cmd(&["--explain", rule]);
        assert_eq!(out.status.code(), Some(0), "--explain {rule}: {out:?}");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains(rule), "--explain {rule}: {stdout}");
        assert!(stdout.len() > 200, "--explain {rule} too thin: {stdout}");
    }
}

#[test]
fn cli_explain_unknown_rule_lists_known_ones() {
    let out = lint_cmd(&["--explain", "borrow_check"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown rule `borrow_check`"), "{stderr}");
    assert!(stderr.contains("secret_taint"), "{stderr}");
}
