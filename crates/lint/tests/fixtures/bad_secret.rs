// Fixture: every secret_hygiene sub-check fires.
// Not compiled; scanned by crates/lint/tests/fixture_tests.rs.

#[derive(Clone, Debug)]
pub struct SealKey {
    mac_key: [u8; 32],
}

pub struct Drbg {
    key: [u8; 32],
}

impl std::fmt::Debug for Drbg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Drbg").finish_non_exhaustive()
    }
}

impl Drop for Drbg {
    fn drop(&mut self) {
        self.key = [0; 32]; // plain store: the optimizer may elide this
    }
}

fn log_keys(mac_key: &[u8], secret: u64) {
    println!("mac key is {:x?}", mac_key);
    log::warn!("derived {secret}");
}
