// Fixture: secret types done right — no secret_hygiene findings.

#[derive(Clone)]
pub struct SealKey {
    mac_key: [u8; 32],
}

impl std::fmt::Debug for SealKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealKey").finish_non_exhaustive()
    }
}

impl Drop for SealKey {
    fn drop(&mut self) {
        zeroize_bytes(&mut self.mac_key);
    }
}

fn log_metadata(seq: u64, peer: &str) {
    println!("record {seq} from {peer}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn debug_is_redacted() {
        // Format-leak checks are exempt in tests: asserting redaction
        // requires formatting the secret type.
        let k = super::SealKey { mac_key: [7; 32] };
        assert!(!format!("{k:?}").contains('7'));
    }
}
