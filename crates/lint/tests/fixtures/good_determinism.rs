//! Fixture: the deterministic counterparts to `bad_determinism.rs` —
//! ordered containers, virtual time, and a seeded DRBG, plus the one
//! sanctioned entropy boundary. Linted as
//! `crates/core/src/good_determinism.rs`.

use std::collections::BTreeMap;

/// Ordered container: iteration order is part of the replayable state.
pub fn tally(ids: &[u64]) -> usize {
    let mut seen = BTreeMap::new();
    for id in ids {
        seen.entry(id).or_insert(0u32);
    }
    seen.len()
}

/// Sim time flows in as a parameter from the engine's virtual clock.
pub fn stamp(now_ns: u64) -> u64 {
    now_ns
}

/// Randomness comes from a seeded generator threaded by the caller.
pub fn roll(rng: &mut Drbg) -> u64 {
    rng.next_u64()
}

/// The sanctioned entropy boundary: `Config::entropy_fns` exempts this
/// function name, so touching the OS RNG here is allowed.
pub fn from_entropy() -> u64 {
    let mut rng = OsRng;
    rng.next_u64()
}
