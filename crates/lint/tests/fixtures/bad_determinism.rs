//! Fixture: every class of silent nondeterminism the `determinism` rule
//! bans inside the sim-deterministic crate set. Linted as
//! `crates/core/src/bad_determinism.rs`.

use std::collections::HashMap;
use std::time::Instant;

/// Iteration order of the map differs per process: event order leaks.
pub fn tally(ids: &[u64]) -> usize {
    let mut seen = HashMap::with_capacity(ids.len());
    for id in ids {
        seen.entry(id).or_insert(0u32);
    }
    seen.len()
}

/// Wall-clock read: replays desynchronize.
pub fn stamp() -> Instant {
    Instant::now()
}

/// Second wall-clock flavor.
pub fn epoch_millis() -> u64 {
    let _ = std::time::SystemTime::now();
    0
}

/// Ambient randomness outside the sanctioned entropy boundary.
pub fn roll() -> u64 {
    let mut rng = OsRng;
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_code_may_use_hash_containers() {
        let mut s = HashSet::new();
        s.insert(1u8);
        assert!(s.contains(&1));
    }
}
