//! Fixture: a warm-path file that looks allocation-free on its own —
//! the allocation hides one call away in `alloc_helper.rs`. Linted as
//! `crates/net/src/wire.rs` together with that helper.

/// Calls a workspace helper that allocates: flagged by propagation,
/// with a note pointing into the callee.
pub fn describe(kind: u8) -> u8 {
    let label = mk_label(kind);
    label.len() as u8
}

/// Calls the `#[cold]` helper: the annotation is trusted, no finding.
pub fn fail(kind: u8) -> u8 {
    let err = mk_error(kind);
    err.len() as u8
}
