// Fixture: const_time findings — variable-time comparisons on tag and
// digest material, plus secret-dependent control flow when this file is
// presented under a hot-path label.

pub fn check_tag(tag: &[u8; 32], expected_tag: &[u8; 32]) -> bool {
    tag == expected_tag
}

pub fn digest_matches(quote_digest: [u8; 32], reference: [u8; 32]) -> bool {
    quote_digest != reference
}

pub fn pow(exp: u64, table: &[u64; 16]) -> u64 {
    let mut acc = 1;
    if exp & 1 == 1 {
        acc = table[(exp & 0xf) as usize];
    }
    acc
}
