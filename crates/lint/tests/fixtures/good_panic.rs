// Fixture: panic-free protocol code — no panic_freedom findings.

pub enum ParseError {
    Short,
}

pub fn parse(record: &[u8]) -> Result<u64, ParseError> {
    let (header, _body) = match record.len() {
        n if n >= 8 => record.split_at(8),
        _ => return Err(ParseError::Short),
    };
    let first = record.first().copied().ok_or(ParseError::Short)?;
    let fixed: [u8; 4] = [0, 1, 2, 3];
    let tagged = fixed[0];
    decode(header).ok_or(ParseError::Short).map(|v| v + u64::from(first) + u64::from(tagged))
}

fn decode(b: &[u8]) -> Option<u64> {
    b.get(..8)?.try_into().ok().map(u64::from_be_bytes)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = super::decode(&[0u8; 8]).unwrap();
        assert_eq!(v, 0);
        let record = [0u8; 16];
        let _slice = &record[..8];
    }
}
