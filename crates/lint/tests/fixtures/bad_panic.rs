// Fixture: panic_freedom findings — unwrap/expect, panic-family macros
// and unguarded slice indexing in protocol code.

pub fn parse(record: &[u8]) -> u64 {
    let header = &record[..8];
    let first = record[0 + 0];
    let tail = record[record.len() - 1];
    let value: Option<u64> = decode(header);
    let v = value.unwrap();
    let w: Result<u64, ()> = Err(());
    let w = w.expect("always ok");
    if first > tail {
        panic!("inverted record");
    }
    match v {
        0 => unreachable!(),
        _ => v + w,
    }
}

fn decode(_b: &[u8]) -> Option<u64> {
    todo!()
}
