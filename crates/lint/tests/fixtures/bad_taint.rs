//! Fixture: secret leaks that span two functions — invisible to the
//! per-function `secret_hygiene` rule, caught by `secret_taint`'s
//! one-call-deep parameter tracking. Linted as
//! `crates/core/src/bad_taint.rs`.

/// Innocent-looking logger: the parameter reaches a format macro.
fn log_value(v: &[u8]) {
    println!("value={v:?}");
}

/// The caller leaks: `mac_key` flows into `log_value`'s sink.
pub fn handshake_debug(mac_key: &[u8]) {
    log_value(mac_key);
}

/// Stringification sink one call deep.
fn render(data: &[u8]) -> usize {
    let s = to_hex(data);
    s
}

/// `sk_bytes` is serialized via the callee's `to_hex` call.
pub fn export_key(sk_bytes: &[u8]) -> usize {
    render(sk_bytes)
}

/// Variable-time comparison sink: the parameter meets `==`.
fn equal_bytes(value: &[u8], other: &[u8]) -> bool {
    value == other
}

/// `secret` carries a constant-time-sensitive name part, so handing it
/// to a `==` comparison two functions deep is a timing oracle.
pub fn verify_guess(secret: &[u8], other: &[u8]) -> bool {
    equal_bytes(secret, other)
}
