// Fixture: constant-time discipline done right — no const_time findings.

pub fn verify_tag(expected: &[u8], actual: &[u8]) -> bool {
    // The designated exempt function may compare tag material.
    expected == actual
}

pub fn check(tag: &[u8; 32], expected: &[u8; 32]) -> bool {
    ct_eq(tag, expected)
}

pub fn public_compare(len: usize, version: u32) -> bool {
    len == 8 && version != 0
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_vectors_may_compare_digests() {
        let digest = [0u8; 32];
        assert!(digest == [0u8; 32]);
    }
}
