//! Fixture: every direct allocation class the `alloc_freedom` rule
//! bans in warm-path files. Linted as `crates/net/src/wire.rs` (an
//! enrolled warm file).

/// Owned copy on the warm path.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = payload.to_vec();
    out.extend_from_slice(b"!");
    out
}

/// Allocating macro on the warm path.
pub fn frame_label(kind: u8) -> String {
    format!("frame#{kind}")
}

/// Turbofish collect on the warm path.
pub fn gather(xs: &[u8]) -> Vec<u8> {
    xs.iter().copied().collect::<Vec<u8>>()
}

/// Allocating constructor in a fn that is neither `#[cold]` nor named
/// in the cold list.
pub fn stage() -> Vec<u8> {
    Vec::with_capacity(64)
}
