// Fixture: inline suppression comments silence each rule.

pub fn startup(config: Option<u32>) -> u32 {
    // Startup-time configuration; absence is a deployment bug.
    // #[allow(monatt::panic_freedom)]
    config.unwrap()
}

pub fn tag_probe(tag: &[u8; 32], expected: &[u8; 32]) -> bool {
    tag == expected // timing harness, not a verifier: #[allow(monatt::const_time)]
}

// Snapshot type: Debug derive is deliberate. Hyphen spelling accepted.
#[derive(Clone, Debug)] // #[allow(monatt::secret-hygiene)]
pub struct SealKey {
    label: String,
}

impl std::fmt::Debug for SealKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealKey").finish_non_exhaustive()
    }
}

impl Drop for SealKey {
    fn drop(&mut self) {
        zeroize_bytes(self.label.as_bytes_mut());
    }
}
