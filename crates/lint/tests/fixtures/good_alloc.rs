//! Fixture: the allocation-free counterparts to `bad_alloc.rs`, plus
//! the two sanctioned escape hatches (`#[cold]` and the configured
//! cold-name list). Linted as `crates/net/src/wire.rs`.

/// Warm path: pure slice arithmetic, no allocation.
pub fn checksum(payload: &[u8]) -> u8 {
    payload.iter().fold(0u8, |acc, b| acc ^ b)
}

/// Warm path: writes into a caller-provided scratch buffer.
pub fn write_into(dst: &mut [u8], src: &[u8]) -> usize {
    let mut n = 0;
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = *s;
        n += 1;
    }
    n
}

/// Setup-only: the `#[cold]` attribute declares this off the warm path.
#[cold]
pub fn reserve_scratch(n: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(n);
    v.resize(n, 0u8);
    v
}

/// Constructors are cold by configuration (`Config::alloc_cold_fns`).
pub fn new() -> Vec<u8> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate() {
        let v = vec![1u8, 2, 3];
        assert_eq!(v.to_vec().len(), 3);
    }
}
