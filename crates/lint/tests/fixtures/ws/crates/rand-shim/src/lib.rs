// Fixture shim crate: would be a finding, but rand-shim is a skip crate.

pub fn seed(material: Option<u64>) -> u64 {
    material.unwrap()
}
