// Fixture crate scanned by engine tests: exactly two panic_freedom findings.

pub fn route(port: Option<u16>) -> u16 {
    port.unwrap()
}

pub fn frame(bytes: &[u8]) -> u8 {
    *bytes.first().expect("frame must be non-empty")
}
