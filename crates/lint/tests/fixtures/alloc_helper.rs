//! Fixture: a helper crate file that allocates, used to exercise the
//! `alloc_freedom` rule's one-level call-graph propagation. Linted as
//! `crates/net/src/label.rs` (not itself a warm-path file) alongside a
//! warm caller.

/// Allocates — fine here, but dragging it onto the warm path is not.
pub fn mk_label(kind: u8) -> String {
    format!("label#{kind}")
}

/// A `#[cold]` helper that allocates: calls to it from warm code are
/// trusted as declared cold paths and not propagated.
#[cold]
pub fn mk_error(kind: u8) -> String {
    format!("error#{kind}")
}
