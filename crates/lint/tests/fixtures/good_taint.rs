//! Fixture: cross-function secret flows that are fine — constant-time
//! primitives, zeroize helpers, callees that never sink the parameter,
//! and non-secret arguments into sink-bearing callees. Linted as
//! `crates/core/src/good_taint.rs`.

/// The constant-time comparison primitive is exempt by name.
fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Comparing a secret through the exempt primitive is the sanctioned
/// pattern.
pub fn verify_guess(secret: &[u8], other: &[u8]) -> bool {
    ct_eq(secret, other)
}

/// Zeroize helpers consume secrets by design.
fn zeroize_slice(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = 0;
    }
}

pub fn scrub(sk_bytes: &mut [u8]) {
    zeroize_slice(sk_bytes);
}

/// The callee only measures the parameter — no sink.
fn span_of(v: &[u8]) -> usize {
    v.len()
}

pub fn key_span(mac_key: &[u8]) -> usize {
    span_of(mac_key)
}

/// The callee has a format sink, but the argument is not a secret.
fn log_value(v: &[u8]) {
    println!("value={v:?}");
}

pub fn trace_frame(frame: &[u8]) {
    log_value(frame);
}
