//! Property-based tests for the lint lexer: arbitrary token sequences,
//! rendered with arbitrary inter-token whitespace (including CRLF),
//! lex back to the same token texts, and every reported span points at
//! the exact source position where that token's text begins.

use monatt_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// One generated token: its expected kind and exact source spelling.
#[derive(Clone, Debug)]
struct Spec {
    kind: TokenKind,
    text: String,
}

fn spec(kind: TokenKind, text: &str) -> Spec {
    Spec {
        kind,
        text: text.to_string(),
    }
}

/// Tokens that always lex verbatim as a single token when separated by
/// whitespace. Angle brackets are excluded on purpose: the lexer splits
/// `>>` context-sensitively, which is covered by unit tests instead.
fn token_strategy() -> impl Strategy<Value = Spec> {
    prop_oneof![
        prop_oneof![
            Just("foo"),
            Just("r#type"),
            Just("_bar"),
            Just("x1"),
            Just("collect"),
            Just("r#match")
        ]
        .prop_map(|s| spec(TokenKind::Ident, s)),
        (0u32..100_000).prop_map(|n| spec(TokenKind::Num, &n.to_string())),
        prop_oneof![Just("\"lit\""), Just("\"a b\""), Just("r#\"raw \"q\" s\"#")]
            .prop_map(|s| spec(TokenKind::Str, s)),
        prop_oneof![Just("'a'"), Just("'_'"), Just("'\\n'"), Just("b'x'")]
            .prop_map(|s| spec(TokenKind::Char, s)),
        prop_oneof![Just("'a"), Just("'static")].prop_map(|s| spec(TokenKind::Lifetime, s)),
        prop_oneof![
            Just("::"),
            Just("=="),
            Just("!="),
            Just(".."),
            Just("->"),
            Just("=>"),
            Just("+"),
            Just(";"),
            Just("("),
            Just(")"),
            Just(","),
            Just("&&"),
            Just("#")
        ]
        .prop_map(|s| spec(TokenKind::Punct, s)),
    ]
}

fn separator_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just(" "),
        Just("  "),
        Just("\t"),
        Just("\n"),
        Just("\r\n"),
        Just("\n\n"),
        Just(" \r\n "),
    ]
}

/// Returns the text of `src` starting at 1-based (line, col), where col
/// counts characters — the same convention the lexer reports.
fn source_at(src: &str, line: u32, col: u32) -> &str {
    let mut remaining = src;
    for _ in 1..line {
        let nl = remaining.find('\n').expect("span line within source");
        remaining = &remaining[nl + 1..];
    }
    let byte = remaining
        .char_indices()
        .nth(col as usize - 1)
        .map(|(b, _)| b)
        .expect("span column within line");
    &remaining[byte..]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rendering arbitrary tokens with arbitrary separators and lexing
    /// the result recovers the same (kind, text) sequence, and every
    /// span round-trips: slicing the source at (line, col) finds the
    /// token's own text.
    #[test]
    fn spans_roundtrip(
        specs in proptest::collection::vec(token_strategy(), 1..40),
        seps in proptest::collection::vec(separator_strategy(), 40),
    ) {
        let mut src = String::new();
        for (i, s) in specs.iter().enumerate() {
            src.push_str(&s.text);
            src.push_str(seps[i % seps.len()]);
        }

        let lexed = lex(&src);
        prop_assert!(
            lexed.tokens.len() == specs.len(),
            "lexed {} tokens from {} specs; source {:?}",
            lexed.tokens.len(),
            specs.len(),
            src
        );
        for (tok, spec) in lexed.tokens.iter().zip(&specs) {
            prop_assert!(
                tok.kind == spec.kind,
                "kind {:?} != {:?} for {:?} in {:?}",
                tok.kind,
                spec.kind,
                spec.text,
                src
            );
            prop_assert_eq!(&tok.text, &spec.text);
            let at = source_at(&src, tok.line, tok.col);
            prop_assert!(
                at.starts_with(tok.text.as_str()),
                "span {}:{} of {:?} points at {:?}",
                tok.line,
                tok.col,
                tok.text,
                &at[..at.len().min(12)]
            );
        }
    }

    /// The lexer never panics on arbitrary input, and whatever tokens it
    /// does produce carry spans inside the source.
    #[test]
    fn arbitrary_input_never_breaks_spans(chunks in proptest::collection::vec(".*", 0..8)) {
        let src = chunks.concat();
        let lexed = lex(&src);
        let lines: Vec<&str> = src.split('\n').collect();
        for tok in &lexed.tokens {
            prop_assert!((tok.line as usize) <= lines.len());
            prop_assert!(tok.col >= 1);
            let line = lines[tok.line as usize - 1];
            prop_assert!(
                (tok.col as usize - 1) <= line.chars().count(),
                "col {} beyond line {:?}",
                tok.col,
                line
            );
        }
    }
}
