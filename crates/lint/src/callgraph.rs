//! The intra-workspace call graph.
//!
//! For every parsed function body this module records its outgoing call
//! sites: plain calls (`helper(x)`), path calls (`Type::helper(x)`),
//! and method calls (`v.helper(x)`), each with the token ranges of its
//! top-level arguments so dataflow rules can map arguments onto callee
//! parameters. Macro invocations (`name!(…)`) are *not* call sites —
//! the format-macro rules handle those separately.

use crate::context::{match_delim, FileContext};
use crate::lexer::TokenKind;
use crate::symbols::FnKey;

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The function containing the call.
    pub caller: FnKey,
    /// Callee name: the last path segment before the argument list.
    pub callee: String,
    /// True for `receiver.callee(…)` method form (argument positions
    /// then bind to callee parameters shifted past `self`).
    pub method: bool,
    /// Token index (in the caller's file) of the callee name token.
    pub name_tok: usize,
    /// Token ranges of the top-level arguments, exclusive of commas.
    pub args: Vec<(usize, usize)>,
}

/// All call sites of one file, grouped per calling function.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Call sites in source order.
    pub sites: Vec<CallSite>,
}

/// Keywords that can be followed by `(` without being a call.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "match", "for", "return", "fn", "loop", "in", "as", "let", "else", "move",
    "unsafe", "where", "impl", "dyn", "box", "ref", "mut", "pub", "crate", "super", "Some", "Ok",
    "Err", "None",
];

impl CallGraph {
    /// Builds the call graph for all function bodies of every file.
    pub fn build(files: &[FileContext]) -> Self {
        let mut sites = Vec::new();
        for (fi, ctx) in files.iter().enumerate() {
            for (ii, item) in ctx.items.iter().enumerate() {
                let Some((start, end)) = item.body else {
                    continue;
                };
                collect_sites(ctx, FnKey { file: fi, item: ii }, start, end, &mut sites);
            }
        }
        CallGraph { sites }
    }

    /// Call sites whose caller is `key`, in source order.
    pub fn calls_from(&self, key: FnKey) -> impl Iterator<Item = &CallSite> {
        self.sites.iter().filter(move |s| s.caller == key)
    }
}

fn collect_sites(
    ctx: &FileContext,
    caller: FnKey,
    start: usize,
    end: usize,
    out: &mut Vec<CallSite>,
) {
    let toks = &ctx.tokens;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        let is_call_name = t.kind == TokenKind::Ident
            && !NON_CALL_IDENTS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        // Skip nested fn items: their sites belong to the nested item.
        if t.is_ident("fn") {
            if let Some(skip) = skip_nested_fn(ctx, i, end) {
                i = skip;
                continue;
            }
        }
        if !is_call_name {
            i += 1;
            continue;
        }
        // A definition (`fn name(`) or an attribute's inner pseudo-call
        // (`#[cfg(test)]`) is not a call. Macros never reach here: the
        // `!` after the macro name fails the `(` check above.
        let prev = i.checked_sub(1).map(|j| &toks[j]);
        if prev.is_some_and(|p| p.is_ident("fn"))
            || (prev.is_some_and(|p| p.is_punct("["))
                && i.checked_sub(2).is_some_and(|j| toks[j].is_punct("#")))
        {
            i += 1;
            continue;
        }
        let method = prev.is_some_and(|p| p.is_punct("."));
        let open = i + 1;
        let close = match_delim(toks, open);
        let args = split_args(ctx, open, close);
        out.push(CallSite {
            caller,
            callee: t.text.strip_prefix("r#").unwrap_or(&t.text).to_string(),
            method,
            name_tok: i,
            args,
        });
        // Arguments may contain further calls: continue inside them.
        i += 1;
    }
}

/// If the token at `i` starts a nested `fn` with a body inside `end`,
/// returns the index just past that body.
fn skip_nested_fn(ctx: &FileContext, i: usize, end: usize) -> Option<usize> {
    let items = &ctx.items;
    let nested = items.iter().find(|f| f.fn_tok == i)?;
    let (_, body_end) = nested.body?;
    if body_end <= end {
        // Do not skip: nested fn bodies get their own caller key, and
        // the outer scan must not revisit them. But the outer scan is
        // linear; simply jumping past the nested body keeps every site
        // attributed exactly once.
        Some(body_end + 1)
    } else {
        None
    }
}

/// Splits the argument tokens between `open` and `close` at top-level
/// commas, returning exclusive token ranges.
fn split_args(ctx: &FileContext, open: usize, close: usize) -> Vec<(usize, usize)> {
    let toks = &ctx.tokens;
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut arg_start = open + 1;
    for (i, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                args.push((arg_start, i));
                arg_start = i + 1;
            }
            _ => {}
        }
    }
    if arg_start < close {
        args.push((arg_start, close));
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn graph(src: &str) -> (Vec<FileContext>, CallGraph) {
        let files = vec![FileContext::new("crates/core/src/a.rs", src)];
        let g = CallGraph::build(&files);
        (files, g)
    }

    #[test]
    fn plain_path_and_method_calls() {
        let (_f, g) = graph(
            "fn caller(x: u8) { helper(x); Codec::encode(x, 2); buf.push_record(x); }\nfn helper(y: u8) {}",
        );
        let names: Vec<(&str, bool)> = g
            .sites
            .iter()
            .map(|s| (s.callee.as_str(), s.method))
            .collect();
        assert_eq!(
            names,
            [("helper", false), ("encode", false), ("push_record", true)]
        );
        assert_eq!(g.sites[1].args.len(), 2);
    }

    #[test]
    fn macros_and_definitions_are_not_calls() {
        let (_f, g) = graph("fn caller() { format!(\"x {}\", 1); assert!(true); }");
        assert!(g.sites.is_empty(), "{:?}", g.sites);
    }

    #[test]
    fn args_split_at_top_level_commas_only() {
        let (f, g) = graph("fn caller(k: u8) { seal(derive(k, 1), [2, 3], k); }\nfn seal(a: u8, b: [u8; 2], c: u8) {}");
        let seal = g.sites.iter().find(|s| s.callee == "seal").unwrap();
        assert_eq!(seal.args.len(), 3);
        // Third argument is the single token `k`.
        let (s, e) = seal.args[2];
        assert_eq!(e - s, 1);
        assert!(f[0].tokens[s].is_ident("k"));
        // The nested call is also recorded.
        assert!(g.sites.iter().any(|s| s.callee == "derive"));
    }

    #[test]
    fn nested_fn_sites_attributed_to_nested_item() {
        let (f, g) = graph("fn outer() { fn inner() { leaf(); } inner(); }\nfn leaf() {}");
        let inner_item = f[0].items.iter().position(|i| i.name == "inner").unwrap();
        let leaf = g.sites.iter().find(|s| s.callee == "leaf").unwrap();
        assert_eq!(leaf.caller.item, inner_item);
        let inner_call = g.sites.iter().find(|s| s.callee == "inner").unwrap();
        let outer_item = f[0].items.iter().position(|i| i.name == "outer").unwrap();
        assert_eq!(inner_call.caller.item, outer_item);
    }
}
