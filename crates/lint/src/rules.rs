//! The three workspace rules, evaluated over a [`FileContext`].
//!
//! Each rule is a pure function from (context, config) to diagnostics;
//! suppression comments are applied centrally in [`run_all`].

use crate::config::{Config, IndexPolicy};
use crate::context::{match_delim, FileContext};
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};

/// Normalized names of every rule, in evaluation order.
pub const RULE_NAMES: [&str; 3] = ["secret_hygiene", "const_time", "panic_freedom"];

/// Macros whose arguments end up in human-readable output (or a panic
/// payload) and therefore must not interpolate key material.
const FORMAT_MACROS: [&str; 19] = [
    "format",
    "println",
    "print",
    "eprintln",
    "eprint",
    "write",
    "writeln",
    "panic",
    "debug",
    "info",
    "warn",
    "error",
    "trace",
    "log",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
];

/// Keywords that cannot end an expression: a `[` following one of these
/// opens a slice pattern or array type, not an index operation.
const NON_EXPR_KEYWORDS: [&str; 26] = [
    "return", "break", "else", "in", "match", "loop", "while", "if", "impl", "mut", "ref", "as",
    "move", "let", "const", "static", "type", "where", "for", "unsafe", "dyn", "fn", "use", "pub",
    "enum", "struct",
];

/// Runs every rule on one file, filtering findings that carry an inline
/// `monatt::<rule>` suppression comment.
pub fn run_all(ctx: &FileContext, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    secret_hygiene(ctx, cfg, &mut out);
    const_time(ctx, cfg, &mut out);
    if cfg.panic_scope(&ctx.crate_name) || cfg.panic_scope_file(&ctx.path) {
        panic_freedom(ctx, cfg, &mut out);
    }
    out.retain(|d| !ctx.is_suppressed(d.rule, d.line));
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out.dedup();
    out
}

fn diag(rule: &'static str, ctx: &FileContext, line: u32, col: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        file: ctx.path.clone(),
        line,
        col,
        message,
    }
}

// ---------------------------------------------------------------------------
// Rule 1: secret_hygiene
// ---------------------------------------------------------------------------

/// Secret-bearing types must not derive a leaking `Debug`, must provide a
/// redacting manual `Debug`, key-byte holders must zeroize in `Drop`, and
/// secret identifiers must not reach format-like macros.
fn secret_hygiene(ctx: &FileContext, cfg: &Config, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "secret_hygiene";

    for d in &ctx.derives {
        if cfg.secret_types.contains(&d.type_name) && d.derives.iter().any(|t| t == "Debug") {
            out.push(diag(
                RULE,
                ctx,
                d.line,
                1,
                format!(
                    "secret type `{}` derives Debug, which prints key material; \
                     write a redacting `impl fmt::Debug` instead",
                    d.type_name
                ),
            ));
        }
    }

    for (name, line) in &ctx.defined_types {
        if cfg.secret_types.contains(name) && ctx.impl_body("Debug", name).is_none() {
            out.push(diag(
                RULE,
                ctx,
                *line,
                1,
                format!(
                    "secret type `{name}` has no manual Debug impl; add a redacting one \
                     so accidental `{{:?}}` cannot leak key material"
                ),
            ));
        }
        if cfg.zeroize_types.contains(name) {
            match ctx.impl_body("Drop", name) {
                None => out.push(diag(
                    RULE,
                    ctx,
                    *line,
                    1,
                    format!(
                        "key-material type `{name}` has no Drop impl; \
                         key bytes must be zeroized on drop"
                    ),
                )),
                Some((start, end)) => {
                    let zeroizes = ctx.tokens[start..end]
                        .iter()
                        .any(|t| t.kind == TokenKind::Ident && t.text.contains("zeroize"));
                    if !zeroizes {
                        out.push(diag(
                            RULE,
                            ctx,
                            *line,
                            1,
                            format!("Drop impl for `{name}` does not call a zeroize helper"),
                        ));
                    }
                }
            }
        }
    }

    // Format-macro interpolation of secrets. Test code is exempt for this
    // check only: tests legitimately assert that Debug output is redacted.
    let toks = &ctx.tokens;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        let is_macro = toks[i].kind == TokenKind::Ident
            && FORMAT_MACROS.contains(&toks[i].text.as_str())
            && toks[i + 1].is_punct("!")
            && matches!(toks[i + 2].text.as_str(), "(" | "[" | "{");
        if !is_macro || ctx.in_test[i] {
            i += 1;
            continue;
        }
        let close = match_delim(toks, i + 2);
        // `assert!`/`debug_assert!` only print their *format* arguments on
        // failure; the leading condition never reaches output, so skip it.
        let mut start = i + 3;
        if matches!(toks[i].text.as_str(), "assert" | "debug_assert") {
            let mut depth = 0i32;
            let mut after_comma = close;
            for (j, t) in toks.iter().enumerate().take(close).skip(start) {
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => {
                            after_comma = j + 1;
                            break;
                        }
                        _ => {}
                    }
                }
            }
            start = after_comma;
        }
        for t in &toks[start..close] {
            let leaked = match t.kind {
                TokenKind::Ident => {
                    cfg.secret_idents.contains(&t.text) || cfg.secret_types.contains(&t.text)
                }
                TokenKind::Str => cfg
                    .secret_idents
                    .iter()
                    .any(|name| str_interpolates(&t.text, name)),
                _ => false,
            };
            if leaked {
                out.push(diag(
                    RULE,
                    ctx,
                    t.line,
                    t.col,
                    format!(
                        "secret `{}` interpolated into `{}!`; key material must not \
                         reach logs or panic payloads",
                        display_name(&t.text),
                        toks[i].text
                    ),
                ));
            }
        }
        i = close + 1;
    }
}

/// True if a string literal's text contains an inline capture of `name`,
/// i.e. `{name}` or `{name:...}`.
fn str_interpolates(literal: &str, name: &str) -> bool {
    let mut rest = literal;
    while let Some(idx) = rest.find('{') {
        rest = &rest[idx + 1..];
        if let Some(stripped) = rest.strip_prefix(name) {
            if stripped.starts_with('}') || stripped.starts_with(':') {
                return true;
            }
        }
    }
    false
}

/// Shortens a string-literal token for use inside a message.
fn display_name(text: &str) -> String {
    if text.len() > 24 {
        format!(
            "{}…",
            &text[..text.char_indices().nth(24).map_or(text.len(), |(i, _)| i)]
        )
    } else {
        text.to_string()
    }
}

// ---------------------------------------------------------------------------
// Rule 2: const_time
// ---------------------------------------------------------------------------

/// Authentication tags, MACs, and digests must be compared with `ct_eq`,
/// and crypto hot paths must not branch or index on secret-derived values.
fn const_time(ctx: &FileContext, cfg: &Config, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "const_time";
    // The constant-time primitives themselves live in the zeroize module
    // and necessarily operate on the sensitive values.
    if ctx.path.ends_with("/zeroize.rs") {
        return;
    }
    let toks = &ctx.tokens;

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        if ctx.in_test[i] || cfg.ct_exempt_fns.contains(&ctx.enclosing_fn[i]) {
            continue;
        }
        if let Some(name) = ct_operand(toks, i, cfg) {
            out.push(diag(
                RULE,
                ctx,
                t.line,
                t.col,
                format!(
                    "variable-time `{}` on `{}`: comparing tag/digest material \
                     leaks a timing oracle; use `ct_eq`",
                    t.text, name
                ),
            ));
        }
    }

    if !cfg.is_hot_path(&ctx.path) {
        return;
    }
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("if") && !ctx.in_test[i] {
            // Condition tokens run until the body `{` at bracket depth 0;
            // parenthesized sub-expressions are scanned, not skipped.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() && !(depth == 0 && toks[j].is_punct("{")) {
                match toks[j].text.as_str() {
                    "(" | "[" if toks[j].kind == TokenKind::Punct => depth += 1,
                    ")" | "]" if toks[j].kind == TokenKind::Punct => depth -= 1,
                    _ => {}
                }
                if let Some(name) = secret_flow_ident(&toks[j], cfg) {
                    out.push(diag(
                        RULE,
                        ctx,
                        toks[j].line,
                        toks[j].col,
                        format!("secret-dependent branch on `{name}` in crypto hot path"),
                    ));
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if t.is_punct("[") && i > 0 && is_index_base(&toks[i - 1]) && !ctx.in_test[i] {
            let close = match_delim(toks, i);
            for inner in &toks[i + 1..close] {
                if let Some(name) = secret_flow_ident(inner, cfg) {
                    out.push(diag(
                        RULE,
                        ctx,
                        inner.line,
                        inner.col,
                        format!("secret-dependent table index `{name}` in crypto hot path"),
                    ));
                }
            }
        }
        i += 1;
    }
}

fn secret_flow_ident<'a>(t: &'a Token, cfg: &Config) -> Option<&'a str> {
    if t.kind == TokenKind::Ident && cfg.secret_flow_idents.iter().any(|s| s == &t.text) {
        Some(&t.text)
    } else {
        None
    }
}

/// Scans a bounded window on both sides of the comparison at `op` for an
/// identifier whose snake_case parts mark it as tag/digest material.
fn ct_operand(toks: &[Token], op: usize, cfg: &Config) -> Option<String> {
    const WINDOW: usize = 8;
    let stop = |t: &Token| {
        t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}" | "&&" | "||" | ",")
    };
    let mut candidates = Vec::new();
    for k in 1..=WINDOW {
        match op.checked_sub(k).map(|j| &toks[j]) {
            Some(t) if !stop(t) => candidates.push(t),
            _ => break,
        }
    }
    for t in toks.iter().skip(op + 1).take(WINDOW) {
        if stop(t) {
            break;
        }
        candidates.push(t);
    }
    candidates
        .into_iter()
        .find(|t| {
            t.kind == TokenKind::Ident
                && t.text
                    .to_ascii_lowercase()
                    .split('_')
                    .any(|part| cfg.ct_ident_parts.iter().any(|p| p == part))
        })
        .map(|t| t.text.clone())
}

// ---------------------------------------------------------------------------
// Rule 3: panic_freedom
// ---------------------------------------------------------------------------

/// Protocol crates must not reach `unwrap`/`expect`/`panic!` or
/// possibly-panicking slice indexing outside test code.
fn panic_freedom(ctx: &FileContext, cfg: &Config, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "panic_freedom";
    let policy = cfg.index_policy(&ctx.crate_name);
    let toks = &ctx.tokens;

    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if t.is_punct(".")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            let callee = &toks[i + 1];
            out.push(diag(
                RULE,
                ctx,
                callee.line,
                callee.col,
                format!(
                    "`.{}()` in protocol code can panic on adversarial input; \
                     return a typed error instead",
                    callee.text
                ),
            ));
        }
        if t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            out.push(diag(
                RULE,
                ctx,
                t.line,
                t.col,
                format!(
                    "`{}!` aborts the attestation path; return a typed error",
                    t.text
                ),
            ));
        }
        if policy == IndexPolicy::Strict && t.is_punct("[") && i > 0 && is_index_base(&toks[i - 1])
        {
            let close = match_delim(toks, i);
            let inner = &toks[i + 1..close];
            if !is_literal_index(inner) {
                out.push(diag(
                    RULE,
                    ctx,
                    t.line,
                    t.col,
                    "slice index may panic on short input; use `get`/`split_at` \
                     with an error path"
                        .to_string(),
                ));
            }
        }
    }
}

/// True if the token before a `[` means the bracket is an index operation
/// (rather than a slice pattern, array type, or array literal).
fn is_index_base(prev: &Token) -> bool {
    match prev.kind {
        TokenKind::Ident => !NON_EXPR_KEYWORDS.contains(&prev.text.as_str()),
        TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
        _ => false,
    }
}

/// True if the index tokens are a single integer literal (`x[0]`): the
/// compiler-checked fixed-offset pattern the strict policy still allows.
fn is_literal_index(inner: &[Token]) -> bool {
    inner.len() == 1 && inner[0].kind == TokenKind::Num
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        run_all(&FileContext::new(path, src), &Config::default())
    }

    #[test]
    fn derived_debug_on_secret_type_fires() {
        let src = "#[derive(Clone, Debug)]\npub struct SealKey { k: [u8; 32] }";
        let diags = run("crates/crypto/src/x.rs", src);
        assert!(diags
            .iter()
            .any(|d| d.rule == "secret_hygiene" && d.message.contains("derives Debug")));
    }

    #[test]
    fn manual_debug_and_drop_satisfy_rule() {
        let src = "pub struct SealKey { k: [u8; 32] }\n\
                   impl core::fmt::Debug for SealKey { }\n\
                   impl Drop for SealKey { fn drop(&mut self) { zeroize_bytes(&mut self.k); } }";
        let diags = run("crates/crypto/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn missing_drop_fires() {
        let src = "pub struct Drbg { key: [u8; 32] }\nimpl core::fmt::Debug for Drbg { }";
        let diags = run("crates/crypto/src/x.rs", src);
        assert!(diags.iter().any(|d| d.message.contains("no Drop impl")));
    }

    #[test]
    fn format_macro_leak_fires_and_inline_capture_detected() {
        let src = "fn f(mac_key: &[u8]) { println!(\"{:x?}\", mac_key); }\n\
                   fn g(secret: u32) { log::warn!(\"leak {secret}\"); }";
        let diags = run("crates/net/src/x.rs", src);
        assert_eq!(
            diags.iter().filter(|d| d.rule == "secret_hygiene").count(),
            2,
            "{diags:?}"
        );
    }

    #[test]
    fn assert_condition_is_not_a_leak_but_format_args_are() {
        let silent = "fn f(secret: &U) { assert!(!secret.is_zero(), \"must be nonzero\"); }";
        assert!(run("crates/crypto/src/x.rs", silent).is_empty());
        let leaky = "fn f(secret: u32) { assert!(secret > 0, \"bad {secret}\"); }";
        assert_eq!(run("crates/crypto/src/x.rs", leaky).len(), 1);
        let eq_leaks = "fn f(mac_key: &[u8]) { assert_eq!(mac_key, b\"x\"); }";
        assert_eq!(run("crates/crypto/src/x.rs", eq_leaks).len(), 1);
    }

    #[test]
    fn format_leak_exempt_in_tests() {
        let src = "#[cfg(test)]\nmod t { fn f(secret: u32) { format!(\"{secret}\"); } }";
        assert!(run("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn tag_comparison_fires_outside_verify_tag() {
        let src = "fn check(tag: &[u8], other: &[u8]) -> bool { tag == other }\n\
                   fn verify_tag(tag: &[u8], other: &[u8]) -> bool { tag == other }";
        let diags = run("crates/crypto/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("ct_eq"));
    }

    #[test]
    fn digest_field_comparison_fires() {
        let src = "fn f(a: &Q, b: &Q) -> bool { a.quote_digest != b.digest }";
        let diags = run("crates/tpm/src/x.rs", src);
        assert!(diags.iter().any(|d| d.rule == "const_time"));
    }

    #[test]
    fn benign_comparison_silent() {
        let src = "fn f(n: usize, len: usize) -> bool { n == len }";
        assert!(run("crates/crypto/src/x.rs", src).is_empty());
    }

    #[test]
    fn secret_branch_and_index_in_hot_path() {
        let src = "fn pow(exp: u64) { if exp & 1 == 1 { } let t = TABLE[exp as usize]; }";
        let diags = run("crates/crypto/src/montgomery.rs", src);
        let branch = diags
            .iter()
            .filter(|d| d.message.contains("branch"))
            .count();
        let index = diags.iter().filter(|d| d.message.contains("index")).count();
        assert_eq!((branch, index), (1, 1), "{diags:?}");
    }

    #[test]
    fn hot_path_checks_do_not_apply_elsewhere() {
        let src = "fn pow(exp: u64) { if exp & 1 == 1 { } }";
        assert!(run("crates/crypto/src/sha256.rs", src).is_empty());
    }

    #[test]
    fn unwrap_fires_only_outside_tests_and_scope() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n\
                   #[cfg(test)]\nmod t { fn g(x: Option<u8>) { x.unwrap(); } }";
        let in_scope = run("crates/core/src/x.rs", src);
        assert_eq!(in_scope.len(), 1);
        // `hypervisor` is outside the panic_freedom crate scope.
        assert!(run("crates/hypervisor/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_file_scope_covers_the_timer_wheel() {
        // The event engine runs on the hypervisor crate's wheel; that one
        // file is enrolled in panic_freedom (with the strict index
        // policy) even though its crate is not.
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(run("crates/hypervisor/src/wheel.rs", src).len(), 1);
        let idx = "fn f(v: &[u8], i: usize) -> u8 { v[i] }";
        assert_eq!(run("crates/hypervisor/src/wheel.rs", idx).len(), 1);
        assert!(run("crates/hypervisor/src/other.rs", idx).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_macro_fires() {
        let src = "fn f() { panic!(\"boom\"); }";
        let diags = run("crates/tpm/src/x.rs", src);
        assert!(diags.iter().any(|d| d.message.contains("`panic!`")));
    }

    #[test]
    fn strict_index_policy_flags_dynamic_index() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] }";
        let diags = run("crates/net/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("slice index"));
    }

    #[test]
    fn strict_index_policy_allows_literal_and_types() {
        let src = "fn f(v: &[u8; 4]) -> u8 { let a: [u8; 2] = [0; 2]; let _ = a; v[0] }";
        assert!(run("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn kernel_index_policy_allows_loop_counters() {
        let src = "fn f(v: &[u8; 64]) -> u8 { let mut s = 0; for i in 0..64 { s ^= v[i]; } s }";
        assert!(run("crates/crypto/src/x.rs", src).is_empty());
    }

    #[test]
    fn suppression_comment_silences_finding() {
        let src = "// constructor cannot fail: #[allow(monatt::panic_freedom)]\n\
                   fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
