//! A lightweight item-level parser over the token stream.
//!
//! The workspace rules added in lint v2 (`determinism`, `alloc_freedom`,
//! `secret_taint`) reason about *functions* — their names, parameter
//! lists, attributes, and body token ranges — not just raw tokens. This
//! module recovers exactly that structure from the [`crate::lexer`]
//! output without a full Rust grammar: it recognizes `fn` items (free
//! functions, methods inside `impl` blocks, and nested functions),
//! splits parameter lists at top-level commas, and records which
//! attributes (`#[cold]`, `#[inline]`, `#[cfg(test)]`, …) annotate each
//! function.
//!
//! Known limits (see DESIGN.md §14): generic arguments are skipped by
//! angle-bracket counting (with `>>` split as two closers), parameter
//! *patterns* are reduced to their last identifier (`mut buf: &mut Vec`
//! → `buf`; destructuring patterns keep only the final binding), and
//! closures are not items — their tokens belong to the enclosing `fn`.

use crate::context::match_delim;
use crate::lexer::{Token, TokenKind};

/// One `fn` item recovered from a file's token stream.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function name (raw-identifier prefix `r#` stripped).
    pub name: String,
    /// Parameter binding names in declaration order. A receiver of any
    /// form (`self`, `&self`, `&mut self`, `mut self`) appears as
    /// `"self"` in position 0.
    pub params: Vec<String>,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range of the body, exclusive of the braces; `None` for
    /// bodiless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Attribute texts attached to this function, each rendered as the
    /// space-joined tokens inside `#[...]` (e.g. `"cold"`,
    /// `"cfg ( test )"`).
    pub attrs: Vec<String>,
    /// The implementing type, when the fn sits directly inside an
    /// `impl` block (`None` for free and nested functions).
    pub impl_type: Option<String>,
}

impl FnItem {
    /// True if any attribute's first token is `name` (`has_attr("cold")`
    /// matches `#[cold]` but not `#[cfg(cold)]`).
    pub fn has_attr(&self, name: &str) -> bool {
        self.attrs
            .iter()
            .any(|a| a.split_whitespace().next() == Some(name))
    }
}

/// Strips a raw-identifier prefix.
fn ident_name(text: &str) -> String {
    text.strip_prefix("r#").unwrap_or(text).to_string()
}

/// Parses every `fn` item in `tokens`. Nested functions are returned as
/// their own items; their bodies are subranges of the enclosing body.
pub fn parse_fns(tokens: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    // Stack of (impl type name, body close index) for impl-type
    // attribution of methods.
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    // Attributes seen since the last item keyword, waiting to attach.
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        impl_stack.retain(|(_, close)| i <= *close);
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            let close = match_delim(tokens, i + 1);
            let text = tokens[i + 2..close]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            pending_attrs.push(text);
            i = close + 1;
            continue;
        }
        if t.is_ident("impl") {
            if let Some(info) = parse_impl_header(tokens, i) {
                impl_stack.push(info);
                pending_attrs.clear();
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            let (item, next) = parse_fn(tokens, i, std::mem::take(&mut pending_attrs));
            let resume = item.as_ref().map_or(next, |f| {
                // Descend into the body so nested fns are found too.
                f.body.map_or(next, |(start, _)| start)
            });
            if let Some(mut f) = item {
                f.impl_type = impl_stack.last().map(|(name, _)| name.clone());
                out.push(f);
            }
            i = resume.max(i + 1);
            continue;
        }
        // Any other token at item position consumes the pending attrs
        // (they belong to a struct/use/const we do not track).
        if t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "struct" | "enum" | "union" | "trait" | "mod" | "use" | "const" | "static" | "type"
            )
        {
            pending_attrs.clear();
        }
        i += 1;
    }
    out
}

/// Parses the header of the `impl` at `start`, returning the
/// implementing type name and the body's close-brace index.
fn parse_impl_header(tokens: &[Token], start: usize) -> Option<(String, usize)> {
    let mut j = start + 1;
    let mut angle = 0i32;
    let mut saw_for = false;
    let mut before: Option<String> = None;
    let mut after: Option<String> = None;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "{" if angle <= 0 => {
                    let close = match_delim(tokens, j);
                    let name = if saw_for { after } else { before };
                    return name.map(|n| (n, close));
                }
                ";" => return None,
                "(" | "[" => j = match_delim(tokens, j),
                _ => {}
            },
            TokenKind::Ident if t.text == "for" && angle <= 0 => saw_for = true,
            TokenKind::Ident if angle <= 0 && t.text != "where" => {
                if saw_for {
                    after.get_or_insert_with(|| ident_name(&t.text));
                } else {
                    before = Some(ident_name(&t.text));
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses one `fn` starting at the `fn` keyword index. Returns the item
/// (if a name was found) and the index to resume scanning from when the
/// caller does not descend into the body.
fn parse_fn(tokens: &[Token], fn_tok: usize, attrs: Vec<String>) -> (Option<FnItem>, usize) {
    let name_tok = match tokens.get(fn_tok + 1) {
        Some(t) if t.kind == TokenKind::Ident => t,
        _ => return (None, fn_tok + 1),
    };
    let name = ident_name(&name_tok.text);
    let mut j = fn_tok + 2;
    // Skip generic parameters, counting `>>` as two closers (the
    // shift-vs-generic ambiguity: inside a generic list it always
    // closes two levels).
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut angle = 0i32;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "<" if tokens[j].kind == TokenKind::Punct => angle += 1,
                ">" if tokens[j].kind == TokenKind::Punct => angle -= 1,
                ">>" if tokens[j].kind == TokenKind::Punct => angle -= 2,
                _ => {}
            }
            j += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("(")) {
        return (None, j);
    }
    let params_close = match_delim(tokens, j);
    let params = parse_params(&tokens[j + 1..params_close]);
    // Find the body `{` (skipping the return type and where clause) or a
    // terminating `;`.
    let mut k = params_close + 1;
    let mut body = None;
    let mut angle = 0i32;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "->" => {}
                "{" if angle <= 0 => {
                    let close = match_delim(tokens, k);
                    body = Some((k + 1, close));
                    k = close;
                    break;
                }
                ";" if angle <= 0 => break,
                "(" | "[" => k = match_delim(tokens, k),
                _ => {}
            }
        }
        k += 1;
    }
    (
        Some(FnItem {
            name,
            params,
            fn_tok,
            body,
            line: tokens[fn_tok].line,
            attrs,
            impl_type: None,
        }),
        k + 1,
    )
}

/// Extracts binding names from a parameter list's tokens (the slice
/// between the parentheses). Each top-level comma separates one
/// parameter; the binding is the last identifier before the `:` (or the
/// receiver `self`).
fn parse_params(tokens: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut current: Vec<&Token> = Vec::new();
    let flush = |current: &mut Vec<&Token>, out: &mut Vec<String>| {
        if current.is_empty() {
            return;
        }
        // Pattern side: tokens up to the top-level `:` (receivers have
        // no colon). `self` anywhere in the pattern side is a receiver.
        let colon = current
            .iter()
            .position(|t| t.is_punct(":"))
            .unwrap_or(current.len());
        let pattern = &current[..colon];
        if pattern.iter().any(|t| t.is_ident("self")) {
            out.push("self".to_string());
        } else if let Some(t) = pattern
            .iter()
            .rev()
            .find(|t| t.kind == TokenKind::Ident && t.text != "mut" && t.text != "ref")
        {
            out.push(ident_name(&t.text));
        } else {
            out.push(String::new());
        }
        current.clear();
    };
    for t in tokens {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "," if depth == 0 && angle <= 0 => {
                    flush(&mut current, &mut out);
                    continue;
                }
                _ => {}
            }
        }
        current.push(t);
    }
    flush(&mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnItem> {
        parse_fns(&lex(src).tokens)
    }

    #[test]
    fn free_fn_with_params() {
        let items = fns("fn seal(buf: &mut Vec<u8>, tag: [u8; 16]) -> bool { true }");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "seal");
        assert_eq!(items[0].params, ["buf", "tag"]);
        assert!(items[0].body.is_some());
        assert!(items[0].impl_type.is_none());
    }

    #[test]
    fn method_receiver_and_impl_type() {
        let items = fns("impl SecureChannel { fn open(&mut self, record: &[u8]) {} }");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].params, ["self", "record"]);
        assert_eq!(items[0].impl_type.as_deref(), Some("SecureChannel"));
    }

    #[test]
    fn trait_impl_attributes_and_bodiless() {
        let src = "impl Drop for SealKey {\n#[cold]\n#[inline(never)]\nfn drop(&mut self) {}\n}\ntrait T { fn decl(&self); }";
        let items = fns(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].impl_type.as_deref(), Some("SealKey"));
        assert!(items[0].has_attr("cold"));
        assert!(items[0].has_attr("inline"));
        assert!(!items[0].has_attr("cfg"));
        assert_eq!(items[1].name, "decl");
        assert!(items[1].body.is_none());
    }

    #[test]
    fn nested_fns_are_found() {
        let items = fns("fn outer() { fn inner(x: u8) {} inner(3); }");
        let names: Vec<_> = items.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn generic_fn_with_shift_close() {
        // `Vec<Vec<u8>>` ends with `>>`, which must close two angle
        // levels for the parameter list to be found.
        let items = fns("fn f<T: Into<Vec<u8>>>(rows: Vec<Vec<u8>>, n: usize) -> usize { n }");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].params, ["rows", "n"]);
    }

    #[test]
    fn destructuring_and_mut_patterns() {
        let items = fns("fn f(mut count: u64, (a, b): (u8, u8), [x, y]: [u8; 2]) {}");
        assert_eq!(items[0].params, ["count", "b", "y"]);
    }

    #[test]
    fn where_clause_and_return_impl() {
        let items =
            fns("fn f<T>(t: T) -> impl Iterator<Item = u8> where T: Clone { [1u8].into_iter() }");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].params, ["t"]);
        assert!(items[0].body.is_some());
    }

    #[test]
    fn raw_identifier_fn_name() {
        let items = fns("fn r#type(r#match: u8) {}");
        assert_eq!(items[0].name, "type");
        assert_eq!(items[0].params, ["match"]);
    }

    #[test]
    fn impl_for_attribution_resets_after_block() {
        let items = fns("impl A { fn m(&self) {} }\nfn free() {}");
        assert_eq!(items[0].impl_type.as_deref(), Some("A"));
        assert!(items[1].impl_type.is_none());
    }
}
