//! The `monatt-lint` command-line front end.

use std::path::PathBuf;
use std::process::ExitCode;

use monatt_lint::engine::{scan, Allowlist};
use monatt_lint::{diag, find_workspace_root, rules, Config, ALLOWLIST_FILE};

const USAGE: &str = "\
monatt-lint: workspace static analysis (secret hygiene, constant time,
panic freedom, determinism, alloc freedom, secret taint)

USAGE:
    monatt-lint [OPTIONS]

OPTIONS:
    --deny              CI mode: exit 1 on findings over the allowlist
                        budget or on stale allowlist entries
    --json              Emit the report as JSON instead of text
    --explain <RULE>    Print long-form documentation for one rule and exit
    --root <PATH>       Workspace root (default: nearest ancestor with a
                        [workspace] Cargo.toml)
    --allowlist <PATH>  Ratchet file (default: <root>/monatt-lint.allow)
    --secret-type <T>   Add a type to the secret list (repeatable)
    --zeroize-type <T>  Add a type to the must-zeroize list (repeatable)
    --secret-ident <I>  Add an identifier to the format-leak list (repeatable)
    --ct-part <P>       Add a snake_case part to the tag/digest comparison
                        trigger list (repeatable)
    --hot-path <FILE>   Add a workspace-relative file to the crypto
                        hot-path set (repeatable)
    --panic-crate <C>   Add a crate to the panic_freedom scope (repeatable)
    --panic-file <FILE> Add a workspace-relative file to the panic_freedom
                        scope (repeatable)
    --det-crate <C>     Add a crate to the determinism scope (repeatable)
    --entropy-fn <F>    Add a function exempt from the ambient-randomness
                        ban (the sanctioned entropy boundary; repeatable)
    --warm-file <FILE>  Add a workspace-relative file to the alloc_freedom
                        warm-path set (repeatable)
    --cold-fn <F>       Add a function name treated as cold/setup by
                        alloc_freedom (repeatable)
    --taint-sink <F>    Add a serialization sink function for secret_taint
                        (repeatable)
    --skip-crate <C>    Exclude a crate directory from scanning (repeatable)
    -h, --help          Show this help

EXIT CODES:
    0  clean (or findings within budget without --deny)
    1  --deny failure: over-budget findings or stale allowlist entries
    2  usage or I/O error";

struct Options {
    deny: bool,
    json: bool,
    explain: Option<String>,
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    cfg: Config,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        deny: false,
        json: false,
        explain: None,
        root: None,
        allowlist: None,
        cfg: Config::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--explain" => opts.explain = Some(value("--explain")?),
            "--root" => opts.root = Some(PathBuf::from(value("--root")?)),
            "--allowlist" => opts.allowlist = Some(PathBuf::from(value("--allowlist")?)),
            "--secret-type" => opts.cfg.secret_types.push(value("--secret-type")?),
            "--zeroize-type" => opts.cfg.zeroize_types.push(value("--zeroize-type")?),
            "--secret-ident" => opts.cfg.secret_idents.push(value("--secret-ident")?),
            "--ct-part" => opts.cfg.ct_ident_parts.push(value("--ct-part")?),
            "--hot-path" => opts.cfg.hot_path_files.push(value("--hot-path")?),
            "--panic-crate" => opts.cfg.panic_crates.push(value("--panic-crate")?),
            "--panic-file" => opts.cfg.panic_files.push(value("--panic-file")?),
            "--det-crate" => opts.cfg.det_crates.push(value("--det-crate")?),
            "--entropy-fn" => opts.cfg.entropy_fns.push(value("--entropy-fn")?),
            "--warm-file" => opts.cfg.warm_path_files.push(value("--warm-file")?),
            "--cold-fn" => opts.cfg.alloc_cold_fns.push(value("--cold-fn")?),
            "--taint-sink" => opts.cfg.taint_sink_fns.push(value("--taint-sink")?),
            "--skip-crate" => opts.cfg.skip_crates.push(value("--skip-crate")?),
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }
    Ok(Some(opts))
}

fn run(opts: Options) -> Result<bool, String> {
    if let Some(rule) = &opts.explain {
        let text = rules::explain(rule).ok_or_else(|| {
            format!(
                "unknown rule `{rule}`; known rules: {}",
                rules::RULE_NAMES.join(", ")
            )
        })?;
        println!("{text}");
        return Ok(true);
    }
    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no [workspace] Cargo.toml found above the current directory")?
        }
    };
    let allow_path = opts.allowlist.unwrap_or_else(|| root.join(ALLOWLIST_FILE));
    let allow = Allowlist::load(&allow_path)?;
    let report =
        scan(&root, &opts.cfg, &allow).map_err(|e| format!("scanning {}: {e}", root.display()))?;

    if opts.json {
        let violations: Vec<String> = report
            .violations
            .iter()
            .chain(&report.stale)
            .map(|v| format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        println!(
            "{{\"findings\":{},\"budgeted\":{},\"violations\":[{}],\"files\":{}}}",
            diag::to_json_array(&report.findings),
            report.budgeted,
            violations.join(","),
            report.files
        );
    } else {
        for d in &report.findings {
            println!("{d}");
        }
        if !report.findings.is_empty() {
            println!();
        }
        println!(
            "monatt-lint: {} file(s), {} finding(s) ({} within allowlist budget)",
            report.files,
            report.findings.len(),
            report.budgeted
        );
        for v in &report.violations {
            println!("DENY: {v}");
        }
        for s in &report.stale {
            println!("DENY: {s}");
        }
    }
    Ok(!(opts.deny && report.deny_failure()))
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(None) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Some(opts)) => match run(opts) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(1),
            Err(e) => {
                eprintln!("monatt-lint: error: {e}");
                ExitCode::from(2)
            }
        },
        Err(e) => {
            eprintln!("monatt-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
