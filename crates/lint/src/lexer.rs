//! A hand-rolled Rust lexer.
//!
//! The build container is offline, so the linter cannot lean on `syn` or
//! `rustc` internals; instead this module tokenizes Rust source directly.
//! It handles the features a token-level rule engine must not trip over:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings, raw strings and raw byte
//!   strings with arbitrary `#` fencing;
//! * the `'a` lifetime vs `'a'` char-literal ambiguity;
//! * raw identifiers (`r#match`);
//! * multi-character operators (`==`, `!=`, `..`, `::`, …) emitted as
//!   single tokens so rules can match them directly.
//!
//! Comments are not discarded: their text and position are collected so the
//! engine can honor inline `#[allow(monatt::<rule>)]` suppression comments.

/// The kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are not distinguished here).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A character literal, including byte chars (`b'x'`).
    Char,
    /// A string literal of any flavor (plain, byte, raw, raw byte).
    Str,
    /// A numeric literal.
    Num,
    /// Punctuation; multi-character operators are one token.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text. For strings this is the raw source slice including
    /// quotes, so rules never mistake literal content for code.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Token {
    /// True if this token is the identifier `s`. Raw identifiers match
    /// their plain spelling: `r#type` is the identifier `type`, so a rule
    /// matching on a name cannot be dodged with the `r#` prefix.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && (self.text == s || self.text.strip_prefix("r#") == Some(s))
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// A comment with its position, kept for suppression scanning.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text including the delimiters.
    pub text: String,
    /// 1-based line on which the comment starts.
    pub line: u32,
}

/// The output of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so greedy matching works.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "=>", "->", "..", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count characters, not continuation bytes.
            self.col += 1;
        }
        Some(b)
    }

    fn slice(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. The lexer never fails: malformed
/// input degrades to punctuation tokens, which at worst produces an extra
/// diagnostic rather than a crash.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor::new(src);
    let mut out = Lexed::default();
    // Heuristic nesting depth of generic argument lists, used to split
    // `>>` into two closing `>` inside types (`Vec<Vec<u8>>`) while
    // keeping it a single shift token in expressions (`x >> 2`). A `<`
    // opens a list only after an identifier, `::` or `>`; statement
    // boundaries reset the count so stray comparisons cannot leak depth
    // across statements.
    let mut angle_depth = 0usize;
    while let Some(b) = c.peek(0) {
        let (line, col, start) = (c.line, c.col, c.pos);
        match b {
            b if b.is_ascii_whitespace() => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => {
                while let Some(n) = c.peek(0) {
                    if n == b'\n' {
                        break;
                    }
                    c.bump();
                }
                let mut text = c.slice(start);
                if text.ends_with('\r') {
                    // CRLF sources: the `\r` belongs to the line ending,
                    // not the comment, and would break suppression
                    // comparisons.
                    text.pop();
                }
                out.comments.push(Comment { text, line });
            }
            b'/' if c.peek(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(0), c.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text: c.slice(start),
                    line,
                });
            }
            b'r' if matches!(c.peek(1), Some(b'"') | Some(b'#')) => {
                if !lex_raw_string(&mut c, 1) {
                    // `r#ident` raw identifier (or stray `r#`).
                    lex_ident(&mut c);
                }
                out.tokens
                    .push(token_from(&c, start, line, col, kind_of_r(&c, start)));
            }
            b'b' if c.peek(1) == Some(b'\'') => {
                c.bump(); // b
                lex_char(&mut c);
                out.tokens
                    .push(token_from(&c, start, line, col, TokenKind::Char));
            }
            b'b' if c.peek(1) == Some(b'"') => {
                c.bump(); // b
                lex_plain_string(&mut c);
                out.tokens
                    .push(token_from(&c, start, line, col, TokenKind::Str));
            }
            b'b' if c.peek(1) == Some(b'r') && matches!(c.peek(2), Some(b'"') | Some(b'#')) => {
                c.bump(); // b
                if !lex_raw_string(&mut c, 1) {
                    lex_ident(&mut c);
                }
                out.tokens
                    .push(token_from(&c, start, line, col, kind_of_r(&c, start)));
            }
            b'"' => {
                lex_plain_string(&mut c);
                out.tokens
                    .push(token_from(&c, start, line, col, TokenKind::Str));
            }
            b'\'' => {
                // `'a'` is a char literal; `'a` (not followed by a closing
                // quote) is a lifetime; `'\…'` is always a char literal.
                let is_char = match c.peek(1) {
                    Some(b'\\') => true,
                    Some(n) if is_ident_start(n) || n.is_ascii_digit() => {
                        // Lifetime unless the very next char closes a quote.
                        // Multi-char contents (`'ab'` is invalid Rust) are
                        // treated as lifetimes, which is safe for rules.
                        c.peek(2) == Some(b'\'')
                    }
                    Some(_) => true, // e.g. '(' — a char literal
                    None => false,
                };
                if is_char {
                    lex_char(&mut c);
                    out.tokens
                        .push(token_from(&c, start, line, col, TokenKind::Char));
                } else {
                    c.bump(); // '
                    while let Some(n) = c.peek(0) {
                        if !is_ident_continue(n) {
                            break;
                        }
                        c.bump();
                    }
                    out.tokens
                        .push(token_from(&c, start, line, col, TokenKind::Lifetime));
                }
            }
            b if is_ident_start(b) => {
                lex_ident(&mut c);
                out.tokens
                    .push(token_from(&c, start, line, col, TokenKind::Ident));
            }
            b if b.is_ascii_digit() => {
                lex_number(&mut c);
                out.tokens
                    .push(token_from(&c, start, line, col, TokenKind::Num));
            }
            _ => {
                // Inside a generic argument list `>>` is two closers,
                // not a shift: emit one `>` and let the loop re-lex the
                // second (which may still pair as `>=` in `>>=`-free
                // positions, exactly as rustc's parser splits it).
                if b == b'>' && c.peek(1) == Some(b'>') && angle_depth >= 2 {
                    c.bump();
                    angle_depth -= 1;
                    out.tokens
                        .push(token_from(&c, start, line, col, TokenKind::Punct));
                    continue;
                }
                let generic_head = out.tokens.last().is_some_and(|t| {
                    t.kind == TokenKind::Ident || t.is_punct("::") || t.is_punct(">")
                });
                let mut matched = false;
                for op in OPERATORS {
                    let bytes = op.as_bytes();
                    if c.src[c.pos..].starts_with(bytes) {
                        for _ in 0..bytes.len() {
                            c.bump();
                        }
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    c.bump();
                }
                let tok = token_from(&c, start, line, col, TokenKind::Punct);
                match tok.text.as_str() {
                    "<" if generic_head => angle_depth += 1,
                    ">" => angle_depth = angle_depth.saturating_sub(1),
                    ";" | "{" | "}" => angle_depth = 0,
                    _ => {}
                }
                out.tokens.push(tok);
            }
        }
    }
    out
}

fn token_from(c: &Cursor<'_>, start: usize, line: u32, col: u32, kind: TokenKind) -> Token {
    Token {
        kind,
        text: c.slice(start),
        line,
        col,
    }
}

/// After a region starting at `r`/`br` was consumed, decide whether it was
/// a raw string or fell back to an identifier.
fn kind_of_r(c: &Cursor<'_>, start: usize) -> TokenKind {
    if c.src[start..c.pos].contains(&b'"') {
        TokenKind::Str
    } else {
        TokenKind::Ident
    }
}

fn lex_ident(c: &mut Cursor<'_>) {
    // Allow a leading `r#` (raw identifier).
    if c.peek(0) == Some(b'r') && c.peek(1) == Some(b'#') {
        c.bump();
        c.bump();
    }
    while let Some(n) = c.peek(0) {
        if !is_ident_continue(n) {
            break;
        }
        c.bump();
    }
}

fn lex_number(c: &mut Cursor<'_>) {
    // Digits, underscores, radix prefixes and type suffixes. A `.` is part
    // of the number only when followed by a digit (so `0..8` lexes as
    // `0`, `..`, `8`).
    while let Some(n) = c.peek(0) {
        let in_number = n.is_ascii_alphanumeric()
            || n == b'_'
            || (n == b'.' && c.peek(1).is_some_and(|d| d.is_ascii_digit()));
        if !in_number {
            break;
        }
        c.bump();
    }
}

fn lex_plain_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(n) = c.peek(0) {
        match n {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'"' => {
                c.bump();
                break;
            }
            _ => {
                c.bump();
            }
        }
    }
}

fn lex_char(c: &mut Cursor<'_>) {
    c.bump(); // opening '
    while let Some(n) = c.peek(0) {
        match n {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'\'' => {
                c.bump();
                break;
            }
            _ => {
                c.bump();
            }
        }
    }
}

/// Consumes `r"…"`, `r#"…"#`, etc. starting at the `r`. Returns false if
/// this is not actually a raw string (e.g. a raw identifier `r#match`), in
/// which case nothing was consumed.
fn lex_raw_string(c: &mut Cursor<'_>, _min_hashes: usize) -> bool {
    // Count hashes after the r without consuming yet.
    let mut hashes = 0usize;
    while c.peek(1 + hashes) == Some(b'#') {
        hashes += 1;
    }
    if c.peek(1 + hashes) != Some(b'"') {
        return false;
    }
    c.bump(); // r
    for _ in 0..hashes {
        c.bump();
    }
    c.bump(); // opening quote
    loop {
        match c.peek(0) {
            None => return true,
            Some(b'"') => {
                // Need `hashes` following '#' to close.
                let mut ok = true;
                for i in 0..hashes {
                    if c.peek(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                c.bump();
                if ok {
                    for _ in 0..hashes {
                        c.bump();
                    }
                    return true;
                }
            }
            Some(_) => {
                c.bump();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_hide_code_like_content() {
        let l = lex(r#"let s = "x.unwrap() // not a comment"; y.unwrap();"#);
        assert_eq!(l.comments.len(), 0);
        let unwraps: Vec<_> = l.tokens.iter().filter(|t| t.is_ident("unwrap")).collect();
        assert_eq!(unwraps.len(), 1, "only the real unwrap outside the string");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r##"let s = r#"contains "quotes" and .unwrap()"#; a"##);
        assert!(l.tokens.iter().any(|t| t.is_ident("a")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let l = lex(r#"f(b"bytes", br"raw", b'x');"#);
        let kinds: Vec<_> = l.tokens.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokenKind::Str));
        assert!(kinds.contains(&TokenKind::Char));
        assert!(!l.tokens.iter().any(|t| t.is_ident("bytes")));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ x"), vec!["x"]);
        assert!(l.tokens.iter().any(|t| t.is_ident("code")));
    }

    #[test]
    fn line_comments_collected_with_lines() {
        let l = lex("let a = 1; // trailing\n// own line\nlet b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn multi_char_operators_single_tokens() {
        let l = lex("a == b != c; x..y; p::q; m <= n;");
        let puncts: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"!="));
        assert!(puncts.contains(&".."));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"<="));
    }

    #[test]
    fn range_after_int_literal() {
        let l = lex("&x[0..8]");
        let texts: Vec<_> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["&", "x", "[", "0", "..", "8", "]"]);
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "r#match"]);
    }

    #[test]
    fn raw_identifier_matches_plain_spelling() {
        let l = lex("let r#type = r#collect; let collect = 1;");
        let hits: Vec<_> = l.tokens.iter().filter(|t| t.is_ident("collect")).collect();
        assert_eq!(hits.len(), 2, "r#collect and collect both match");
        assert!(l.tokens.iter().any(|t| t.is_ident("type")));
        // The reverse does not hold: plain `collect` is not `r#collect`,
        // so only the raw spelling itself matches that query.
        let raw_hits = l.tokens.iter().filter(|t| t.is_ident("r#collect")).count();
        assert_eq!(raw_hits, 1);
    }

    #[test]
    fn shift_right_stays_one_token() {
        let l = lex("let y = x >> 2; a >>= 1;");
        let puncts: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&">>"));
        assert!(puncts.contains(&">>="));
        assert!(!puncts.contains(&">"), "no spurious splits: {puncts:?}");
    }

    #[test]
    fn double_generic_close_splits() {
        let l = lex("let v: Vec<Vec<u8>> = Vec::new();");
        let texts: Vec<_> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        let closes = texts.iter().filter(|t| **t == ">").count();
        assert_eq!(closes, 2, "Vec<Vec<u8>> closes with two `>`: {texts:?}");
        assert!(!texts.contains(&">>"));
    }

    #[test]
    fn triple_generic_close_splits() {
        let l = lex("x::<Arc<Mutex<Vec<u8>>>>(0)");
        let closes = l.tokens.iter().filter(|t| t.is_punct(">")).count();
        assert_eq!(closes, 4);
    }

    #[test]
    fn comparison_does_not_leak_angle_depth() {
        // Two statement-level comparisons must not accumulate depth and
        // split a genuine shift later on.
        let l = lex("if a < b { f(); } if c < d { g(); } let y = x >> 2;");
        assert!(l.tokens.iter().any(|t| t.is_punct(">>")));
        assert!(!l.tokens.iter().any(|t| t.is_punct(">")));
    }

    #[test]
    fn crlf_source_lexes_like_lf() {
        let lf = "let a = 1; // note\nlet b = 'x';\n";
        let crlf = lf.replace('\n', "\r\n");
        let (a, b) = (lex(lf), lex(crlf.as_str()));
        let texts = |l: &Lexed| {
            l.tokens
                .iter()
                .map(|t| (t.kind, t.text.clone(), t.line))
                .collect::<Vec<_>>()
        };
        assert_eq!(texts(&a), texts(&b));
        assert_eq!(a.comments[0].text, "// note");
        assert_eq!(b.comments[0].text, "// note", "no trailing \\r kept");
    }

    #[test]
    fn doc_comments_are_comments_not_tokens() {
        let l = lex("/// outer doc\n//! inner doc\nfn f() {}\n/** block doc */ g();");
        assert_eq!(l.comments.len(), 3);
        assert!(l.comments[0].text.starts_with("///"));
        assert!(l.comments[1].text.starts_with("//!"));
        assert!(l.comments[2].text.starts_with("/**"));
        assert_eq!(idents("/// doc\nx"), vec!["x"]);
    }

    #[test]
    fn char_literal_edge_cases() {
        // '_' is a char, '_ alone would be a reserved lifetime.
        let l = lex("let u = '_'; fn f<'_x>() {} let q = '\\''; let t = '\\u{41}';");
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 3, "'_', '\\'' and '\\u{{41}}' are chars");
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Lifetime));
    }

    #[test]
    fn positions_are_tracked() {
        let l = lex("ab\n  cd");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn float_and_range_disambiguation() {
        let l = lex("1.5 + x; 0..8");
        assert!(l.tokens.iter().any(|t| t.text == "1.5"));
        assert!(l.tokens.iter().any(|t| t.text == ".."));
    }
}
