//! `monatt-lint`: workspace-native static analysis for the CloudMonatt
//! reproduction.
//!
//! General-purpose lints cannot know that `SealKey` wraps key material,
//! that `verify_tag` is the *only* place a MAC may be compared, or that
//! `crates/net` parses adversarial bytes. This crate encodes those
//! workspace facts as three rules over a hand-rolled token stream:
//!
//! * **`secret_hygiene`** — secret-bearing types must not derive a leaking
//!   `Debug`, must carry a redacting manual impl, must zeroize in `Drop`,
//!   and secret identifiers must not reach format-like macros.
//! * **`const_time`** — `==`/`!=` on tag/MAC/digest material is a timing
//!   oracle (use `ct_eq`), and crypto hot paths must not branch or index
//!   on secret-derived values.
//! * **`panic_freedom`** — protocol crates (`core`, `net`, `crypto`,
//!   `tpm`) plus enrolled files in other crates (the `hypervisor`
//!   timer wheel backing the event engine) must not
//!   `unwrap`/`expect`/`panic!` or slice-index outside test code.
//!
//! Findings are suppressed inline with a comment containing
//! `#[allow(monatt::<rule>)]`, or budgeted per (rule, file) in the
//! committed `monatt-lint.allow` ratchet file, which `--deny` mode forbids
//! from growing *or* going stale.
//!
//! No dependencies: the lexer (`lexer`), per-file analysis (`context`),
//! rules (`rules`), and engine (`engine`) are self-contained, so the tool
//! builds in the offline container and runs in CI as a plain cargo binary.

pub mod config;
pub mod context;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use diag::Diagnostic;
pub use engine::{Allowlist, Report};

use std::path::{Path, PathBuf};

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Default name of the committed allowlist ratchet file.
pub const ALLOWLIST_FILE: &str = "monatt-lint.allow";
