//! `monatt-lint`: workspace-native static analysis for the CloudMonatt
//! reproduction.
//!
//! General-purpose lints cannot know that `SealKey` wraps key material,
//! that the event engine must replay bit-identically under a fixed seed,
//! or that the warm Msg1–Msg6 path must not allocate. This crate encodes
//! those workspace facts as six rules over a hand-rolled token stream
//! plus a lightweight item parser, workspace symbol table, and
//! intra-workspace call graph:
//!
//! * **`secret_hygiene`** — secret-bearing types must not derive a leaking
//!   `Debug`, must carry a redacting manual impl, must zeroize in `Drop`,
//!   and secret identifiers must not reach format-like macros.
//! * **`const_time`** — `==`/`!=` on tag/MAC/digest material is a timing
//!   oracle (use `ct_eq`), and crypto hot paths must not branch or index
//!   on secret-derived values.
//! * **`panic_freedom`** — protocol crates (`core`, `net`, `crypto`,
//!   `tpm`) plus enrolled files must not `unwrap`/`expect`/`panic!` or
//!   slice-index outside test code.
//! * **`determinism`** — sim-deterministic crates must not use
//!   `HashMap`/`HashSet` (iteration order leaks into event order), wall
//!   clocks, or ambient randomness outside the seeded DRBG.
//! * **`alloc_freedom`** — warm-path files must not call allocating APIs
//!   outside cold/setup functions; one level of call-graph propagation
//!   flags warm calls into allocating workspace helpers.
//! * **`secret_taint`** — a secret passed one call deep into a callee
//!   that formats, serializes, or variably compares the matching
//!   parameter is flagged even though the leak spans two functions.
//!
//! Findings are suppressed inline with a comment containing
//! `#[allow(monatt::<rule>)]`, or budgeted per (rule, file) in the
//! committed `monatt-lint.allow` ratchet file, which `--deny` mode forbids
//! from growing *or* going stale. `--explain <rule>` documents each rule.
//!
//! No dependencies: the lexer (`lexer`), item parser (`items`), symbol
//! table (`symbols`), call graph (`callgraph`), per-file analysis
//! (`context`), rules (`rules`), and engine (`engine`) are
//! self-contained, so the tool builds in the offline container and runs
//! in CI as a plain cargo binary.

pub mod callgraph;
pub mod config;
pub mod context;
pub mod diag;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod symbols;

pub use config::Config;
pub use diag::{Diagnostic, Note};
pub use engine::{Allowlist, Report};

use std::path::{Path, PathBuf};

use callgraph::CallGraph;
use context::FileContext;
use symbols::SymbolTable;

/// All scanned files plus the workspace-level indexes the
/// interprocedural rules need.
pub struct Workspace {
    /// Per-file contexts, sorted by workspace-relative path.
    pub files: Vec<FileContext>,
    /// Function name → definitions index over `files`.
    pub symbols: SymbolTable,
    /// Call sites of every function body in `files`.
    pub calls: CallGraph,
}

impl Workspace {
    /// Builds the symbol table and call graph over `files`.
    pub fn build(files: Vec<FileContext>) -> Self {
        let symbols = SymbolTable::build(&files);
        let calls = CallGraph::build(&files);
        Workspace {
            files,
            symbols,
            calls,
        }
    }

    /// A one-file workspace — the unit-test and fixture entry point.
    /// Intra-file calls still resolve, so single-file fixtures exercise
    /// the interprocedural rules too.
    pub fn single(path: &str, src: &str) -> Self {
        Self::build(vec![FileContext::new(path, src)])
    }
}

/// Lints one file in isolation (a single-file workspace) — the
/// convenience entry point for tests and fixtures.
pub fn lint_file(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let ws = Workspace::single(path, src);
    rules::run_all(&ws, 0, cfg)
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Default name of the committed allowlist ratchet file.
pub const ALLOWLIST_FILE: &str = "monatt-lint.allow";
