//! Per-file analysis context shared by all rules.
//!
//! Built once from the token stream, it answers the structural questions
//! rules keep asking: is this token inside `#[cfg(test)]` code, which
//! function encloses it, which `#[derive(...)]`s annotate which type, and
//! which lines carry inline suppression comments.

use crate::items::{parse_fns, FnItem};
use crate::lexer::{lex, Lexed, Token, TokenKind};

/// A `#[derive(...)]` (or other attribute) attached to an item.
#[derive(Clone, Debug)]
pub struct DeriveInfo {
    /// The annotated type name.
    pub type_name: String,
    /// Traits listed in the derive.
    pub derives: Vec<String>,
    /// Line of the derive attribute.
    pub line: u32,
}

/// An `impl [Trait for] Type` block.
#[derive(Clone, Debug)]
pub struct ImplInfo {
    /// Last path segment of the implemented trait, if a trait impl.
    pub trait_name: Option<String>,
    /// The implementing type's name (first identifier after `for`, or
    /// after `impl` for inherent impls).
    pub type_name: String,
    /// Token range of the impl body (indices into `tokens`, exclusive of
    /// the braces).
    pub body: (usize, usize),
    /// Line of the `impl` keyword.
    pub line: u32,
}

/// The analysis context for one file.
pub struct FileContext {
    /// Workspace-relative path (used in diagnostics and scoping).
    pub path: String,
    /// The crate directory name (`crypto` for `crates/crypto/src/...`),
    /// empty for the top-level `src/`.
    pub crate_name: String,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// For each token, whether it sits inside `#[cfg(test)]` / `#[test]`
    /// code.
    pub in_test: Vec<bool>,
    /// For each token, the name of the innermost enclosing `fn` (empty if
    /// none).
    pub enclosing_fn: Vec<String>,
    /// Derive attributes found in the file.
    pub derives: Vec<DeriveInfo>,
    /// Impl blocks found in the file.
    pub impls: Vec<ImplInfo>,
    /// Struct and enum names defined in this file.
    pub defined_types: Vec<(String, u32)>,
    /// Parsed `fn` items (free functions, methods, nested fns).
    pub items: Vec<FnItem>,
    /// Suppressions: (normalized rule name, comment line).
    pub suppressions: Vec<(String, u32)>,
    /// 1-based lines that carry at least one code token.
    token_lines: Vec<bool>,
}

/// Normalizes a rule name for matching: `-` becomes `_`.
pub fn normalize_rule(name: &str) -> String {
    name.replace('-', "_")
}

impl FileContext {
    /// Lexes and analyzes `src`.
    pub fn new(path: &str, src: &str) -> Self {
        let Lexed { tokens, comments } = lex(src);
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("")
            .to_string();
        let in_test = mark_test_regions(&tokens);
        let enclosing_fn = mark_fn_scopes(&tokens);
        let (derives, defined_types) = collect_derives_and_types(&tokens);
        let impls = collect_impls(&tokens);
        let items = parse_fns(&tokens);
        let mut suppressions = Vec::new();
        for c in &comments {
            // Doc comments are documentation, not directives: a rule
            // name *mentioned* in rustdoc must not suppress findings.
            if is_doc_comment(&c.text) {
                continue;
            }
            collect_suppressions(&c.text, c.line, &mut suppressions);
        }
        let max_line = tokens.last().map(|t| t.line as usize).unwrap_or(0);
        let mut token_lines = vec![false; max_line + 2];
        for t in &tokens {
            token_lines[t.line as usize] = true;
        }
        FileContext {
            path: path.to_string(),
            crate_name,
            tokens,
            in_test,
            enclosing_fn,
            derives,
            impls,
            defined_types,
            items,
            suppressions,
            token_lines,
        }
    }

    /// True if a finding of `rule` at `line` is suppressed by an inline
    /// comment: the comment sits on the same line, or on an earlier line
    /// with no code tokens in between (attribute-style placement above the
    /// offending line).
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        let rule = normalize_rule(rule);
        self.suppressions.iter().any(|(r, cl)| {
            if *r != rule || *cl > line {
                return false;
            }
            if *cl == line {
                return true;
            }
            // An earlier comment only reaches down if it stands alone on
            // its line (attribute style) and no code intervenes; a trailing
            // comment on a code line suppresses that line only.
            (*cl..line).all(|l| !self.token_lines.get(l as usize).copied().unwrap_or(false))
        })
    }

    /// The token index range of the body of the impl of `trait_name` for
    /// `type_name`, if present.
    pub fn impl_body(&self, trait_name: &str, type_name: &str) -> Option<(usize, usize)> {
        self.impls
            .iter()
            .find(|i| i.trait_name.as_deref() == Some(trait_name) && i.type_name == type_name)
            .map(|i| i.body)
    }
}

/// True for `///`, `//!`, `/**`, and `/*!` doc comments (but not the
/// plain `//`/`/*` forms, and not the `////`/`/***` non-doc forms).
fn is_doc_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////"))
        || text.starts_with("//!")
        || (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
        || text.starts_with("/*!")
}

/// Parses `#[allow(monatt::rule, monatt::other)]`-style text inside a
/// comment. Both `monatt::secret_hygiene` and `monatt::secret-hygiene`
/// spellings are accepted.
fn collect_suppressions(text: &str, line: u32, out: &mut Vec<(String, u32)>) {
    let mut rest = text;
    while let Some(idx) = rest.find("monatt::") {
        rest = &rest[idx + "monatt::".len()..];
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '-')
            .collect();
        if !name.is_empty() {
            out.push((normalize_rule(&name), line));
        }
    }
}

/// Finds the matching close delimiter for the open delimiter at `open`,
/// returning the index of the closer (or the last token if unbalanced).
pub fn match_delim(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Marks tokens inside `#[cfg(test)]` items and `#[test]` functions.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && i + 1 < tokens.len() && tokens[i + 1].is_punct("[") {
            let close = match_delim(tokens, i + 1);
            let attr = &tokens[i + 2..close];
            let is_test_attr = (attr.first().is_some_and(|t| t.is_ident("cfg"))
                && attr.iter().any(|t| t.is_ident("test")))
                || (attr.len() == 1 && attr[0].is_ident("test"));
            if is_test_attr {
                // Find the item body: the first `{` before any `;` at this
                // level (a `;` means e.g. `#[cfg(test)] mod t;`).
                let mut j = close + 1;
                let mut body_open = None;
                while j < tokens.len() {
                    let t = &tokens[j];
                    if t.is_punct("{") {
                        body_open = Some(j);
                        break;
                    }
                    if t.is_punct(";") {
                        break;
                    }
                    if t.is_punct("(") || t.is_punct("[") {
                        j = match_delim(tokens, j);
                    }
                    j += 1;
                }
                if let Some(open) = body_open {
                    let end = match_delim(tokens, open);
                    for flag in in_test.iter_mut().take(end + 1).skip(i) {
                        *flag = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Computes the innermost enclosing function name for every token.
fn mark_fn_scopes(tokens: &[Token]) -> Vec<String> {
    let mut out = vec![String::new(); tokens.len()];
    // Stack of (fn name, depth of its body's open brace).
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut pending: Option<String> = None;
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        if let Some((name, _)) = stack.last() {
            out[i] = name.clone();
        }
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    if let Some(name) = pending.take() {
                        stack.push((name, depth));
                        out[i] = stack.last().map(|(n, _)| n.clone()).unwrap_or_default();
                    }
                }
                "}" => {
                    if let Some((_, d)) = stack.last() {
                        if *d == depth {
                            stack.pop();
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                ";" => {
                    // Trait method declaration without a body.
                    pending = None;
                }
                _ => {}
            }
        } else if t.is_ident("fn") {
            if let Some(name_tok) = tokens.get(i + 1) {
                if name_tok.kind == TokenKind::Ident {
                    pending = Some(name_tok.text.clone());
                }
            }
        }
    }
    out
}

/// Collects `#[derive(...)]` attributes with the type they annotate, plus
/// all struct/enum definitions.
fn collect_derives_and_types(tokens: &[Token]) -> (Vec<DeriveInfo>, Vec<(String, u32)>) {
    let mut derives = Vec::new();
    let mut types = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if (t.is_ident("struct") || t.is_ident("enum"))
            && tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Ident)
        {
            // Skip `impl Trait for struct`-like false matches: `struct` is
            // a keyword, so any `struct Name` sequence is a definition.
            types.push((tokens[i + 1].text.clone(), t.line));
            i += 2;
            continue;
        }
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            let close = match_delim(tokens, i + 1);
            let attr = &tokens[i + 2..close];
            if attr.first().is_some_and(|a| a.is_ident("derive")) {
                let list: Vec<String> = attr
                    .iter()
                    .skip(1)
                    .filter(|a| a.kind == TokenKind::Ident)
                    .map(|a| a.text.clone())
                    .collect();
                // Scan forward past further attributes and visibility for
                // the annotated struct/enum name.
                let mut j = close + 1;
                while j < tokens.len() {
                    let n = &tokens[j];
                    if n.is_punct("#") && tokens.get(j + 1).is_some_and(|x| x.is_punct("[")) {
                        j = match_delim(tokens, j + 1) + 1;
                        continue;
                    }
                    if n.is_ident("pub") {
                        if tokens.get(j + 1).is_some_and(|x| x.is_punct("(")) {
                            j = match_delim(tokens, j + 1) + 1;
                        } else {
                            j += 1;
                        }
                        continue;
                    }
                    if n.is_ident("struct") || n.is_ident("enum") || n.is_ident("union") {
                        if let Some(name_tok) = tokens.get(j + 1) {
                            derives.push(DeriveInfo {
                                type_name: name_tok.text.clone(),
                                derives: list,
                                line: t.line,
                            });
                        }
                        break;
                    }
                    // Anything else (fn, impl, const…): derive does not
                    // apply to a type definition we track.
                    break;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    (derives, types)
}

/// Collects `impl` blocks with trait and type names.
fn collect_impls(tokens: &[Token]) -> Vec<ImplInfo> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        // Walk to the body `{`, collecting identifiers and noting `for`.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            match t.kind {
                TokenKind::Punct => match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "{" if angle <= 0 => {
                        body = Some((j + 1, match_delim(tokens, j)));
                        break;
                    }
                    ";" => break,
                    "(" | "[" => j = match_delim(tokens, j),
                    _ => {}
                },
                TokenKind::Ident if t.text == "for" && angle <= 0 => saw_for = true,
                TokenKind::Ident if t.text == "where" => {}
                TokenKind::Ident if angle <= 0 => {
                    if saw_for {
                        after_for.push(t.text.clone());
                    } else {
                        before_for.push(t.text.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(body) = body {
            let (trait_name, type_name) = if saw_for {
                (before_for.last().cloned(), after_for.first().cloned())
            } else {
                (None, before_for.first().cloned())
            };
            if let Some(type_name) = type_name {
                out.push(ImplInfo {
                    trait_name,
                    type_name,
                    body,
                    line,
                });
            }
            i = body.0;
            continue;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn b() { y.unwrap(); } }";
        let ctx = FileContext::new("crates/core/src/x.rs", src);
        let unwraps: Vec<usize> = ctx
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!ctx.in_test[unwraps[0]]);
        assert!(ctx.in_test[unwraps[1]]);
    }

    #[test]
    fn test_attr_fn_marked() {
        let src = "#[test]\nfn works() { assert!(true); }\nfn not_test() {}";
        let ctx = FileContext::new("crates/core/src/x.rs", src);
        let assert_idx = ctx
            .tokens
            .iter()
            .position(|t| t.is_ident("assert"))
            .unwrap();
        assert!(ctx.in_test[assert_idx]);
        let nt = ctx
            .tokens
            .iter()
            .position(|t| t.is_ident("not_test"))
            .unwrap();
        assert!(!ctx.in_test[nt]);
    }

    #[test]
    fn enclosing_fn_names() {
        let src = "fn outer() { let c = |x: u32| { inner_marker; }; outer_marker; }";
        let ctx = FileContext::new("crates/core/src/x.rs", src);
        let im = ctx
            .tokens
            .iter()
            .position(|t| t.is_ident("inner_marker"))
            .unwrap();
        let om = ctx
            .tokens
            .iter()
            .position(|t| t.is_ident("outer_marker"))
            .unwrap();
        assert_eq!(ctx.enclosing_fn[im], "outer");
        assert_eq!(ctx.enclosing_fn[om], "outer");
    }

    #[test]
    fn derive_attribution() {
        let src = "#[derive(Clone, Debug)]\n#[non_exhaustive]\npub struct SealKey { k: u8 }";
        let ctx = FileContext::new("crates/crypto/src/x.rs", src);
        assert_eq!(ctx.derives.len(), 1);
        assert_eq!(ctx.derives[0].type_name, "SealKey");
        assert!(ctx.derives[0].derives.iter().any(|d| d == "Debug"));
        assert_eq!(ctx.defined_types.len(), 1);
    }

    #[test]
    fn impl_collection() {
        let src = "impl std::fmt::Debug for SealKey { fn fmt(&self) {} }\nimpl SealKey { fn new() {} }\nimpl Drop for SealKey { fn drop(&mut self) { zeroize(); } }";
        let ctx = FileContext::new("crates/crypto/src/x.rs", src);
        assert!(ctx.impl_body("Debug", "SealKey").is_some());
        assert!(ctx.impl_body("Drop", "SealKey").is_some());
        let inherent = ctx
            .impls
            .iter()
            .find(|i| i.trait_name.is_none())
            .expect("inherent impl");
        assert_eq!(inherent.type_name, "SealKey");
    }

    #[test]
    fn suppression_same_and_previous_line() {
        let src = "// #[allow(monatt::panic_freedom)]\nx.unwrap();\ny.unwrap(); // #[allow(monatt::panic-freedom)]\nz.unwrap();";
        let ctx = FileContext::new("crates/core/src/x.rs", src);
        assert!(ctx.is_suppressed("panic_freedom", 2));
        assert!(ctx.is_suppressed("panic_freedom", 3));
        assert!(!ctx.is_suppressed("panic_freedom", 4));
        assert!(!ctx.is_suppressed("secret_hygiene", 2));
    }

    #[test]
    fn crate_name_extraction() {
        assert_eq!(
            FileContext::new("crates/net/src/channel.rs", "").crate_name,
            "net"
        );
        assert_eq!(FileContext::new("src/lib.rs", "").crate_name, "");
    }
}
