//! Lint configuration: the secret-type list, constant-time trigger
//! identifiers, crate scopes, and file-set policies.
//!
//! Defaults are baked in (the container is offline, so no config-crate
//! dependency) and every list is overridable from the command line, so the
//! tool stays usable as the workspace grows new key types.

/// Which slice-index policy a crate gets under the `panic_freedom` rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexPolicy {
    /// Flag every index/range expression whose index is not a single
    /// integer literal. For protocol and parsing crates, where slice
    /// lengths are adversarial.
    Strict,
    /// Indexing is not flagged: fixed-width arithmetic kernels index with
    /// compile-time-bounded loop counters, and the secret-dependent cases
    /// are covered by the `const_time` rule instead.
    Kernel,
}

/// The lint configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Types holding key material: must not `derive(Debug)` and must carry
    /// a manual (redacting) `Debug` impl.
    pub secret_types: Vec<String>,
    /// Subset of `secret_types` holding raw key bytes: must also impl a
    /// zeroizing `Drop`.
    pub zeroize_types: Vec<String>,
    /// Identifier names treated as secret values when interpolated into
    /// format-like macros.
    pub secret_idents: Vec<String>,
    /// Snake-case identifier *parts* that make an `==`/`!=` comparison
    /// suspicious (tag/MAC/digest material).
    pub ct_ident_parts: Vec<String>,
    /// Function names exempt from the comparison rule (the constant-time
    /// primitives themselves).
    pub ct_exempt_fns: Vec<String>,
    /// Files whose `if`/index expressions are checked for secret-dependent
    /// control flow (the crypto hot paths).
    pub hot_path_files: Vec<String>,
    /// Identifiers treated as secret-derived in hot-path files.
    pub secret_flow_idents: Vec<String>,
    /// Crate directory names under `crates/` subject to `panic_freedom`.
    pub panic_crates: Vec<String>,
    /// Individual workspace-relative files subject to `panic_freedom`
    /// even though their crate is not in `panic_crates` — load-bearing
    /// kernels inside otherwise-exempt crates (the event-engine timer
    /// wheel lives in `hypervisor`, which is free to panic elsewhere).
    pub panic_files: Vec<String>,
    /// Crates whose slice indexing uses the lenient kernel policy.
    pub kernel_index_crates: Vec<String>,
    /// Crate directories skipped entirely (vendored shims).
    pub skip_crates: Vec<String>,
    /// Crate directory names whose code must replay bit-identically
    /// under a fixed seed (the `determinism` rule scope): no
    /// iteration-order-dependent containers, wall clocks, or ambient
    /// randomness outside `#[cfg(test)]`.
    pub det_crates: Vec<String>,
    /// Function names allowed to touch OS entropy: the sanctioned
    /// seed-acquisition boundary (`Drbg::from_entropy`). Everything
    /// else in `det_crates` must derive randomness from a seeded DRBG.
    pub entropy_fns: Vec<String>,
    /// Files enrolled in the `alloc_freedom` rule: the zero-allocation
    /// warm Msg1–Msg6 path. Functions here may not call allocating APIs
    /// unless marked cold/setup.
    pub warm_path_files: Vec<String>,
    /// Function names treated as cold/setup in warm-path files (besides
    /// any fn carrying a `#[cold]` attribute): constructors and
    /// capacity pre-reservation run once at session setup, not per
    /// message.
    pub alloc_cold_fns: Vec<String>,
    /// Function names that stringify or serialize their argument — the
    /// `secret_taint` rule flags a secret passed one call deep into a
    /// callee that forwards the matching parameter to one of these (or
    /// to a format macro or a non-`ct_eq` comparison).
    pub taint_sink_fns: Vec<String>,
}

fn strings(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

impl Default for Config {
    fn default() -> Self {
        Config {
            secret_types: strings(&[
                "SigningKey",
                "SealKey",
                "EphemeralSecret",
                "Drbg",
                "Aes128",
                "HmacSha256",
                "SecureChannel",
                "PendingHandshake",
                "TrustModule",
                "AttestationSession",
            ]),
            zeroize_types: strings(&[
                "SigningKey",
                "SealKey",
                "EphemeralSecret",
                "Drbg",
                "Aes128",
                "HmacSha256",
            ]),
            secret_idents: strings(&[
                "secret",
                "mac_key",
                "enc_key",
                "opad_key",
                "ipad",
                "key_block",
                "round_keys",
                "exponent",
                "send_key",
                "recv_key",
                "sk_bytes",
                "session_secret",
                "shared_secret",
            ]),
            ct_ident_parts: strings(&["tag", "mac", "hmac", "digest", "pcr", "hash", "secret"]),
            ct_exempt_fns: strings(&["verify_tag", "ct_eq", "ct_eq_opt"]),
            hot_path_files: strings(&[
                "crates/crypto/src/montgomery.rs",
                "crates/crypto/src/modmath.rs",
                "crates/crypto/src/group.rs",
                "crates/crypto/src/schnorr.rs",
                "crates/crypto/src/batch.rs",
                "crates/crypto/src/dh.rs",
                "crates/crypto/src/aes.rs",
            ]),
            secret_flow_idents: strings(&["exp", "exponent", "secret", "scalar", "state"]),
            panic_crates: strings(&["core", "net", "crypto", "tpm"]),
            // `controlplane.rs` is already inside the `core` scope; it
            // is pinned here explicitly as well so the failover routing
            // kernel stays panic-checked even if the crate-level scope
            // is ever narrowed.
            panic_files: strings(&[
                "crates/hypervisor/src/wheel.rs",
                "crates/core/src/controlplane.rs",
            ]),
            kernel_index_crates: strings(&["crypto"]),
            skip_crates: strings(&["rand-shim", "proptest-shim", "criterion-shim", "lint"]),
            det_crates: strings(&["core", "net", "hypervisor", "crypto", "tpm"]),
            entropy_fns: strings(&["from_entropy"]),
            warm_path_files: strings(&[
                "crates/net/src/wire.rs",
                "crates/net/src/channel.rs",
                "crates/core/src/session.rs",
                "crates/core/src/protocol/run.rs",
                "crates/core/src/arena.rs",
                "crates/hypervisor/src/wheel.rs",
            ]),
            alloc_cold_fns: strings(&["new", "default", "with_capacity", "fmt"]),
            taint_sink_fns: strings(&["serialize", "to_json", "to_string", "to_hex", "hex_string"]),
        }
    }
}

impl Config {
    /// The index policy for a crate directory name.
    pub fn index_policy(&self, crate_name: &str) -> IndexPolicy {
        if self.kernel_index_crates.iter().any(|c| c == crate_name) {
            IndexPolicy::Kernel
        } else {
            IndexPolicy::Strict
        }
    }

    /// Whether `panic_freedom` applies to a crate directory name.
    pub fn panic_scope(&self, crate_name: &str) -> bool {
        self.panic_crates.iter().any(|c| c == crate_name)
    }

    /// Whether `panic_freedom` applies to a specific file regardless of
    /// its crate's scope.
    pub fn panic_scope_file(&self, path: &str) -> bool {
        self.panic_files.iter().any(|f| f == path)
    }

    /// Whether a file is a crypto hot path for the secret-flow checks.
    pub fn is_hot_path(&self, path: &str) -> bool {
        self.hot_path_files.iter().any(|f| f == path)
    }

    /// Whether the `determinism` rule applies to a crate directory name.
    pub fn det_scope(&self, crate_name: &str) -> bool {
        self.det_crates.iter().any(|c| c == crate_name)
    }

    /// Whether a file is enrolled in the `alloc_freedom` warm-path set.
    pub fn is_warm_path(&self, path: &str) -> bool {
        self.warm_path_files.iter().any(|f| f == path)
    }
}
