//! Diagnostics and machine-readable output.

use std::fmt;

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (normalized, underscore form).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// Renders this diagnostic as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            self.rule,
            json_escape(&self.file),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// Renders a diagnostic list as a JSON array.
pub fn to_json_array(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(|d| d.to_json()).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        let d = Diagnostic {
            rule: "panic_freedom",
            file: "a\"b.rs".into(),
            line: 3,
            col: 7,
            message: "uses\n\"unwrap\"".into(),
        };
        let j = d.to_json();
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("uses\\n"));
        assert!(to_json_array(&[d.clone(), d]).starts_with('['));
    }
}
