//! Diagnostics and machine-readable output.
//!
//! Lint v2 diagnostics carry a *span* (start column plus an exclusive
//! end column when the offending token is known), related-location
//! notes (e.g. the allocation site inside a callee that a warm-path
//! call reaches), and a stable `id` — `rule@file:line:col` — so CI
//! artifacts from different runs diff cleanly.

use std::fmt;

/// A related location attached to a finding — where the callee
/// allocates, where the tainted parameter reaches a sink, and so on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Note {
    /// Workspace-relative path of the related location.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What happens there.
    pub message: String,
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (normalized, underscore form).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// 1-based exclusive end column of the offending token on `line`
    /// (`col` when the token extent is unknown).
    pub end_col: u32,
    /// Human-readable description.
    pub message: String,
    /// Related locations.
    pub notes: Vec<Note>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )?;
        for n in &self.notes {
            write!(
                f,
                "\n    note: {}:{}:{}: {}",
                n.file, n.line, n.col, n.message
            )?;
        }
        Ok(())
    }
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Note {
    fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(&self.file),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

impl Diagnostic {
    /// The stable identity of this finding: `rule@file:line:col`. Two
    /// runs over the same tree produce identical ids in identical
    /// order, so JSON reports are diffable CI artifacts.
    pub fn id(&self) -> String {
        format!("{}@{}:{}:{}", self.rule, self.file, self.line, self.col)
    }

    /// Renders this diagnostic as a JSON object with a fixed key order.
    pub fn to_json(&self) -> String {
        let notes: Vec<String> = self.notes.iter().map(|n| n.to_json()).collect();
        format!(
            "{{\"id\":\"{}\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\
             \"end_col\":{},\"message\":\"{}\",\"notes\":[{}]}}",
            json_escape(&self.id()),
            self.rule,
            json_escape(&self.file),
            self.line,
            self.col,
            self.end_col,
            json_escape(&self.message),
            notes.join(",")
        )
    }
}

/// Renders a diagnostic list as a JSON array.
pub fn to_json_array(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(|d| d.to_json()).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_stable_id() {
        let d = Diagnostic {
            rule: "panic_freedom",
            file: "a\"b.rs".into(),
            line: 3,
            col: 7,
            end_col: 13,
            message: "uses\n\"unwrap\"".into(),
            notes: vec![Note {
                file: "c.rs".into(),
                line: 1,
                col: 2,
                message: "related".into(),
            }],
        };
        let j = d.to_json();
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("uses\\n"));
        assert!(j.contains("\"end_col\":13"));
        assert!(j.contains("\"notes\":[{\"file\":\"c.rs\""));
        assert_eq!(d.id(), "panic_freedom@a\"b.rs:3:7");
        assert!(to_json_array(&[d.clone(), d]).starts_with('['));
    }

    #[test]
    fn display_includes_notes() {
        let d = Diagnostic {
            rule: "alloc_freedom",
            file: "a.rs".into(),
            line: 1,
            col: 1,
            end_col: 4,
            message: "warm fn allocates via callee".into(),
            notes: vec![Note {
                file: "b.rs".into(),
                line: 9,
                col: 5,
                message: "allocation here".into(),
            }],
        };
        let s = d.to_string();
        assert!(s.contains("note: b.rs:9:5: allocation here"), "{s}");
    }
}
