//! Rule: secret-bearing types must not derive a leaking `Debug`, must
//! provide a redacting manual `Debug`, key-byte holders must zeroize in
//! `Drop`, and secret identifiers must not reach format-like macros.

use crate::config::Config;
use crate::context::{match_delim, FileContext};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

use super::{diag_at, diag_tok, display_name, str_interpolates, FORMAT_MACROS};

const RULE: &str = "secret_hygiene";

pub(crate) fn check(ctx: &FileContext, cfg: &Config, out: &mut Vec<Diagnostic>) {
    for d in &ctx.derives {
        if cfg.secret_types.contains(&d.type_name) && d.derives.iter().any(|t| t == "Debug") {
            out.push(diag_at(
                RULE,
                ctx,
                d.line,
                1,
                1,
                format!(
                    "secret type `{}` derives Debug, which prints key material; \
                     write a redacting `impl fmt::Debug` instead",
                    d.type_name
                ),
            ));
        }
    }

    for (name, line) in &ctx.defined_types {
        if cfg.secret_types.contains(name) && ctx.impl_body("Debug", name).is_none() {
            out.push(diag_at(
                RULE,
                ctx,
                *line,
                1,
                1,
                format!(
                    "secret type `{name}` has no manual Debug impl; add a redacting one \
                     so accidental `{{:?}}` cannot leak key material"
                ),
            ));
        }
        if cfg.zeroize_types.contains(name) {
            match ctx.impl_body("Drop", name) {
                None => out.push(diag_at(
                    RULE,
                    ctx,
                    *line,
                    1,
                    1,
                    format!(
                        "key-material type `{name}` has no Drop impl; \
                         key bytes must be zeroized on drop"
                    ),
                )),
                Some((start, end)) => {
                    let zeroizes = ctx.tokens[start..end]
                        .iter()
                        .any(|t| t.kind == TokenKind::Ident && t.text.contains("zeroize"));
                    if !zeroizes {
                        out.push(diag_at(
                            RULE,
                            ctx,
                            *line,
                            1,
                            1,
                            format!("Drop impl for `{name}` does not call a zeroize helper"),
                        ));
                    }
                }
            }
        }
    }

    // Format-macro interpolation of secrets. Test code is exempt for this
    // check only: tests legitimately assert that Debug output is redacted.
    let toks = &ctx.tokens;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        let is_macro = toks[i].kind == TokenKind::Ident
            && FORMAT_MACROS.contains(&toks[i].text.as_str())
            && toks[i + 1].is_punct("!")
            && matches!(toks[i + 2].text.as_str(), "(" | "[" | "{");
        if !is_macro || ctx.in_test[i] {
            i += 1;
            continue;
        }
        let close = match_delim(toks, i + 2);
        let start = super::format_scan_start(toks, i, i + 2, close);
        for (j, t) in toks.iter().enumerate().take(close).skip(start) {
            let leaked = match t.kind {
                TokenKind::Ident => {
                    cfg.secret_idents.contains(&t.text) || cfg.secret_types.contains(&t.text)
                }
                TokenKind::Str => cfg
                    .secret_idents
                    .iter()
                    .any(|name| str_interpolates(&t.text, name)),
                _ => false,
            };
            if leaked {
                out.push(diag_tok(
                    RULE,
                    ctx,
                    j,
                    format!(
                        "secret `{}` interpolated into `{}!`; key material must not \
                         reach logs or panic payloads",
                        display_name(&t.text),
                        toks[i].text
                    ),
                ));
            }
        }
        i = close + 1;
    }
}
