//! Rule: protocol crates must not reach `unwrap`/`expect`/`panic!` or
//! possibly-panicking slice indexing outside test code.

use crate::config::{Config, IndexPolicy};
use crate::context::{match_delim, FileContext};
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};

use super::{diag_tok, is_index_base};

const RULE: &str = "panic_freedom";

pub(crate) fn check(ctx: &FileContext, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let policy = cfg.index_policy(&ctx.crate_name);
    let toks = &ctx.tokens;

    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if t.is_punct(".")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            let callee = &toks[i + 1];
            let msg = format!(
                "`.{}()` in protocol code can panic on adversarial input; \
                 return a typed error instead",
                callee.text
            );
            out.push(diag_tok(RULE, ctx, i + 1, msg));
        }
        if t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            out.push(diag_tok(
                RULE,
                ctx,
                i,
                format!(
                    "`{}!` aborts the attestation path; return a typed error",
                    t.text
                ),
            ));
        }
        if policy == IndexPolicy::Strict && t.is_punct("[") && i > 0 && is_index_base(&toks[i - 1])
        {
            let close = match_delim(toks, i);
            let inner = &toks[i + 1..close];
            if !is_literal_index(inner) {
                out.push(diag_tok(
                    RULE,
                    ctx,
                    i,
                    "slice index may panic on short input; use `get`/`split_at` \
                     with an error path"
                        .to_string(),
                ));
            }
        }
    }
}

/// True if the index tokens are a single integer literal (`x[0]`): the
/// compiler-checked fixed-offset pattern the strict policy still allows.
fn is_literal_index(inner: &[Token]) -> bool {
    inner.len() == 1 && inner[0].kind == TokenKind::Num
}
