//! The six workspace rules, evaluated over a [`Workspace`].
//!
//! Each rule is a pure function from (workspace, file, config) to
//! diagnostics; suppression comments are applied centrally in
//! [`run_all`]. The original three rules (`secret_hygiene`,
//! `const_time`, `panic_freedom`) are per-file token-stream passes; the
//! lint-v2 rules (`determinism`, `alloc_freedom`, `secret_taint`) also
//! consult the symbol table and call graph.

pub mod alloc_freedom;
pub mod const_time;
pub mod determinism;
pub mod panic_freedom;
pub mod secret_hygiene;
pub mod secret_taint;

use crate::config::Config;
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::Workspace;

/// Normalized names of every rule, in evaluation order.
pub const RULE_NAMES: [&str; 6] = [
    "secret_hygiene",
    "const_time",
    "panic_freedom",
    "determinism",
    "alloc_freedom",
    "secret_taint",
];

/// Macros whose arguments end up in human-readable output (or a panic
/// payload) and therefore must not interpolate key material.
pub(crate) const FORMAT_MACROS: [&str; 19] = [
    "format",
    "println",
    "print",
    "eprintln",
    "eprint",
    "write",
    "writeln",
    "panic",
    "debug",
    "info",
    "warn",
    "error",
    "trace",
    "log",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
];

/// Keywords that cannot end an expression: a `[` following one of these
/// opens a slice pattern or array type, not an index operation.
pub(crate) const NON_EXPR_KEYWORDS: [&str; 26] = [
    "return", "break", "else", "in", "match", "loop", "while", "if", "impl", "mut", "ref", "as",
    "move", "let", "const", "static", "type", "where", "for", "unsafe", "dyn", "fn", "use", "pub",
    "enum", "struct",
];

/// Runs every rule on one file of the workspace, filtering findings
/// that carry an inline `monatt::<rule>` suppression comment.
pub fn run_all(ws: &Workspace, file: usize, cfg: &Config) -> Vec<Diagnostic> {
    let ctx = &ws.files[file];
    let mut out = Vec::new();
    secret_hygiene::check(ctx, cfg, &mut out);
    const_time::check(ctx, cfg, &mut out);
    if cfg.panic_scope(&ctx.crate_name) || cfg.panic_scope_file(&ctx.path) {
        panic_freedom::check(ctx, cfg, &mut out);
    }
    if cfg.det_scope(&ctx.crate_name) {
        determinism::check(ctx, cfg, &mut out);
    }
    if cfg.is_warm_path(&ctx.path) {
        alloc_freedom::check(ws, file, cfg, &mut out);
    }
    secret_taint::check(ws, file, cfg, &mut out);
    out.retain(|d| !ctx.is_suppressed(d.rule, d.line));
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out.dedup();
    out
}

/// Long-form documentation for `--explain <rule>`.
pub fn explain(rule: &str) -> Option<&'static str> {
    let rule = crate::context::normalize_rule(rule);
    Some(match rule.as_str() {
        "secret_hygiene" => {
            "secret_hygiene — key material must not reach human-readable output.\n\
             \n\
             Secret-bearing types (SealKey, SigningKey, Drbg, …) must not\n\
             #[derive(Debug)], must carry a redacting manual Debug impl, and the\n\
             raw-key subset must zeroize in Drop. Identifiers on the secret list\n\
             (mac_key, shared_secret, …) must not be interpolated into format-like\n\
             macros (println!, format!, panic!, log macros, assert messages).\n\
             \n\
             Fix: write `impl fmt::Debug` that prints a redacted placeholder, add\n\
             a zeroizing Drop, and log lengths or redacted prefixes, never keys.\n\
             Suppress (justified): `// #[allow(monatt::secret_hygiene)]`."
        }
        "const_time" => {
            "const_time — comparisons and control flow over secrets must be\n\
             constant-time.\n\
             \n\
             `==`/`!=` on tag/MAC/digest/PCR material is a timing oracle: early-exit\n\
             comparison reveals the first differing byte. In the crypto hot-path\n\
             file set, `if` conditions and table indexes must not depend on\n\
             secret-derived identifiers (exp, scalar, secret, …).\n\
             \n\
             Fix: compare with `monatt_crypto::zeroize::ct_eq`; restructure kernels\n\
             to fixed-shape loops (e.g. Montgomery ladders, windowed tables with\n\
             constant scan order).\n\
             Suppress (justified): `// #[allow(monatt::const_time)]`."
        }
        "panic_freedom" => {
            "panic_freedom — protocol code must degrade into typed errors, not\n\
             aborts.\n\
             \n\
             In `core`, `net`, `crypto`, `tpm` (and enrolled files such as the\n\
             hypervisor timer wheel), `.unwrap()`, `.expect()`, the panic! macro\n\
             family, and unguarded slice indexing are banned outside tests: a\n\
             Dolev-Yao attacker controls wire bytes, so any reachable panic is a\n\
             remote crash. Kernel crates (`crypto`) keep loop-counter indexing;\n\
             strict crates must use `get`/`split_at` with an error path.\n\
             \n\
             Fix: return `Result` with a typed error; guard with `checked_*`.\n\
             Suppress (justified): `// #[allow(monatt::panic_freedom)]`."
        }
        "determinism" => {
            "determinism — sim-deterministic crates must replay bit-identically\n\
             under a fixed seed.\n\
             \n\
             The golden-trace fixture pins event order, RNG draw order, and wall\n\
             clock of the clean path; anything order- or time-dependent that the\n\
             trace does not execute can still diverge silently. In `core`, `net`,\n\
             `hypervisor`, `crypto`, `tpm` (outside tests) this rule bans:\n\
             std HashMap/HashSet (iteration order varies per process — use\n\
             BTreeMap/BTreeSet), Instant/SystemTime (wall clock — use the sim\n\
             clock), and ambient randomness (OsRng, thread_rng, from_entropy —\n\
             use a seeded Drbg; `Drbg::from_entropy` itself is the one sanctioned\n\
             entropy boundary and is exempt via the entropy-fn list).\n\
             \n\
             Fix: BTreeMap/BTreeSet, the engine's virtual clock, seeded DRBGs.\n\
             Suppress (justified): `// #[allow(monatt::determinism)]`."
        }
        "alloc_freedom" => {
            "alloc_freedom — the warm Msg1–Msg6 path must not allocate.\n\
             \n\
             tests/zero_alloc.rs proves 64 warm rounds allocate zero times, but\n\
             only on the paths it executes. This rule is the static twin: in the\n\
             enrolled warm-path files (wire encode_into, channel seal/open, the\n\
             timer wheel, session state machine, session arena), functions may not\n\
             call allocating APIs (Vec::new, vec!, to_vec, collect, format!,\n\
             Box::new, String::from/new, to_string, to_owned, with_capacity)\n\
             unless marked cold/setup (a `#[cold]` attribute or the cold-fn list).\n\
             One level of call-graph propagation also flags a warm call into a\n\
             workspace helper that allocates directly (resolved by unique name).\n\
             \n\
             Fix: thread a scratch buffer, pre-reserve in setup, or outline the\n\
             cold path into a `#[cold]` helper.\n\
             Suppress (justified): `// #[allow(monatt::alloc_freedom)]`."
        }
        "secret_taint" => {
            "secret_taint — a leak split across two functions is still a leak.\n\
             \n\
             secret_hygiene catches `println!(\"{mac_key:?}\")`; this rule catches\n\
             the same leak routed through one call: a secret-listed identifier\n\
             passed as an argument to a workspace function whose matching\n\
             parameter reaches a format macro, a serialization sink (to_string,\n\
             serialize, …), or — for tag/digest-named secrets — a non-ct_eq\n\
             `==`/`!=` comparison. Resolution is name-based and only unique\n\
             non-test symbols are followed (one call deep), so every finding has\n\
             a concrete sink, reported as a related-location note.\n\
             \n\
             Fix: pass a redacted view, compare via ct_eq inside the callee, or\n\
             drop the parameter from the formatted message.\n\
             Suppress (justified): `// #[allow(monatt::secret_taint)]`."
        }
        _ => return None,
    })
}

/// Builds a diagnostic whose span covers the token at `tok`.
pub(crate) fn diag_tok(
    rule: &'static str,
    ctx: &FileContext,
    tok: usize,
    message: String,
) -> Diagnostic {
    let t = &ctx.tokens[tok];
    diag_at(
        rule,
        ctx,
        t.line,
        t.col,
        t.col + t.text.chars().count() as u32,
        message,
    )
}

/// Builds a diagnostic from explicit coordinates.
pub(crate) fn diag_at(
    rule: &'static str,
    ctx: &FileContext,
    line: u32,
    col: u32,
    end_col: u32,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        file: ctx.path.clone(),
        line,
        col,
        end_col,
        message,
        notes: Vec::new(),
    }
}

/// First argument token of a format-like macro that actually reaches
/// output. `assert!`/`debug_assert!` only print their *format*
/// arguments on failure; the leading condition never reaches output, so
/// the scan starts after the first top-level comma.
pub(crate) fn format_scan_start(toks: &[Token], mac: usize, open: usize, close: usize) -> usize {
    let start = open + 1;
    if !matches!(toks[mac].text.as_str(), "assert" | "debug_assert") {
        return start;
    }
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(close).skip(start) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => return j + 1,
                _ => {}
            }
        }
    }
    close
}

/// True if the token before a `[` means the bracket is an index operation
/// (rather than a slice pattern, array type, or array literal).
pub(crate) fn is_index_base(prev: &Token) -> bool {
    match prev.kind {
        TokenKind::Ident => !NON_EXPR_KEYWORDS.contains(&prev.text.as_str()),
        TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
        _ => false,
    }
}

/// True if a string literal's text contains an inline capture of `name`,
/// i.e. `{name}` or `{name:...}`.
pub(crate) fn str_interpolates(literal: &str, name: &str) -> bool {
    let mut rest = literal;
    while let Some(idx) = rest.find('{') {
        rest = &rest[idx + 1..];
        if let Some(stripped) = rest.strip_prefix(name) {
            if stripped.starts_with('}') || stripped.starts_with(':') {
                return true;
            }
        }
    }
    false
}

/// Shortens a string-literal token for use inside a message.
pub(crate) fn display_name(text: &str) -> String {
    if text.len() > 24 {
        format!(
            "{}…",
            &text[..text.char_indices().nth(24).map_or(text.len(), |(i, _)| i)]
        )
    } else {
        text.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_an_explanation() {
        for rule in RULE_NAMES {
            let text = explain(rule).unwrap_or_else(|| panic!("no explain for {rule}"));
            assert!(text.contains(rule), "explanation names its rule: {rule}");
            assert!(text.contains("Suppress"), "explains suppression: {rule}");
        }
        assert!(
            explain("secret-taint").is_some(),
            "hyphen spelling accepted"
        );
        assert!(explain("nonsense").is_none());
    }
}
