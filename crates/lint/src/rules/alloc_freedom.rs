//! Rule: the warm Msg1–Msg6 path must not allocate.
//!
//! `tests/zero_alloc.rs` proves — with a counting global allocator —
//! that 64 warm rounds allocate exactly zero times, but only on the
//! paths the test happens to execute. This rule is the static twin: in
//! the enrolled warm-path files, every function that is not marked
//! cold/setup (a `#[cold]` attribute or [`Config::alloc_cold_fns`]) is
//! checked for allocating API calls, and — one level deep through the
//! call graph — for calls into workspace functions that allocate
//! directly. Propagated findings carry a related-location note pointing
//! at the allocation inside the callee.
//!
//! Known limits (DESIGN.md §14): detection is name-based (a local type
//! with a method named `to_vec` would false-positive; none exists),
//! propagation follows only uniquely-named non-test symbols, and only
//! one level deep — a warm → A → B chain where only B allocates is not
//! flagged (the runtime test remains the backstop).

use crate::config::Config;
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::items::FnItem;
use crate::lexer::TokenKind;
use crate::symbols::FnKey;
use crate::Workspace;

use super::diag_tok;
use crate::diag::Note;

const RULE: &str = "alloc_freedom";

/// Macro names that allocate.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// Method names that allocate on any std receiver they apply to.
const ALLOC_METHODS: [&str; 4] = ["to_vec", "to_string", "to_owned", "collect"];

/// `Type::ctor` pairs that allocate (or exist only to front an
/// allocation, like `Vec::new` ahead of growth).
const ALLOC_TYPES: [&str; 6] = ["Vec", "String", "Box", "VecDeque", "BTreeMap", "BTreeSet"];
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];

/// One direct allocation site inside a function body.
struct AllocSite {
    /// Token index of the allocating name.
    tok: usize,
    /// Short description, e.g. "`format!`" or "`Vec::new`".
    what: String,
}

/// True if `item` is cold/setup: explicitly `#[cold]`, or named in the
/// configured cold list (constructors, Debug impls, …).
fn is_cold(item: &FnItem, cfg: &Config) -> bool {
    item.has_attr("cold") || cfg.alloc_cold_fns.contains(&item.name)
}

/// Scans one function's own tokens (minus nested fn bodies, which are
/// their own items) for direct allocation sites.
fn direct_allocs(ctx: &FileContext, item: &FnItem) -> Vec<AllocSite> {
    let mut out = Vec::new();
    let Some((start, end)) = item.body else {
        return out;
    };
    let toks = &ctx.tokens;
    let mut i = start;
    while i < end {
        // Nested fns are separate items with their own cold marking.
        if let Some(nested) = ctx
            .items
            .iter()
            .find(|f| f.fn_tok == i && f.fn_tok != item.fn_tok)
        {
            if let Some((_, nested_end)) = nested.body {
                if nested_end <= end {
                    i = nested_end + 1;
                    continue;
                }
            }
        }
        let t = &toks[i];
        if t.kind == TokenKind::Ident {
            let name = t.text.as_str();
            let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
            let prev_dot = i > start && toks[i - 1].is_punct(".");
            let prev_path = i > start && toks[i - 1].is_punct("::");
            if ALLOC_MACROS.contains(&name) && next_bang {
                out.push(AllocSite {
                    tok: i,
                    what: format!("`{name}!`"),
                });
            } else if ALLOC_METHODS.contains(&name) && prev_dot {
                // The std allocating methods are all zero-arg:
                // `.to_vec()`, `.collect()`, `.collect::<Vec<_>>()`. A
                // call with arguments (`self.collect(spec, vid)`) is a
                // workspace method that happens to share the name.
                let zero_arg = toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(")"));
                let turbofish = toks.get(i + 1).is_some_and(|n| n.is_punct("::"));
                if zero_arg || turbofish {
                    out.push(AllocSite {
                        tok: i,
                        what: format!("`.{name}()`"),
                    });
                }
            } else if ALLOC_CTORS.contains(&name) && prev_path && i >= 2 {
                let ty = &toks[i - 2];
                if ty.kind == TokenKind::Ident && ALLOC_TYPES.contains(&ty.text.as_str()) {
                    out.push(AllocSite {
                        tok: i,
                        what: format!("`{}::{}`", ty.text, name),
                    });
                }
            }
        }
        i += 1;
    }
    out
}

pub(crate) fn check(ws: &Workspace, file: usize, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let ctx = &ws.files[file];
    for (ii, item) in ctx.items.iter().enumerate() {
        if item.body.is_none()
            || ctx.in_test.get(item.fn_tok).copied().unwrap_or(false)
            || is_cold(item, cfg)
        {
            continue;
        }
        let key = FnKey { file, item: ii };

        for site in direct_allocs(ctx, item) {
            out.push(diag_tok(
                RULE,
                ctx,
                site.tok,
                format!(
                    "{} allocates in warm-path fn `{}`; thread a scratch buffer or \
                     mark the fn `#[cold]` if it is setup-only",
                    site.what, item.name
                ),
            ));
        }

        // One level of call-graph propagation: a warm fn calling a
        // workspace fn that allocates directly drags the allocation
        // onto the warm path even though this file looks clean.
        for call in ws.calls.calls_from(key) {
            let Some(callee_key) = ws.symbols.resolve_call(call) else {
                continue;
            };
            let callee_ctx = &ws.files[callee_key.file];
            let Some(callee) = ws.symbols.item(&ws.files, callee_key) else {
                continue;
            };
            // A `#[cold]` callee is a declared cold path (outlined
            // error construction, setup): the annotation is trusted, a
            // call to it is presumed guarded. A warm (non-cold) fn in an
            // enrolled file is already flagged at its definition;
            // re-flagging every caller would only repeat the finding.
            if is_cold(callee, cfg) || cfg.is_warm_path(&callee_ctx.path) {
                continue;
            }
            let allocs = direct_allocs(callee_ctx, callee);
            let Some(first) = allocs.first() else {
                continue;
            };
            let at = &callee_ctx.tokens[first.tok];
            let mut d = diag_tok(
                RULE,
                ctx,
                call.name_tok,
                format!(
                    "warm-path fn `{}` calls `{}`, which allocates ({}); inline a \
                     non-allocating variant or mark the caller `#[cold]`",
                    item.name, call.callee, first.what
                ),
            );
            d.notes.push(Note {
                file: callee_ctx.path.clone(),
                line: at.line,
                col: at.col,
                message: format!("{} allocates here, inside `{}`", first.what, callee.name),
            });
            out.push(d);
        }
    }
}
