//! Rule: a secret leak split across two functions is still a leak.
//!
//! `secret_hygiene` flags `println!("{mac_key:?}")` inside one
//! function. This rule follows the secret one call deep: an argument
//! named on the secret list, passed to a workspace function whose
//! matching *parameter* reaches a sink inside the callee body —
//!
//! * a format-like macro (the same set `secret_hygiene` polices),
//! * a serialization/stringification call ([`Config::taint_sink_fns`]),
//! * or, for arguments whose name carries a tag/MAC/digest part, a
//!   variable-time `==`/`!=` comparison (the same trigger-part list the
//!   `const_time` rule uses — plain secrets like exponents are excluded
//!   here because fixed-shape kernels legitimately consume them; the
//!   hot-path `const_time` checks own that ground).
//!
//! Resolution is name-based and only unique non-test symbols are
//! followed (DESIGN.md §14), so every finding names a concrete sink,
//! attached as a related-location note. Callees on the `ct_exempt_fns`
//! list (the constant-time primitives themselves) and zeroize helpers
//! are never sinks.

use crate::config::Config;
use crate::context::match_delim;
use crate::diag::{Diagnostic, Note};
use crate::lexer::{Token, TokenKind};
use crate::Workspace;

use super::const_time::has_ct_part;
use super::{diag_tok, str_interpolates, FORMAT_MACROS};

const RULE: &str = "secret_taint";

/// What a callee does with the tainted parameter.
struct Sink {
    /// Token index of the sink inside the callee's file.
    tok: usize,
    /// Description for the note, e.g. "interpolates it into `format!`".
    what: String,
    /// True when this sink only fires for tag/digest-named secrets.
    comparison: bool,
}

pub(crate) fn check(ws: &Workspace, file: usize, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let ctx = &ws.files[file];
    for call in ws.calls.sites.iter().filter(|s| s.caller.file == file) {
        if ctx.in_test.get(call.name_tok).copied().unwrap_or(false) {
            continue;
        }
        // The constant-time primitives take secrets by design.
        if cfg.ct_exempt_fns.contains(&call.callee) || call.callee.contains("zeroize") {
            continue;
        }
        let Some(callee_key) = ws.symbols.resolve_call(call) else {
            continue;
        };
        let callee_ctx = &ws.files[callee_key.file];
        let Some(callee) = ws.symbols.item(&ws.files, callee_key) else {
            continue;
        };
        if callee.body.is_none() || cfg.ct_exempt_fns.contains(&callee.name) {
            continue;
        }
        for (pos, &(arg_start, arg_end)) in call.args.iter().enumerate() {
            let Some((secret_tok, secret_name)) =
                secret_in_arg(&ctx.tokens[arg_start..arg_end], cfg)
                    .map(|(o, n)| (arg_start + o, n))
            else {
                continue;
            };
            // Map the argument position onto the callee parameter. A
            // method call's args bind past the receiver; a UFCS call
            // (`Type::method(obj, …)`) binds positionally including
            // `self`.
            let param_pos = if call.method && callee.params.first().is_some_and(|p| p == "self") {
                pos + 1
            } else {
                pos
            };
            let Some(param) = callee.params.get(param_pos) else {
                continue;
            };
            if param == "self" || param.is_empty() {
                continue;
            }
            let ct_named = has_ct_part(&secret_name, cfg);
            let Some(sink) = find_sink(callee_ctx, callee.body.unwrap_or((0, 0)), param, cfg)
            else {
                continue;
            };
            if sink.comparison && !ct_named {
                continue;
            }
            let at = &callee_ctx.tokens[sink.tok];
            let mut d = diag_tok(
                RULE,
                ctx,
                secret_tok,
                format!(
                    "secret `{secret_name}` flows into `{}`, whose parameter \
                     `{param}` {}; the leak spans two functions",
                    call.callee, sink.what
                ),
            );
            d.notes.push(Note {
                file: callee_ctx.path.clone(),
                line: at.line,
                col: at.col,
                message: format!("`{param}` {} here", sink.what),
            });
            out.push(d);
        }
    }
}

/// Finds the first secret-listed identifier in an argument's tokens.
fn secret_in_arg(toks: &[Token], cfg: &Config) -> Option<(usize, String)> {
    toks.iter().enumerate().find_map(|(i, t)| {
        if t.kind == TokenKind::Ident
            && (cfg.secret_idents.contains(&t.text) || cfg.secret_types.contains(&t.text))
        {
            Some((i, t.text.clone()))
        } else {
            None
        }
    })
}

/// Scans the callee body for the first sink the parameter reaches.
fn find_sink(
    ctx: &crate::context::FileContext,
    (start, end): (usize, usize),
    param: &str,
    cfg: &Config,
) -> Option<Sink> {
    let toks = &ctx.tokens;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if ctx.in_test.get(i).copied().unwrap_or(false) || t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = t.text.as_str();
        // Format-like macro whose arguments mention the parameter.
        if FORMAT_MACROS.contains(&name)
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && toks
                .get(i + 2)
                .is_some_and(|n| matches!(n.text.as_str(), "(" | "[" | "{"))
        {
            let close = match_delim(toks, i + 2);
            let start = super::format_scan_start(toks, i, i + 2, close);
            for arg in &toks[start..close] {
                let hit = match arg.kind {
                    TokenKind::Ident => arg.text == param,
                    TokenKind::Str => str_interpolates(&arg.text, param),
                    _ => false,
                };
                if hit {
                    return Some(Sink {
                        tok: i,
                        what: format!("is interpolated into `{name}!`"),
                        comparison: false,
                    });
                }
            }
            i = close + 1;
            continue;
        }
        // Serialization/stringification sink: `param.to_string()`,
        // `serialize(param)`, …
        if cfg.taint_sink_fns.iter().any(|s| s == name) {
            let receiver_is_param =
                i >= 2 && toks[i - 1].is_punct(".") && toks[i - 2].is_ident(param);
            let arg_is_param = toks.get(i + 1).is_some_and(|n| n.is_punct("(")) && {
                let close = match_delim(toks, i + 1);
                toks[i + 2..close].iter().any(|a| a.is_ident(param))
            };
            if receiver_is_param || arg_is_param {
                return Some(Sink {
                    tok: i,
                    what: format!("is serialized via `{name}`"),
                    comparison: false,
                });
            }
        }
        // Variable-time comparison: the parameter within a short window
        // of `==`/`!=` (mirrors the const_time operand scan).
        if t.is_ident(param) {
            const WINDOW: usize = 4;
            let stop = |t: &Token| {
                t.kind == TokenKind::Punct
                    && matches!(t.text.as_str(), ";" | "{" | "}" | "&&" | "||" | ",")
            };
            let near_cmp = (1..=WINDOW).any(|k| {
                let fwd = toks
                    .get(i + k)
                    .filter(|t| !stop(t))
                    .is_some_and(|t| t.text == "==" || t.text == "!=");
                let back = i
                    .checked_sub(k)
                    .map(|j| &toks[j])
                    .filter(|t| !stop(t))
                    .is_some_and(|t| t.text == "==" || t.text == "!=");
                fwd || back
            });
            if near_cmp {
                return Some(Sink {
                    tok: i,
                    what: "is compared with variable-time `==`/`!=` (use `ct_eq`)".to_string(),
                    comparison: true,
                });
            }
        }
        i += 1;
    }
    None
}
