//! Rule: authentication tags, MACs, and digests must be compared with
//! `ct_eq`, and crypto hot paths must not branch or index on
//! secret-derived values.

use crate::config::Config;
use crate::context::{match_delim, FileContext};
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};

use super::{diag_tok, is_index_base};

const RULE: &str = "const_time";

pub(crate) fn check(ctx: &FileContext, cfg: &Config, out: &mut Vec<Diagnostic>) {
    // The constant-time primitives themselves live in the zeroize module
    // and necessarily operate on the sensitive values.
    if ctx.path.ends_with("/zeroize.rs") {
        return;
    }
    let toks = &ctx.tokens;

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        if ctx.in_test[i] || cfg.ct_exempt_fns.contains(&ctx.enclosing_fn[i]) {
            continue;
        }
        if let Some(name) = ct_operand(toks, i, cfg) {
            out.push(diag_tok(
                RULE,
                ctx,
                i,
                format!(
                    "variable-time `{}` on `{}`: comparing tag/digest material \
                     leaks a timing oracle; use `ct_eq`",
                    t.text, name
                ),
            ));
        }
    }

    if !cfg.is_hot_path(&ctx.path) {
        return;
    }
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("if") && !ctx.in_test[i] {
            // Condition tokens run until the body `{` at bracket depth 0;
            // parenthesized sub-expressions are scanned, not skipped.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() && !(depth == 0 && toks[j].is_punct("{")) {
                match toks[j].text.as_str() {
                    "(" | "[" if toks[j].kind == TokenKind::Punct => depth += 1,
                    ")" | "]" if toks[j].kind == TokenKind::Punct => depth -= 1,
                    _ => {}
                }
                if let Some(name) = secret_flow_ident(&toks[j], cfg) {
                    let name = name.to_string();
                    out.push(diag_tok(
                        RULE,
                        ctx,
                        j,
                        format!("secret-dependent branch on `{name}` in crypto hot path"),
                    ));
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if t.is_punct("[") && i > 0 && is_index_base(&toks[i - 1]) && !ctx.in_test[i] {
            let close = match_delim(toks, i);
            for (j, tok) in toks.iter().enumerate().take(close).skip(i + 1) {
                if let Some(name) = secret_flow_ident(tok, cfg) {
                    let name = name.to_string();
                    out.push(diag_tok(
                        RULE,
                        ctx,
                        j,
                        format!("secret-dependent table index `{name}` in crypto hot path"),
                    ));
                }
            }
        }
        i += 1;
    }
}

fn secret_flow_ident<'a>(t: &'a Token, cfg: &Config) -> Option<&'a str> {
    if t.kind == TokenKind::Ident && cfg.secret_flow_idents.iter().any(|s| s == &t.text) {
        Some(&t.text)
    } else {
        None
    }
}

/// Scans a bounded window on both sides of the comparison at `op` for an
/// identifier whose snake_case parts mark it as tag/digest material.
fn ct_operand(toks: &[Token], op: usize, cfg: &Config) -> Option<String> {
    const WINDOW: usize = 8;
    let stop = |t: &Token| {
        t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}" | "&&" | "||" | ",")
    };
    let mut candidates = Vec::new();
    for k in 1..=WINDOW {
        match op.checked_sub(k).map(|j| &toks[j]) {
            Some(t) if !stop(t) => candidates.push(t),
            _ => break,
        }
    }
    for t in toks.iter().skip(op + 1).take(WINDOW) {
        if stop(t) {
            break;
        }
        candidates.push(t);
    }
    candidates
        .into_iter()
        .find(|t| t.kind == TokenKind::Ident && has_ct_part(&t.text, cfg))
        .map(|t| t.text.clone())
}

/// True if `name`'s snake_case parts include a tag/digest trigger part.
pub(crate) fn has_ct_part(name: &str, cfg: &Config) -> bool {
    name.to_ascii_lowercase()
        .split('_')
        .any(|part| cfg.ct_ident_parts.iter().any(|p| p == part))
}
