//! Rule: sim-deterministic crates must replay bit-identically under a
//! fixed seed.
//!
//! The golden-trace fixture (DESIGN.md §10–12) pins the clean path, but
//! only the paths it executes. This rule makes the three classic
//! sources of silent divergence statically impossible in the
//! deterministic crate set (`core`, `net`, `hypervisor`, `crypto`,
//! `tpm`, outside `#[cfg(test)]`):
//!
//! * `std::collections::HashMap`/`HashSet` — `RandomState` seeds the
//!   hasher per process, so iteration order differs run to run and
//!   leaks straight into event order. The workspace's `BTreeMap`
//!   convention becomes an enforced invariant.
//! * `Instant`/`SystemTime` — wall clocks desynchronize replays; all
//!   sim time flows from the engine's virtual clock.
//! * Ambient randomness (`OsRng`, `thread_rng`, `random`, and calls to
//!   `from_entropy`) — every random draw must come from a seeded DRBG
//!   so the draw stream is part of the replayable state. The DRBG's own
//!   `from_entropy` constructor is the one sanctioned entropy boundary,
//!   exempted via [`Config::entropy_fns`]; *calling* it from sim code
//!   is still flagged.

use crate::config::Config;
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

use super::diag_tok;

const RULE: &str = "determinism";

/// Identifiers that name an ambient (non-seeded) randomness source.
const AMBIENT_RNG: [&str; 3] = ["OsRng", "thread_rng", "from_entropy"];

pub(crate) fn check(ctx: &FileContext, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        // A definition (`fn from_entropy`) is not a use of the name.
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => {
                out.push(diag_tok(
                    RULE,
                    ctx,
                    i,
                    format!(
                        "`{}` iteration order is seeded per process and leaks into \
                         event order; use `BTreeMap`/`BTreeSet` in sim-deterministic \
                         crates",
                        t.text
                    ),
                ));
            }
            "Instant" | "SystemTime" => {
                // `Instant` alone (e.g. in a type position) is already a
                // wall-clock dependency; `Instant::now()` is the common
                // offender. Either way the sim clock is the only time
                // source allowed here.
                out.push(diag_tok(
                    RULE,
                    ctx,
                    i,
                    format!(
                        "`{}` reads the wall clock, which differs across replays; \
                         use the engine's virtual clock",
                        t.text
                    ),
                ));
            }
            name if AMBIENT_RNG.contains(&name) => {
                // The sanctioned entropy boundary (`Drbg::from_entropy`
                // itself) may touch the OS; everything else must draw
                // from a seeded DRBG.
                if cfg.entropy_fns.contains(&ctx.enclosing_fn[i]) {
                    continue;
                }
                out.push(diag_tok(
                    RULE,
                    ctx,
                    i,
                    format!(
                        "`{name}` draws ambient randomness outside the seeded DRBG; \
                         sim code must thread a seeded `Drbg` so draws replay"
                    ),
                ));
            }
            _ => {}
        }
    }
}
