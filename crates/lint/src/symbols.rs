//! The workspace symbol table: every `fn` in every scanned file,
//! indexed by name.
//!
//! Interprocedural rules resolve call sites through this table. The
//! resolution is *name-based* — the linter has no type information — so
//! rules only act on names that resolve **uniquely** among non-test
//! functions ([`SymbolTable::resolve_unique`]). Ambiguous names
//! (`new`, `len`, …) are deliberately skipped: a missed finding is
//! recoverable, a false positive erodes trust in `--deny`. The trade-off
//! is documented in DESIGN.md §14.

use std::collections::BTreeMap;

use crate::callgraph::CallSite;
use crate::context::FileContext;
use crate::items::FnItem;

/// Method names that collide with ubiquitous std collection/iterator
/// APIs. A *method* call spelled `x.push(…)` is almost certainly
/// `Vec::push`, not a workspace function that happens to be named
/// `push` — following the name there manufactures false positives, so
/// method calls with these names are never resolved through the table.
/// Free/UFCS calls (`push(…)`, `SearchState::push(…)`) still resolve.
const STD_METHOD_NAMES: [&str; 24] = [
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "clear",
    "extend",
    "drain",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "next",
    "collect",
    "map",
    "filter",
    "take",
    "clone",
    "write",
    "read",
    "send",
    "recv",
];

/// A reference to one function: indices into the workspace's file list
/// and that file's item list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnKey {
    /// Index into [`crate::Workspace::files`].
    pub file: usize,
    /// Index into that file's `FileContext::items`.
    pub item: usize,
}

/// Workspace-wide function index.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    by_name: BTreeMap<String, Vec<FnKey>>,
}

impl SymbolTable {
    /// Builds the table over all files' parsed items. Functions defined
    /// inside `#[cfg(test)]` regions are excluded: test helpers must
    /// never satisfy (or trigger) a workspace rule.
    pub fn build(files: &[FileContext]) -> Self {
        let mut by_name: BTreeMap<String, Vec<FnKey>> = BTreeMap::new();
        for (fi, ctx) in files.iter().enumerate() {
            for (ii, item) in ctx.items.iter().enumerate() {
                if ctx.in_test.get(item.fn_tok).copied().unwrap_or(false) {
                    continue;
                }
                by_name
                    .entry(item.name.clone())
                    .or_default()
                    .push(FnKey { file: fi, item: ii });
            }
        }
        SymbolTable { by_name }
    }

    /// All workspace functions named `name`, in (file, item) order.
    pub fn resolve(&self, name: &str) -> &[FnKey] {
        self.by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// The single workspace function named `name`, or `None` when the
    /// name is undefined or ambiguous.
    pub fn resolve_unique(&self, name: &str) -> Option<FnKey> {
        match self.resolve(name) {
            [one] => Some(*one),
            _ => None,
        }
    }

    /// Resolves a call site to its unique workspace definition, or
    /// `None` when the name is undefined, ambiguous, or a method call
    /// whose name collides with a std collection/iterator API (see
    /// [`STD_METHOD_NAMES`]).
    pub fn resolve_call(&self, call: &CallSite) -> Option<FnKey> {
        if call.method && STD_METHOD_NAMES.contains(&call.callee.as_str()) {
            return None;
        }
        self.resolve_unique(&call.callee)
    }

    /// Looks an item up by key.
    pub fn item<'a>(&self, files: &'a [FileContext], key: FnKey) -> Option<&'a FnItem> {
        files.get(key.file)?.items.get(key.item)
    }

    /// Number of distinct function names indexed.
    pub fn names(&self) -> usize {
        self.by_name.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    #[test]
    fn unique_and_ambiguous_resolution() {
        let a = FileContext::new("crates/core/src/a.rs", "fn seal_record() {}\nfn new() {}");
        let b = FileContext::new("crates/net/src/b.rs", "fn new() {}");
        let files = vec![a, b];
        let t = SymbolTable::build(&files);
        assert!(t.resolve_unique("seal_record").is_some());
        assert_eq!(t.resolve("new").len(), 2);
        assert!(t.resolve_unique("new").is_none());
        assert!(t.resolve_unique("missing").is_none());
    }

    #[test]
    fn test_fns_are_excluded() {
        let src = "#[cfg(test)]\nmod t { fn helper_only_in_tests() {} }";
        let files = vec![FileContext::new("crates/core/src/a.rs", src)];
        let t = SymbolTable::build(&files);
        assert!(t.resolve_unique("helper_only_in_tests").is_none());
    }
}
