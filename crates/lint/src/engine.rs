//! Workspace scanning, the allowlist ratchet, and report assembly.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::context::{normalize_rule, FileContext};
use crate::diag::Diagnostic;
use crate::rules::{run_all, RULE_NAMES};
use crate::Workspace;

/// One `rule path count` budget line from the allowlist file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Normalized rule name.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Maximum permitted findings for (rule, file).
    pub count: usize,
    /// 1-based line in the allowlist file (for error messages).
    pub line: u32,
}

/// The parsed allowlist: the committed debt budget that may only shrink.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Budget entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the `rule path count` line format; `#` starts a comment.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx as u32 + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let mut parts = body.split_whitespace();
            let (rule, file, count) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(f), Some(c)) => (r, f, c),
                _ => {
                    return Err(format!(
                        "allowlist line {line}: expected `rule path count`, got `{body}`"
                    ))
                }
            };
            if parts.next().is_some() {
                return Err(format!(
                    "allowlist line {line}: trailing fields in `{body}`"
                ));
            }
            let rule = normalize_rule(rule);
            if !RULE_NAMES.contains(&rule.as_str()) {
                return Err(format!("allowlist line {line}: unknown rule `{rule}`"));
            }
            let count: usize = count
                .parse()
                .map_err(|_| format!("allowlist line {line}: bad count `{count}`"))?;
            if count == 0 {
                return Err(format!(
                    "allowlist line {line}: zero-count entry is dead weight; delete it"
                ));
            }
            if let Some(prev) = entries
                .iter()
                .find(|e: &&AllowEntry| e.rule == rule && e.file == file)
            {
                return Err(format!(
                    "allowlist line {line}: duplicate entry `{rule} {file}` \
                     (first budgeted on line {}); merge into one line",
                    prev.line
                ));
            }
            entries.push(AllowEntry {
                rule,
                file: file.to_string(),
                count,
                line,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Loads an allowlist file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }
}

/// The outcome of a workspace scan after applying the allowlist.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Every unsuppressed finding, in path/line order.
    pub findings: Vec<Diagnostic>,
    /// Findings within a (rule, file) budget — known debt.
    pub budgeted: usize,
    /// Deny-mode failures: findings over budget.
    pub violations: Vec<String>,
    /// Deny-mode failures: allowlist entries larger than reality. The
    /// ratchet only turns one way, so these must be tightened.
    pub stale: Vec<String>,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    /// True if `--deny` should exit non-zero.
    pub fn deny_failure(&self) -> bool {
        !self.violations.is_empty() || !self.stale.is_empty()
    }
}

/// Collects the workspace `.rs` files to scan, as (absolute, relative)
/// path pairs sorted by relative path for deterministic output.
pub fn collect_files(root: &Path, cfg: &Config) -> io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !entry.file_type()?.is_dir() || cfg.skip_crates.iter().any(|c| c == &name) {
                continue;
            }
            let src = entry.path().join("src");
            if src.is_dir() {
                walk_rs(&src, root, &mut out)?;
            }
        }
    }
    let top_src = root.join("src");
    if top_src.is_dir() {
        walk_rs(&top_src, root, &mut out)?;
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<(PathBuf, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Scans the workspace and applies the allowlist ratchet.
pub fn scan(root: &Path, cfg: &Config, allow: &Allowlist) -> io::Result<Report> {
    let files = collect_files(root, cfg)?;
    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    // Two passes: lex/parse every file first so the symbol table and
    // call graph span the whole workspace, then run the rules per file.
    let mut ctxs = Vec::with_capacity(files.len());
    for (abs, rel) in &files {
        let src = fs::read_to_string(abs)?;
        ctxs.push(FileContext::new(rel, &src));
    }
    let ws = Workspace::build(ctxs);
    for idx in 0..ws.files.len() {
        report.findings.extend(run_all(&ws, idx, cfg));
    }

    // Group by (rule, file) and compare against budgets.
    let scanned: BTreeSet<&str> = files.iter().map(|(_, rel)| rel.as_str()).collect();
    let mut groups: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in &report.findings {
        *groups
            .entry((d.rule.to_string(), d.file.clone()))
            .or_default() += 1;
    }
    for entry in &allow.entries {
        if !scanned.contains(entry.file.as_str()) {
            report.stale.push(format!(
                "allowlist line {}: `{} {}` names a file that no longer exists in \
                 the scanned workspace; delete the entry",
                entry.line, entry.rule, entry.file
            ));
            continue;
        }
        let actual = groups
            .get(&(entry.rule.clone(), entry.file.clone()))
            .copied()
            .unwrap_or(0);
        if actual < entry.count {
            report.stale.push(format!(
                "allowlist line {}: `{} {}` budgets {} finding(s) but only {} remain; \
                 tighten the entry (the ratchet only shrinks)",
                entry.line, entry.rule, entry.file, entry.count, actual
            ));
        }
    }
    for ((rule, file), actual) in &groups {
        let budget = allow
            .entries
            .iter()
            .find(|e| &e.rule == rule && &e.file == file)
            .map(|e| e.count)
            .unwrap_or(0);
        if *actual > budget {
            report.violations.push(format!(
                "{file}: {actual} `{rule}` finding(s), allowlist budget {budget}"
            ));
        } else {
            report.budgeted += actual;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parse_roundtrip() {
        let text = "# debt budget\npanic_freedom crates/core/src/cloud.rs 2\n\
                    const-time crates/tpm/src/quote.rs 1 # hyphen spelling ok\n";
        let a = Allowlist::parse(text).unwrap();
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.entries[0].count, 2);
        assert_eq!(a.entries[1].rule, "const_time");
    }

    #[test]
    fn allowlist_rejects_bad_lines() {
        assert!(Allowlist::parse("panic_freedom only_two_fields").is_err());
        assert!(Allowlist::parse("no_such_rule a.rs 1").is_err());
        assert!(Allowlist::parse("panic_freedom a.rs zero").is_err());
        assert!(Allowlist::parse("panic_freedom a.rs 0").is_err());
        assert!(Allowlist::parse("panic_freedom a.rs 1 extra").is_err());
    }
}
