//! Property-based tests of scheduler invariants: whatever random workload
//! mix runs, the simulator must conserve time, never overlap runs on a
//! pCPU, and stay deterministic.

use monatt_hypervisor::driver::{VcpuAction, VcpuView, WorkloadDriver};
use monatt_hypervisor::engine::ServerSim;
use monatt_hypervisor::ids::PcpuId;
use monatt_hypervisor::scheduler::SchedParams;
use monatt_hypervisor::time::SimTime;
use monatt_hypervisor::vm::VmConfig;
use proptest::prelude::*;

/// A random compute/block/yield workload driven by a seeded pattern.
#[derive(Debug)]
struct FuzzDriver {
    pattern: Vec<u8>,
    pos: usize,
}

impl FuzzDriver {
    fn new(pattern: Vec<u8>) -> Self {
        FuzzDriver { pattern, pos: 0 }
    }
}

impl WorkloadDriver for FuzzDriver {
    fn next_action(&mut self, _view: &VcpuView) -> VcpuAction {
        let byte = self.pattern[self.pos % self.pattern.len()];
        self.pos += 1;
        match byte % 4 {
            0 => VcpuAction::Compute {
                duration_us: 100 + (byte as u64) * 37,
            },
            1 => VcpuAction::Block {
                duration_us: Some(50 + (byte as u64) * 53),
            },
            2 => VcpuAction::Yield,
            _ => VcpuAction::Compute {
                duration_us: 500 + (byte as u64) * 11,
            },
        }
    }
}

fn arb_pattern() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Run segments on one pCPU never overlap, and total busy time per
    /// pCPU never exceeds elapsed time.
    #[test]
    fn segments_never_overlap_and_time_is_conserved(
        patterns in proptest::collection::vec(arb_pattern(), 1..6),
        pcpus in 1usize..3,
    ) {
        let mut sim = ServerSim::new(pcpus, SchedParams::default());
        for (i, pattern) in patterns.iter().enumerate() {
            sim.create_vm(
                VmConfig::new(&format!("fuzz{i}"), vec![Box::new(FuzzDriver::new(pattern.clone()))])
                    .pin(vec![PcpuId(i % pcpus)]),
            );
        }
        let horizon = 2_000_000u64;
        sim.run_until(SimTime::from_micros(horizon));
        for p in 0..pcpus {
            let mut segs: Vec<(u64, u64)> = sim
                .profile()
                .segments()
                .iter()
                .filter(|s| s.pcpu == PcpuId(p))
                .map(|s| (s.start.as_micros(), s.end.as_micros()))
                .collect();
            segs.sort();
            let mut busy = 0u64;
            for w in segs.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
            }
            for (start, end) in &segs {
                prop_assert!(end > start);
                prop_assert!(*end <= horizon);
                busy += end - start;
            }
            prop_assert!(busy <= horizon, "pcpu{p} busy {busy} > {horizon}");
        }
    }

    /// Per-VM CPU time equals the sum of its recorded segments plus any
    /// in-progress stint, and never exceeds wall clock × assigned pCPUs.
    #[test]
    fn cpu_time_accounting_is_consistent(pattern in arb_pattern()) {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let vm = sim.create_vm(VmConfig::new(
            "fuzz",
            vec![Box::new(FuzzDriver::new(pattern))],
        ));
        sim.run_until(SimTime::from_secs(1));
        let from_segments: u64 = sim
            .profile()
            .vm_segments(vm)
            .map(|s| s.duration_us())
            .sum();
        let reported = sim.vcpu_cpu_time_us(monatt_hypervisor::ids::VcpuId { vm, index: 0 });
        prop_assert!(reported >= from_segments);
        prop_assert!(reported - from_segments <= 30_000, "in-progress stint bounded by a slice");
        prop_assert!(reported <= 1_000_000);
    }

    /// Identical inputs give identical schedules.
    #[test]
    fn fuzzed_schedules_are_deterministic(
        patterns in proptest::collection::vec(arb_pattern(), 1..4),
    ) {
        let run = || {
            let mut sim = ServerSim::new(2, SchedParams::default());
            for (i, pattern) in patterns.iter().enumerate() {
                sim.create_vm(VmConfig::new(
                    &format!("vm{i}"),
                    vec![Box::new(FuzzDriver::new(pattern.clone()))],
                ));
            }
            sim.run_until(SimTime::from_millis(500));
            (
                sim.profile().segments().len(),
                sim.profile().segments().last().copied(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Suspending and resuming a random workload never loses or invents
    /// CPU time.
    #[test]
    fn suspend_resume_conserves_cpu_time(pattern in arb_pattern()) {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let vm = sim.create_vm(VmConfig::new(
            "fuzz",
            vec![Box::new(FuzzDriver::new(pattern))],
        ));
        sim.run_until(SimTime::from_millis(200));
        sim.suspend_vm(vm);
        let at_suspend = sim.vcpu_cpu_time_us(monatt_hypervisor::ids::VcpuId { vm, index: 0 });
        sim.run_until(SimTime::from_millis(600));
        let during = sim.vcpu_cpu_time_us(monatt_hypervisor::ids::VcpuId { vm, index: 0 });
        prop_assert_eq!(at_suspend, during, "suspended VM consumed CPU");
        sim.resume_vm(vm);
        sim.run_until(SimTime::from_millis(900));
        let after = sim.vcpu_cpu_time_us(monatt_hypervisor::ids::VcpuId { vm, index: 0 });
        prop_assert!(after >= during);
    }
}
