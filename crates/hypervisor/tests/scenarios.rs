//! Scenario-level integration tests of the hypervisor simulator: mixes of
//! workloads whose aggregate behaviour is predictable from credit
//! scheduler semantics.

use monatt_hypervisor::driver::{BusyLoop, IdleDriver, ScriptedDriver, VcpuAction};
use monatt_hypervisor::engine::ServerSim;
use monatt_hypervisor::ids::{PcpuId, VcpuId};
use monatt_hypervisor::profile::DescheduleReason;
use monatt_hypervisor::scheduler::SchedParams;
use monatt_hypervisor::time::SimTime;
use monatt_hypervisor::vm::VmConfig;
use monatt_workloads::services::CloudService;

#[test]
fn three_way_contention_shares_thirds() {
    let mut sim = ServerSim::new(1, SchedParams::default());
    let vms: Vec<_> = (0..3)
        .map(|i| {
            sim.create_vm(
                VmConfig::new(&format!("vm{i}"), vec![Box::new(BusyLoop::default())])
                    .pin(vec![PcpuId(0)]),
            )
        })
        .collect();
    sim.run_until(SimTime::from_secs(9));
    for vm in vms {
        let share = sim.profile().relative_cpu_usage(vm, sim.now());
        assert!((share - 1.0 / 3.0).abs() < 0.05, "share = {share}");
    }
}

#[test]
fn io_service_fits_between_cpu_hogs() {
    // An I/O-bound mail service needs ~3% CPU; with boost it gets its
    // slice even against two CPU hogs.
    let mut sim = ServerSim::new(1, SchedParams::default());
    let svc = CloudService::Mail.driver(5);
    let stats = svc.stats();
    sim.create_vm(VmConfig::new("mail", vec![Box::new(svc)]).pin(vec![PcpuId(0)]));
    for i in 0..2 {
        sim.create_vm(
            VmConfig::new(&format!("hog{i}"), vec![Box::new(BusyLoop::default())])
                .pin(vec![PcpuId(0)]),
        );
    }
    sim.run_until(SimTime::from_secs(10));
    let solo = {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let svc = CloudService::Mail.driver(5);
        let stats = svc.stats();
        sim.create_vm(VmConfig::new("mail", vec![Box::new(svc)]));
        sim.run_until(SimTime::from_secs(10));
        let r = stats.borrow().requests;
        r
    };
    let contended = stats.borrow().requests;
    assert!(
        contended as f64 > solo as f64 * 0.65,
        "mail throughput under contention {contended} vs solo {solo}"
    );
}

#[test]
fn slice_expiry_reason_is_recorded() {
    let mut sim = ServerSim::new(1, SchedParams::default());
    let a =
        sim.create_vm(VmConfig::new("a", vec![Box::new(BusyLoop::default())]).pin(vec![PcpuId(0)]));
    sim.create_vm(VmConfig::new("b", vec![Box::new(BusyLoop::default())]).pin(vec![PcpuId(0)]));
    sim.run_until(SimTime::from_secs(1));
    let reasons: Vec<DescheduleReason> = sim.profile().vm_segments(a).map(|s| s.reason).collect();
    assert!(!reasons.is_empty());
    assert!(
        reasons.iter().all(|r| matches!(
            r,
            DescheduleReason::SliceExpired | DescheduleReason::Preempted
        )),
        "{reasons:?}"
    );
}

#[test]
fn multi_vcpu_vm_uses_multiple_pcpus() {
    let mut sim = ServerSim::new(2, SchedParams::default());
    let vm = sim.create_vm(VmConfig::new(
        "wide",
        vec![Box::new(BusyLoop::default()), Box::new(BusyLoop::default())],
    ));
    sim.run_until(SimTime::from_secs(1));
    let t0 = sim.vcpu_cpu_time_us(VcpuId { vm, index: 0 });
    let t1 = sim.vcpu_cpu_time_us(VcpuId { vm, index: 1 });
    assert!(t0 > 900_000 && t1 > 900_000, "t0={t0} t1={t1}");
    // The VM's aggregate exceeds wall clock — two pCPUs.
    assert!(t0 + t1 > 1_800_000);
}

#[test]
fn halted_vm_releases_the_pcpu() {
    let mut sim = ServerSim::new(1, SchedParams::default());
    sim.create_vm(VmConfig::new(
        "short",
        vec![Box::new(ScriptedDriver::new([VcpuAction::Compute {
            duration_us: 10_000,
        }]))],
    ));
    let beneficiary = sim.create_vm(VmConfig::new("long", vec![Box::new(BusyLoop::default())]));
    sim.run_until(SimTime::from_secs(1));
    let share = sim.profile().relative_cpu_usage(beneficiary, sim.now());
    assert!(share > 0.95, "beneficiary should inherit the CPU: {share}");
}

#[test]
fn paused_vm_timer_does_not_fire_across_suspension() {
    // A VM sleeping on a timer is suspended past the timer's expiry; on
    // resume it must not act as if the wake fired during the pause.
    use monatt_hypervisor::driver::{shared, Shared, VcpuView, WorkloadDriver};
    struct TimedWorker {
        wakes: Shared<Vec<u64>>,
        step: usize,
    }
    impl WorkloadDriver for TimedWorker {
        fn next_action(&mut self, view: &VcpuView) -> VcpuAction {
            self.step += 1;
            match self.step {
                1 => VcpuAction::Block {
                    duration_us: Some(50_000),
                },
                2 => {
                    self.wakes.borrow_mut().push(view.now.as_micros());
                    VcpuAction::Compute { duration_us: 1_000 }
                }
                _ => VcpuAction::Halt,
            }
        }
    }
    let mut sim = ServerSim::new(1, SchedParams::default());
    let wakes: Shared<Vec<u64>> = shared(Vec::new());
    let vm = sim.create_vm(VmConfig::new(
        "timed",
        vec![Box::new(TimedWorker {
            wakes: wakes.clone(),
            step: 0,
        })],
    ));
    sim.run_until(SimTime::from_millis(10));
    sim.suspend_vm(vm);
    sim.run_until(SimTime::from_millis(200)); // timer would fire at 50ms
    assert!(wakes.borrow().is_empty(), "woke while suspended");
    sim.resume_vm(vm);
    sim.run_until(SimTime::from_millis(300));
    // After resume, the conservative wake runs the worker.
    assert_eq!(wakes.borrow().len(), 1);
    assert!(wakes.borrow()[0] >= 200_000);
}

#[test]
fn ipi_to_missing_vcpu_is_harmless() {
    let mut sim = ServerSim::new(1, SchedParams::default());
    let vm = sim.create_vm(VmConfig::new(
        "lonely",
        vec![Box::new(ScriptedDriver::new([
            VcpuAction::SendIpi { target_index: 7 },
            VcpuAction::Compute { duration_us: 1_000 },
        ]))],
    ));
    sim.run_until(SimTime::from_millis(100));
    assert_eq!(sim.vcpu_cpu_time_us(VcpuId { vm, index: 0 }), 1_000);
}

#[test]
fn idle_vcpus_cost_nothing() {
    let mut sim = ServerSim::new(1, SchedParams::default());
    let idle = sim.create_vm(VmConfig::new(
        "idle",
        vec![Box::new(IdleDriver), Box::new(IdleDriver)],
    ));
    let busy = sim.create_vm(VmConfig::new("busy", vec![Box::new(BusyLoop::default())]));
    sim.run_until(SimTime::from_secs(2));
    assert_eq!(sim.profile().vm_cpu_time_us(idle), 0);
    assert!(sim.profile().relative_cpu_usage(busy, sim.now()) > 0.95);
}
