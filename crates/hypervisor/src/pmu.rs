//! The Performance Monitor Unit: per-VM hardware-style event counters.
//! The paper lists the PMU as one of the Monitor Module's measurement
//! sources (Section 3.2.4); the engine feeds it scheduling events.

use crate::ids::VmId;
use std::collections::BTreeMap;

/// Event counters for one VM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmCounters {
    /// Times any vCPU of the VM was scheduled onto a pCPU.
    pub schedules: u64,
    /// Times any vCPU was preempted by a higher-priority vCPU.
    pub preemptions: u64,
    /// IPIs sent by the VM's vCPUs.
    pub ipis_sent: u64,
    /// Wake-ups (timer or IPI) of the VM's vCPUs.
    pub wakeups: u64,
    /// Wake-ups that were granted BOOST priority.
    pub boosts: u64,
    /// Voluntary blocks (sleeps).
    pub blocks: u64,
}

/// A bank of per-VM counters.
#[derive(Clone, Debug, Default)]
pub struct Pmu {
    counters: BTreeMap<VmId, VmCounters>,
}

impl Pmu {
    /// Creates an empty PMU.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable counters for `vm`, created on first touch.
    pub fn counters_mut(&mut self, vm: VmId) -> &mut VmCounters {
        self.counters.entry(vm).or_default()
    }

    /// Read-only counters for `vm` (zeroes if never touched).
    pub fn counters(&self, vm: VmId) -> VmCounters {
        self.counters.get(&vm).copied().unwrap_or_default()
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.counters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut pmu = Pmu::new();
        pmu.counters_mut(VmId(1)).ipis_sent += 2;
        pmu.counters_mut(VmId(1)).ipis_sent += 1;
        assert_eq!(pmu.counters(VmId(1)).ipis_sent, 3);
        assert_eq!(pmu.counters(VmId(2)), VmCounters::default());
    }

    #[test]
    fn reset_clears() {
        let mut pmu = Pmu::new();
        pmu.counters_mut(VmId(1)).boosts = 5;
        pmu.reset();
        assert_eq!(pmu.counters(VmId(1)).boosts, 0);
    }
}
