//! Hierarchical timing wheel: O(1) schedule/pop for virtual-time timers.
//!
//! The [`crate::queue::EventQueue`] BinaryHeap pays `O(log n)` per
//! operation, which at the cloud engine's scale target (10⁵ concurrent
//! attestation sessions, each holding a retry timer, a deadline and a
//! window event) puts a comparison tree on the hottest path in the
//! repo. This module is the replacement: a Varghese–Lauck hierarchical
//! timing wheel sized for the full `u64` microsecond virtual clock —
//! **11 levels × 64 slots** (6 bits per level; 11·6 = 66 ≥ 64, so the
//! top level only ever uses 16 of its slots). There is no overflow
//! list and no epoch migration: every future instant files into
//! exactly one slot.
//!
//! ## Ordering contract
//!
//! The wheel pops in exactly the `(due, seq)` total order of the heap
//! it replaces, where `seq` is a caller-supplied monotonically
//! increasing insertion stamp. That equivalence is what lets the cloud
//! engine swap data structures without perturbing a single event — the
//! golden-trace fixture pins it, and the differential proptests in
//! this module check it against the retained BinaryHeap oracle.
//!
//! ## How filing works
//!
//! The wheel keeps a `cursor`: the due time of the most recently
//! popped entry. An entry files at the level of the *highest bit group
//! in which its due time differs from the cursor*, at the slot given
//! by the due time's own bits for that group (absolute indexing, not
//! cursor-relative):
//!
//! ```text
//! level g = (index of highest set bit of (cursor XOR due)) / 6
//! slot  s = (due >> 6g) & 63
//! ```
//!
//! Invariant: an entry sits at level `g` iff its due time agrees with
//! the cursor on every bit group above `g`. Two consequences make the
//! pop path simple:
//!
//! 1. **Levels are strictly ordered.** Every entry at level `g` is due
//!    before every entry at level `g+1` (they agree with the cursor —
//!    and hence each other — above their filing group, and differ
//!    first at it). The global minimum therefore lives in the lowest
//!    non-empty level.
//! 2. **Within a level, slots are ordered.** All entries at level `g`
//!    have a slot index strictly greater than the cursor's group `g`
//!    (equal would mean they belong to a lower level), so the smallest
//!    occupied slot — found by `trailing_zeros` on a per-level 64-bit
//!    occupancy bitmap — holds the minimum.
//!
//! Popping drains that one slot, advances the cursor to the slot's
//! minimum due time and refiles the remainder; refiled entries land at
//! a strictly lower level, so each entry cascades at most 10 times
//! over its lifetime and the amortized cost per operation is O(1).
//! Entries due at exactly the cursor live in a `current` buffer
//! (sorted by `seq`); entries scheduled in the past — permitted by the
//! cloud engine, they fire "now" — live in a sorted `overdue` buffer
//! in front of everything else.
//!
//! ## Cancellation
//!
//! `cancel(seq)` is a tombstone: the entry stays where it is and is
//! skipped (and reclaimed) when the pop path reaches it. The caller
//! must only cancel sequence numbers that are actually pending;
//! cancelling an unknown or already-popped stamp skews the length
//! bookkeeping (it never panics — arithmetic here saturates).

use std::collections::{BTreeSet, VecDeque};

/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS_PER_LEVEL: usize = 1 << LEVEL_BITS;
/// Levels needed to cover all 64 bits of a microsecond clock.
const LEVELS: usize = 11;
/// Mask extracting one level's bit group.
const SLOT_MASK: u64 = (SLOTS_PER_LEVEL as u64) - 1;

#[derive(Debug)]
struct Entry<T> {
    due: u64,
    seq: u64,
    payload: T,
}

/// A hierarchical timing wheel over `(due, seq, payload)` entries.
///
/// Sequence numbers are assigned by the caller and must be unique and
/// monotonically increasing across inserts; the wheel pops entries in
/// ascending `(due, seq)` order, byte-identical to a BinaryHeap with
/// the same tie-break (see the module docs for why that holds).
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// Due time of the most recently popped entry (0 initially).
    cursor: u64,
    /// `LEVELS × SLOTS_PER_LEVEL` slot buckets, row-major by level.
    slots: Vec<Vec<Entry<T>>>,
    /// Per-level bitmap of non-empty slots.
    occupancy: [u64; LEVELS],
    /// Entries scheduled before the cursor, sorted by `(due, seq)`.
    overdue: VecDeque<Entry<T>>,
    /// Entries due exactly at the cursor, sorted by `seq`.
    current: VecDeque<Entry<T>>,
    /// Reusable drain buffer for slot cascades.
    scratch: Vec<Entry<T>>,
    /// Tombstoned sequence numbers awaiting reclamation.
    cancelled: BTreeSet<u64>,
    /// Live (inserted, not popped, not cancelled) entry count.
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel with no pre-reserved slot capacity.
    pub fn new() -> Self {
        Self::with_slot_capacity(0)
    }

    /// Creates an empty wheel whose slot buckets and staging buffers
    /// are pre-reserved to `cap` entries each, so a warmed steady
    /// state schedules and pops without touching the allocator (slot
    /// `Vec`s keep their capacity across drains).
    #[cold]
    pub fn with_slot_capacity(cap: usize) -> Self {
        TimerWheel {
            cursor: 0,
            slots: (0..LEVELS * SLOTS_PER_LEVEL)
                .map(|_| Vec::with_capacity(cap))
                .collect(),
            occupancy: [0; LEVELS],
            overdue: VecDeque::with_capacity(cap),
            current: VecDeque::with_capacity(cap),
            scratch: Vec::with_capacity(cap),
            cancelled: BTreeSet::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. `seq` must be unique and larger than every
    /// previously inserted sequence number.
    pub fn insert(&mut self, due: u64, seq: u64, payload: T) {
        self.len = self.len.saturating_add(1);
        self.file(Entry { due, seq, payload });
    }

    /// Tombstones a pending entry by its sequence number. Returns
    /// `false` if the stamp was already tombstoned. Must only be
    /// called for stamps that are actually pending (see module docs).
    pub fn cancel(&mut self, seq: u64) -> bool {
        if self.cancelled.insert(seq) {
            self.len = self.len.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// The `(due, seq)` key of the next live entry, without removing
    /// it. Takes `&mut self`: peeking may advance the wheel's cursor
    /// and reclaim tombstones (observationally pure — the pop order is
    /// unaffected).
    pub fn peek(&mut self) -> Option<(u64, u64)> {
        if self.len == 0 || !self.settle() {
            return None;
        }
        if let Some(e) = self.overdue.front() {
            return Some((e.due, e.seq));
        }
        self.current.front().map(|e| (e.due, e.seq))
    }

    /// The `(due, payload)` of the next live entry, without removing
    /// it. Same settling caveat as [`Self::peek`].
    pub fn peek_payload(&mut self) -> Option<(u64, &T)> {
        if self.len == 0 || !self.settle() {
            return None;
        }
        if let Some(e) = self.overdue.front() {
            return Some((e.due, &e.payload));
        }
        self.current.front().map(|e| (e.due, &e.payload))
    }

    /// Removes and returns the live entry with the smallest
    /// `(due, seq)` key.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 || !self.settle() {
            return None;
        }
        let e = if self.overdue.front().is_some() {
            self.overdue.pop_front()
        } else {
            self.current.pop_front()
        }?;
        self.len = self.len.saturating_sub(1);
        Some((e.due, e.seq, e.payload))
    }

    /// Files one entry relative to the current cursor.
    fn file(&mut self, e: Entry<T>) {
        if e.due < self.cursor {
            // Scheduled in the past: fires "now", ordered by (due, seq)
            // among its overdue peers. Rare — the cloud engine's clock
            // only moves on pops — so the O(n) ordered insert is fine.
            let pos = self
                .overdue
                .partition_point(|x| (x.due, x.seq) < (e.due, e.seq));
            self.overdue.insert(pos, e);
        } else if e.due == self.cursor {
            // Callers insert with monotone seq, and cascade refills go
            // through `advance` (which sorts), so push_back keeps
            // `current` seq-sorted.
            self.current.push_back(e);
        } else {
            let diff = self.cursor ^ e.due;
            let g = (63u32.saturating_sub(diff.leading_zeros()) / LEVEL_BITS) as usize;
            let s = ((e.due >> (LEVEL_BITS * g as u32)) & SLOT_MASK) as usize;
            if let Some(slot) = self.slots.get_mut(g * SLOTS_PER_LEVEL + s) {
                slot.push(e);
            }
            if let Some(bits) = self.occupancy.get_mut(g) {
                *bits |= 1u64 << s;
            }
        }
    }

    /// Discards tombstoned entries at the front and advances the
    /// cursor until a live entry heads `overdue` or `current`. Returns
    /// `false` when the wheel holds nothing (live or dead) at all.
    fn settle(&mut self) -> bool {
        loop {
            while let Some(e) = self.overdue.front() {
                if self.cancelled.contains(&e.seq) {
                    if let Some(dead) = self.overdue.pop_front() {
                        self.cancelled.remove(&dead.seq);
                    }
                } else {
                    return true;
                }
            }
            while let Some(e) = self.current.front() {
                if self.cancelled.contains(&e.seq) {
                    if let Some(dead) = self.current.pop_front() {
                        self.cancelled.remove(&dead.seq);
                    }
                } else {
                    return true;
                }
            }
            if !self.advance() {
                return false;
            }
        }
    }

    /// Drains the smallest occupied slot of the lowest non-empty
    /// level, advances the cursor to its minimum due time and refiles
    /// the rest (each lands at a strictly lower level — see module
    /// docs — so the cascade terminates). Returns `false` if every
    /// slot is empty.
    fn advance(&mut self) -> bool {
        let mut found = None;
        for (g, bits) in self.occupancy.iter().enumerate() {
            if *bits != 0 {
                found = Some((g, bits.trailing_zeros() as usize));
                break;
            }
        }
        let Some((g, s)) = found else {
            return false;
        };
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        if let Some(slot) = self.slots.get_mut(g * SLOTS_PER_LEVEL + s) {
            scratch.append(slot);
        }
        if let Some(bits) = self.occupancy.get_mut(g) {
            *bits &= !(1u64 << s);
        }
        // Cascaded entries can carry lower stamps than entries filed
        // into the same slot later, so order the drain explicitly.
        scratch.sort_unstable_by_key(|a| (a.due, a.seq));
        if let Some(first) = scratch.first() {
            self.cursor = first.due;
        }
        let m = self.cursor;
        for e in scratch.drain(..) {
            if e.due == m {
                self.current.push_back(e);
            } else {
                self.file(e);
            }
        }
        self.scratch = scratch;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use proptest::prelude::*;

    /// Thin harness assigning monotone stamps, mirroring how the cloud
    /// engine drives the wheel.
    struct Stamped {
        wheel: TimerWheel<u64>,
        next_seq: u64,
    }

    impl Stamped {
        fn new() -> Self {
            Stamped {
                wheel: TimerWheel::new(),
                next_seq: 0,
            }
        }

        fn push(&mut self, due: u64) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.wheel.insert(due, seq, seq);
            seq
        }

        fn pop(&mut self) -> Option<(u64, u64)> {
            self.wheel.pop().map(|(due, _, payload)| (due, payload))
        }
    }

    #[test]
    fn pops_in_due_order() {
        let mut w = Stamped::new();
        w.push(30);
        w.push(10);
        w.push(20);
        assert_eq!(w.pop(), Some((10, 1)));
        assert_eq!(w.pop(), Some((20, 2)));
        assert_eq!(w.pop(), Some((30, 0)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn same_tick_burst_pops_in_insertion_order() {
        let mut w = Stamped::new();
        for _ in 0..8 {
            w.push(5);
        }
        let order: Vec<u64> = std::iter::from_fn(|| w.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn past_scheduling_fires_before_anything_later() {
        let mut w = Stamped::new();
        w.push(10);
        w.push(40);
        assert_eq!(w.pop(), Some((10, 0)));
        // Cursor is now 10; scheduling before it fires next.
        w.push(5);
        w.push(20);
        assert_eq!(w.pop(), Some((5, 2)));
        assert_eq!(w.pop(), Some((20, 3)));
        assert_eq!(w.pop(), Some((40, 1)));
        assert!(w.wheel.is_empty());
    }

    #[test]
    fn multiple_overdue_pop_in_due_then_seq_order() {
        let mut w = Stamped::new();
        w.push(100);
        assert_eq!(w.pop(), Some((100, 0)));
        w.push(7);
        w.push(3);
        w.push(7);
        assert_eq!(w.pop(), Some((3, 2)));
        assert_eq!(w.pop(), Some((7, 1)));
        assert_eq!(w.pop(), Some((7, 3)));
    }

    #[test]
    fn deep_cascades_across_all_levels() {
        // Due times spanning every bit-group boundary of the 64-bit
        // horizon, inserted in reverse, must still drain sorted.
        let mut w = Stamped::new();
        let mut dues: Vec<u64> = (0..11).map(|g| 3u64 << (6 * g)).collect();
        dues.push(u64::MAX);
        dues.push(u64::MAX - 1);
        for &d in dues.iter().rev() {
            w.push(d);
        }
        let mut sorted = dues.clone();
        sorted.sort_unstable();
        let drained: Vec<u64> = std::iter::from_fn(|| w.pop().map(|(d, _)| d)).collect();
        assert_eq!(drained, sorted);
    }

    #[test]
    fn cancel_skips_entries_everywhere() {
        let mut w = Stamped::new();
        let a = w.push(10);
        w.push(10);
        let c = w.push(1 << 30); // far future: lives high in the wheel
        w.push(20);
        assert!(w.wheel.cancel(a));
        assert!(!w.wheel.cancel(a));
        assert!(w.wheel.cancel(c));
        assert_eq!(w.wheel.len(), 2);
        assert_eq!(w.pop(), Some((10, 1)));
        assert_eq!(w.pop(), Some((20, 3)));
        assert_eq!(w.pop(), None);
        assert!(w.wheel.is_empty());
    }

    #[test]
    fn peek_matches_pop_and_does_not_consume() {
        let mut w = Stamped::new();
        w.push(9);
        w.push(4);
        assert_eq!(w.wheel.peek(), Some((4, 1)));
        assert_eq!(w.wheel.peek(), Some((4, 1)));
        assert_eq!(w.wheel.len(), 2);
        assert_eq!(w.pop(), Some((4, 1)));
        assert_eq!(w.wheel.peek(), Some((9, 0)));
    }

    #[test]
    fn interleaved_reinsertion_at_cursor() {
        let mut w = Stamped::new();
        w.push(50);
        assert_eq!(w.pop(), Some((50, 0)));
        // Due exactly at the cursor goes to `current` and still pops
        // before anything later.
        w.push(50);
        w.push(51);
        assert_eq!(w.pop(), Some((50, 1)));
        assert_eq!(w.pop(), Some((51, 2)));
    }

    /// Differential oracle: the retained BinaryHeap queue, with
    /// tombstone-based cancellation layered on top so both sides see
    /// identical operations.
    struct Oracle {
        heap: EventQueue<u64, u64>,
        cancelled: BTreeSet<u64>,
    }

    impl Oracle {
        fn new() -> Self {
            Oracle {
                heap: EventQueue::default(),
                cancelled: BTreeSet::new(),
            }
        }

        /// Pops the next live entry as `(due, stamp)`. The heap assigns
        /// its own internal sequence numbers, but both sides schedule
        /// on exactly the same calls, so the stamp carried as the
        /// payload tracks the heap's tie-break counter one-for-one.
        fn pop(&mut self) -> Option<(u64, u64)> {
            while let Some((due, stamp)) = self.heap.pop() {
                if !self.cancelled.remove(&stamp) {
                    return Some((due, stamp));
                }
            }
            None
        }
    }

    proptest! {
        /// Any interleaving of inserts, pops and cancellations — due
        /// times drawn from a tiny range (same-tick bursts), a medium
        /// range and the far horizon (max-depth cascades) — pops from
        /// the wheel in byte-identical `(due, seq)` order to the
        /// BinaryHeap oracle.
        #[test]
        fn wheel_matches_binary_heap_oracle(
            ops in proptest::collection::vec((0u8..8, 0u64..4, any::<u64>()), 1..300),
        ) {
            let mut wheel = TimerWheel::new();
            let mut oracle = Oracle::new();
            let mut next_seq = 0u64;
            let mut pending: Vec<u64> = Vec::new();
            for (action, small_due, wide) in ops {
                match action {
                    // Insert biased toward same-tick collisions, with
                    // occasional far-future dues to force cascades
                    // across many levels.
                    0..=3 => {
                        let due = match action {
                            0 | 1 => small_due,
                            2 => 1_000 + (wide % 50),
                            _ => wide,
                        };
                        let seq = next_seq;
                        next_seq += 1;
                        wheel.insert(due, seq, seq);
                        oracle.heap.schedule(due, seq);
                        pending.push(seq);
                    }
                    // Pop both, compare.
                    4..=6 => {
                        let got = wheel.pop().map(|(d, s, _)| (d, s));
                        let want = oracle.pop();
                        prop_assert_eq!(got, want);
                        if let Some((_, seq)) = got {
                            pending.retain(|&s| s != seq);
                        }
                    }
                    // Cancel a pending entry on both sides.
                    _ => {
                        if !pending.is_empty() {
                            let victim = pending.remove((wide as usize) % pending.len());
                            wheel.cancel(victim);
                            oracle.cancelled.insert(victim);
                        }
                    }
                }
                prop_assert_eq!(wheel.len(), pending.len());
            }
            // Drain and compare the tails.
            loop {
                let got = wheel.pop().map(|(d, s, _)| (d, s));
                let want = oracle.pop();
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
            prop_assert!(wheel.is_empty());
        }
    }
}
