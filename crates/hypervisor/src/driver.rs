//! The workload driver interface: how guest code is modelled.
//!
//! Each vCPU is driven by a [`WorkloadDriver`]. Whenever the vCPU has
//! exhausted its previously requested compute time, the engine asks the
//! driver for its [`VcpuAction`]. Drivers observe only what real guest
//! code could observe: the current (wall-clock) simulation time and their
//! own accumulated CPU time — which is exactly what the paper's covert
//! channel receiver exploits to infer co-resident activity.

use crate::ids::VcpuId;
use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// What a vCPU does next, as decided by its workload driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcpuAction {
    /// Occupy the CPU for this much *virtual* (on-CPU) time, then ask the
    /// driver again. Preemption transparently pauses and resumes the work.
    Compute {
        /// On-CPU microseconds to consume.
        duration_us: u64,
    },
    /// Block (sleep). `Some(d)` sets a timer wake after `d` microseconds;
    /// `None` blocks indefinitely until an IPI arrives.
    Block {
        /// Timer duration, or `None` to wait for an IPI.
        duration_us: Option<u64>,
    },
    /// Send an inter-processor interrupt to the `target_index`-th vCPU of
    /// the same VM, then immediately ask the driver again. IPIs wake
    /// blocked vCPUs and trigger the credit scheduler's BOOST mechanism.
    SendIpi {
        /// Target vCPU index within this VM.
        target_index: usize,
    },
    /// Voluntarily yield the CPU (go to the back of the run queue) while
    /// remaining runnable.
    Yield,
    /// Stop executing permanently (the guest program finished).
    Halt,
}

/// Why a blocked vCPU woke up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WakeReason {
    /// A timer set by `Block { duration_us: Some(_) }` expired.
    Timer,
    /// Another vCPU sent an IPI.
    Ipi,
}

/// Read-only view the engine exposes to drivers — the information real
/// guest code could legitimately obtain.
#[derive(Clone, Copy, Debug)]
pub struct VcpuView {
    /// This vCPU's identity.
    pub id: VcpuId,
    /// Current simulation (wall-clock) time.
    pub now: SimTime,
    /// Total on-CPU time this vCPU has consumed, in microseconds.
    pub cpu_time_us: u64,
}

/// A guest workload. Implementations decide the compute/block/IPI pattern
/// of one vCPU.
pub trait WorkloadDriver {
    /// Called whenever the vCPU needs a new action: at first schedule, and
    /// after each completed `Compute`, `Block` wake, `Yield` re-schedule or
    /// `SendIpi`.
    fn next_action(&mut self, view: &VcpuView) -> VcpuAction;

    /// Notification that the vCPU woke from a `Block` (before the next
    /// `next_action` call).
    fn on_wake(&mut self, _view: &VcpuView, _reason: WakeReason) {}
}

/// A driver that computes forever in fixed-size chunks — the busiest
/// possible guest. A benign CPU-bound VM under the credit scheduler shows
/// the paper's single 30 ms peak in its usage-interval histogram.
#[derive(Clone, Debug)]
pub struct BusyLoop {
    chunk_us: u64,
}

impl BusyLoop {
    /// Creates a busy loop that requests compute in `chunk_us` chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_us` is zero.
    pub fn new(chunk_us: u64) -> Self {
        assert!(chunk_us > 0, "chunk must be positive");
        BusyLoop { chunk_us }
    }
}

impl Default for BusyLoop {
    fn default() -> Self {
        BusyLoop::new(1_000)
    }
}

impl WorkloadDriver for BusyLoop {
    fn next_action(&mut self, _view: &VcpuView) -> VcpuAction {
        VcpuAction::Compute {
            duration_us: self.chunk_us,
        }
    }
}

/// A driver that never runs: blocks indefinitely immediately.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdleDriver;

impl WorkloadDriver for IdleDriver {
    fn next_action(&mut self, _view: &VcpuView) -> VcpuAction {
        VcpuAction::Block { duration_us: None }
    }
}

/// A driver that halts at first schedule.
#[derive(Clone, Copy, Debug, Default)]
pub struct HaltDriver;

impl WorkloadDriver for HaltDriver {
    fn next_action(&mut self, _view: &VcpuView) -> VcpuAction {
        VcpuAction::Halt
    }
}

/// A driver scripted with a fixed sequence of actions, then halting.
/// Useful for deterministic scheduler tests.
#[derive(Clone, Debug)]
pub struct ScriptedDriver {
    actions: std::collections::VecDeque<VcpuAction>,
}

impl ScriptedDriver {
    /// Creates a driver that performs `actions` in order, then halts.
    pub fn new<I: IntoIterator<Item = VcpuAction>>(actions: I) -> Self {
        ScriptedDriver {
            actions: actions.into_iter().collect(),
        }
    }
}

impl WorkloadDriver for ScriptedDriver {
    fn next_action(&mut self, _view: &VcpuView) -> VcpuAction {
        self.actions.pop_front().unwrap_or(VcpuAction::Halt)
    }
}

/// Shared handle type used by drivers that need to export observations
/// (e.g. completion times, gap measurements) to the test or benchmark that
/// owns the simulation. The simulator is single-threaded, so `Rc<RefCell>`
/// is sufficient.
pub type Shared<T> = Rc<RefCell<T>>;

/// Convenience constructor for [`Shared`] state.
pub fn shared<T>(value: T) -> Shared<T> {
    Rc::new(RefCell::new(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VmId;

    fn view() -> VcpuView {
        VcpuView {
            id: VcpuId {
                vm: VmId(0),
                index: 0,
            },
            now: SimTime::ZERO,
            cpu_time_us: 0,
        }
    }

    #[test]
    fn busy_loop_requests_compute() {
        let mut d = BusyLoop::new(500);
        assert_eq!(
            d.next_action(&view()),
            VcpuAction::Compute { duration_us: 500 }
        );
    }

    #[test]
    fn idle_blocks_forever() {
        let mut d = IdleDriver;
        assert_eq!(
            d.next_action(&view()),
            VcpuAction::Block { duration_us: None }
        );
    }

    #[test]
    fn scripted_sequence_then_halt() {
        let mut d =
            ScriptedDriver::new([VcpuAction::Compute { duration_us: 10 }, VcpuAction::Yield]);
        assert_eq!(
            d.next_action(&view()),
            VcpuAction::Compute { duration_us: 10 }
        );
        assert_eq!(d.next_action(&view()), VcpuAction::Yield);
        assert_eq!(d.next_action(&view()), VcpuAction::Halt);
        assert_eq!(d.next_action(&view()), VcpuAction::Halt);
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn busy_loop_rejects_zero() {
        let _ = BusyLoop::new(0);
    }

    #[test]
    fn shared_state_roundtrip() {
        let s = shared(vec![1, 2]);
        s.borrow_mut().push(3);
        assert_eq!(*s.borrow(), vec![1, 2, 3]);
    }
}
