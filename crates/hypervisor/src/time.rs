//! Simulated time. The hypervisor simulator is a single-threaded
//! discrete-event simulation; [`SimTime`] is an absolute instant and
//! durations are plain microsecond counts.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant in simulated time, in microseconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use monatt_hypervisor::time::SimTime;
///
/// let t = SimTime::ZERO + SimTime::from_millis(30).as_micros();
/// assert_eq!(t.as_millis(), 30);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch.
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration in microseconds since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(&self, earlier: SimTime) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("duration_since: earlier instant is in the future")
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_duration_since(&self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, us: u64) {
        self.0 += us;
    }
}

impl Sub for SimTime {
    type Output = u64;

    fn sub(self, rhs: SimTime) -> u64 {
        self.duration_since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}us)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Microseconds per millisecond, for readable duration arithmetic.
pub const MS: u64 = 1_000;
/// Microseconds per second.
pub const SEC: u64 = 1_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert!((SimTime::from_micros(1_500_000).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        assert_eq!((t + 500).as_micros(), 10_500);
        assert_eq!(t + 500 - t, 500);
        assert_eq!(t.saturating_duration_since(t + 5), 0);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn backwards_duration_panics() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_micros(1));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{:?}", SimTime::from_micros(7)), "SimTime(7us)");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        let mut t = SimTime::ZERO;
        t += 10;
        assert_eq!(t.as_micros(), 10);
    }
}
