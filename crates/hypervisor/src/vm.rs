//! Virtual machine configuration and state within the simulated server.

use crate::driver::WorkloadDriver;
use crate::guest::GuestOs;
use crate::ids::PcpuId;

/// The default credit-scheduler weight (Xen's default is 256).
pub const DEFAULT_WEIGHT: u32 = 256;

/// Lifecycle state of a VM on a server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmState {
    /// Running normally (vCPUs participate in scheduling).
    Running,
    /// Suspended by the controller; vCPUs do not run.
    Suspended,
    /// Terminated; cannot be resumed.
    Terminated,
}

/// Configuration for creating a VM on a simulated server.
pub struct VmConfig {
    /// Human-readable name.
    pub name: String,
    /// Credit-scheduler weight (CPU share relative to other VMs).
    pub weight: u32,
    /// One workload driver per vCPU.
    pub drivers: Vec<Box<dyn WorkloadDriver>>,
    /// Optional explicit pCPU pinning, one entry per vCPU. `None` assigns
    /// vCPUs round-robin.
    pub pinning: Option<Vec<PcpuId>>,
    /// The guest operating system (image + task list).
    pub guest: GuestOs,
}

impl std::fmt::Debug for VmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VmConfig")
            .field("name", &self.name)
            .field("weight", &self.weight)
            .field("vcpus", &self.drivers.len())
            .field("pinning", &self.pinning)
            .finish_non_exhaustive()
    }
}

impl VmConfig {
    /// Creates a config with default weight and a trivial guest OS.
    pub fn new(name: &str, drivers: Vec<Box<dyn WorkloadDriver>>) -> Self {
        VmConfig {
            name: name.to_owned(),
            weight: DEFAULT_WEIGHT,
            drivers,
            pinning: None,
            guest: GuestOs::boot(format!("image-{name}").into_bytes(), &["init"]),
        }
    }

    /// Sets the scheduler weight.
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Pins each vCPU to the given pCPU (one entry per vCPU).
    pub fn pin(mut self, pinning: Vec<PcpuId>) -> Self {
        self.pinning = Some(pinning);
        self
    }

    /// Replaces the guest OS.
    pub fn guest(mut self, guest: GuestOs) -> Self {
        self.guest = guest;
        self
    }
}

/// A VM instantiated on a server.
pub struct Vm {
    /// Human-readable name.
    pub name: String,
    /// Scheduler weight.
    pub weight: u32,
    /// Lifecycle state.
    pub state: VmState,
    /// The guest OS (task lists, image).
    pub guest: GuestOs,
    /// Number of vCPUs.
    pub vcpu_count: usize,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("name", &self.name)
            .field("state", &self.state)
            .field("vcpus", &self.vcpu_count)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::BusyLoop;

    #[test]
    fn config_builder() {
        let cfg = VmConfig::new("victim", vec![Box::new(BusyLoop::default())])
            .weight(512)
            .pin(vec![PcpuId(0)]);
        assert_eq!(cfg.name, "victim");
        assert_eq!(cfg.weight, 512);
        assert_eq!(cfg.drivers.len(), 1);
        assert_eq!(cfg.pinning, Some(vec![PcpuId(0)]));
    }

    #[test]
    fn debug_shows_summary() {
        let cfg = VmConfig::new("x", vec![Box::new(BusyLoop::default())]);
        let repr = format!("{:?}", cfg);
        assert!(repr.contains("\"x\""));
        assert!(repr.contains("vcpus: 1"));
    }
}
