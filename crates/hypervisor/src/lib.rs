//! # monatt-hypervisor
//!
//! A discrete-event simulator of a Xen-style virtualized cloud server, the
//! substrate under the CloudMonatt reproduction's runtime case studies.
//!
//! The paper's two novel attacks (the CPU covert channel of Case Study III
//! and the CPU availability attack of Case Study IV) and their detectors
//! are all artifacts of Xen's credit scheduler. This crate reimplements
//! that scheduler faithfully enough that the attacks *work* and the
//! monitors *see* them:
//!
//! * [`scheduler`] — credit accounting (weight-proportional 30 ms refills,
//!   10 ms ticks debiting the running vCPU), UNDER/OVER priorities and the
//!   wake-up BOOST.
//! * [`engine`] — the deterministic event loop: [`engine::ServerSim`] with
//!   pCPUs, run queues, preemption, slices, timers and IPIs.
//! * [`driver`] — the guest-workload interface ([`driver::WorkloadDriver`]).
//! * [`guest`] — simulated guest OS state: kernel vs. guest-visible task
//!   lists (rootkits hide tasks), VM images.
//! * [`profile`] — the VMM Profile Tool: per-VM virtual running time and
//!   the run-segment log feeding usage-interval histograms.
//! * [`pmu`] — per-VM performance counters.
//! * [`vmi`] — the VM introspection tool reading kernel state from outside
//!   the VM.
//!
//! ## Example: fair sharing under the credit scheduler
//!
//! ```
//! use monatt_hypervisor::driver::BusyLoop;
//! use monatt_hypervisor::engine::ServerSim;
//! use monatt_hypervisor::ids::PcpuId;
//! use monatt_hypervisor::scheduler::SchedParams;
//! use monatt_hypervisor::time::SimTime;
//! use monatt_hypervisor::vm::VmConfig;
//!
//! let mut sim = ServerSim::new(1, SchedParams::default());
//! let a = sim.create_vm(VmConfig::new("a", vec![Box::new(BusyLoop::default())]).pin(vec![PcpuId(0)]));
//! let b = sim.create_vm(VmConfig::new("b", vec![Box::new(BusyLoop::default())]).pin(vec![PcpuId(0)]));
//! sim.run_until(SimTime::from_secs(3));
//! let share_a = sim.profile().relative_cpu_usage(a, sim.now());
//! assert!((share_a - 0.5).abs() < 0.05);
//! # let _ = b;
//! ```

#![warn(missing_docs)]

pub mod driver;
pub mod engine;
pub mod guest;
pub mod ids;
pub mod pmu;
pub mod profile;
pub mod queue;
pub mod scheduler;
pub mod time;
pub mod vm;
pub mod vmi;
pub mod wheel;

pub use driver::{VcpuAction, VcpuView, WakeReason, WorkloadDriver};
pub use engine::ServerSim;
pub use guest::{GuestOs, GuestTask};
pub use ids::{PcpuId, VcpuId, VmId};
pub use profile::{DescheduleReason, ProfileTool, RunSegment};
pub use scheduler::{Priority, SchedParams};
pub use time::SimTime;
pub use vm::{Vm, VmConfig, VmState};
pub use vmi::{VmiError, VmiTool};
