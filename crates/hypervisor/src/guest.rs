//! The simulated guest operating system: kernel task list, guest-visible
//! process listing (which a rootkit can filter), and the measured VM
//! image.
//!
//! This models exactly the state the paper's Case Studies I and II
//! exercise: startup integrity hashes the VM image; runtime integrity
//! compares the *kernel* task list (extracted by VM introspection from
//! guest memory) against what the possibly-compromised guest OS reports.

use monatt_crypto::sha256::sha256;

/// One process in the guest kernel's task list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuestTask {
    /// Process identifier.
    pub pid: u32,
    /// Process name.
    pub name: String,
    /// Whether a rootkit hides this task from guest-visible queries.
    /// The kernel task list (and hence VM introspection) still sees it.
    pub hidden: bool,
}

/// The simulated guest OS state of one VM.
#[derive(Clone, Debug)]
pub struct GuestOs {
    tasks: Vec<GuestTask>,
    next_pid: u32,
    image: Vec<u8>,
}

impl GuestOs {
    /// Boots a guest from a VM image (arbitrary bytes; only its hash
    /// matters to the integrity machinery), with an initial set of system
    /// tasks.
    pub fn boot(image: Vec<u8>, initial_tasks: &[&str]) -> Self {
        let mut os = GuestOs {
            tasks: Vec::new(),
            next_pid: 1,
            image,
        };
        for name in initial_tasks {
            os.spawn_task(name, false);
        }
        os
    }

    /// Spawns a task; returns its pid. `hidden` marks rootkit-concealed
    /// processes.
    pub fn spawn_task(&mut self, name: &str, hidden: bool) -> u32 {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.tasks.push(GuestTask {
            pid,
            name: name.to_owned(),
            hidden,
        });
        pid
    }

    /// Kills a task by pid. Returns true if it existed.
    pub fn kill_task(&mut self, pid: u32) -> bool {
        let before = self.tasks.len();
        self.tasks.retain(|t| t.pid != pid);
        self.tasks.len() != before
    }

    /// What `ps` inside the guest reports: the task list *after* rootkit
    /// filtering. A compromised guest under-reports.
    pub fn visible_tasks(&self) -> Vec<GuestTask> {
        self.tasks.iter().filter(|t| !t.hidden).cloned().collect()
    }

    /// The true kernel task list, as read from guest memory by a VM
    /// introspection tool in the hypervisor.
    pub fn kernel_tasks(&self) -> &[GuestTask] {
        &self.tasks
    }

    /// SHA-256 of the VM image the guest booted from.
    pub fn image_hash(&self) -> [u8; 32] {
        sha256(&self.image)
    }

    /// Mutable access to the raw image bytes (used by image-tampering
    /// attack models before boot-time measurement).
    pub fn image_mut(&mut self) -> &mut Vec<u8> {
        &mut self.image
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn os() -> GuestOs {
        GuestOs::boot(b"ubuntu-image".to_vec(), &["init", "sshd", "cron"])
    }

    #[test]
    fn boots_with_initial_tasks() {
        let os = os();
        assert_eq!(os.kernel_tasks().len(), 3);
        assert_eq!(os.visible_tasks().len(), 3);
        assert_eq!(os.kernel_tasks()[0].pid, 1);
        assert_eq!(os.kernel_tasks()[0].name, "init");
    }

    #[test]
    fn hidden_task_visible_only_to_kernel() {
        let mut os = os();
        let pid = os.spawn_task("cryptominer", true);
        assert_eq!(os.kernel_tasks().len(), 4);
        assert_eq!(os.visible_tasks().len(), 3);
        assert!(os.kernel_tasks().iter().any(|t| t.pid == pid && t.hidden));
    }

    #[test]
    fn kill_task_removes() {
        let mut os = os();
        let pid = os.spawn_task("job", false);
        assert!(os.kill_task(pid));
        assert!(!os.kill_task(pid));
        assert_eq!(os.kernel_tasks().len(), 3);
    }

    #[test]
    fn pids_are_unique_and_monotonic() {
        let mut os = os();
        let a = os.spawn_task("a", false);
        let b = os.spawn_task("b", false);
        assert!(b > a);
    }

    #[test]
    fn image_hash_tracks_tampering() {
        let mut os = os();
        let clean = os.image_hash();
        os.image_mut()[0] ^= 0xff;
        assert_ne!(os.image_hash(), clean);
    }
}
