//! Identifier newtypes for the hypervisor simulator.

use std::fmt;

/// A physical CPU index on a simulated server.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PcpuId(pub usize);

impl fmt::Display for PcpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pcpu{}", self.0)
    }
}

/// A virtual machine identifier, unique within one simulated server.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VmId(pub u32);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// A virtual CPU: the `index`-th vCPU of VM `vm`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VcpuId {
    /// Owning VM.
    pub vm: VmId,
    /// Index within the VM.
    pub index: usize,
}

impl fmt::Display for VcpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.vcpu{}", self.vm, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(PcpuId(2).to_string(), "pcpu2");
        assert_eq!(VmId(7).to_string(), "vm7");
        assert_eq!(
            VcpuId {
                vm: VmId(7),
                index: 1
            }
            .to_string(),
            "vm7.vcpu1"
        );
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let a = VcpuId {
            vm: VmId(1),
            index: 0,
        };
        let b = VcpuId {
            vm: VmId(1),
            index: 0,
        };
        let c = VcpuId {
            vm: VmId(1),
            index: 1,
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: HashSet<_> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
