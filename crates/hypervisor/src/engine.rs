//! The discrete-event simulation engine: a simulated cloud server with
//! physical CPUs, a Xen-style credit scheduler, VMs with driver-modelled
//! guest workloads, and monitoring hooks (profile tool + PMU).
//!
//! The engine is single-threaded and fully deterministic: identical inputs
//! produce identical schedules, which keeps the paper's figures
//! reproducible run-to-run.

use crate::driver::{VcpuAction, VcpuView, WakeReason, WorkloadDriver};
use crate::ids::{PcpuId, VcpuId, VmId};
use crate::pmu::Pmu;
use crate::profile::{DescheduleReason, ProfileTool, RunSegment};
use crate::queue::EventQueue;
use crate::scheduler::{RunState, SchedParams, SchedVcpu};
use crate::time::SimTime;
use crate::vm::{Vm, VmConfig, VmState};
use std::collections::{BTreeMap, VecDeque};

/// Maximum zero-time driver actions (IPIs, zero computes) per interaction
/// before the engine declares a livelock.
const DRIVER_ACTION_BUDGET: usize = 64;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EventKind {
    Tick(PcpuId),
    Accounting,
    ComputeDone { vcpu: VcpuId, generation: u64 },
    SliceExpired { vcpu: VcpuId, generation: u64 },
    Wake { vcpu: VcpuId, generation: u64 },
}

#[derive(Debug, Default)]
struct Pcpu {
    current: Option<VcpuId>,
    queue: VecDeque<VcpuId>,
}

/// A simulated cloud server: pCPUs, scheduler, VMs, and monitoring.
///
/// # Examples
///
/// ```
/// use monatt_hypervisor::driver::BusyLoop;
/// use monatt_hypervisor::engine::ServerSim;
/// use monatt_hypervisor::scheduler::SchedParams;
/// use monatt_hypervisor::time::SimTime;
/// use monatt_hypervisor::vm::VmConfig;
///
/// let mut sim = ServerSim::new(1, SchedParams::default());
/// let vm = sim.create_vm(VmConfig::new("busy", vec![Box::new(BusyLoop::default())]));
/// sim.run_until(SimTime::from_millis(300));
/// let usage = sim.profile().relative_cpu_usage(vm, sim.now());
/// assert!(usage > 0.99);
/// ```
pub struct ServerSim {
    params: SchedParams,
    now: SimTime,
    // Shared substrate with monatt-core's cloud engine; this simulator
    // only schedules into the future (see `crate::queue` on the two
    // engines' intentionally different past-scheduling policies).
    events: EventQueue<SimTime, EventKind>,
    pcpus: Vec<Pcpu>,
    vms: BTreeMap<VmId, Vm>,
    vcpus: BTreeMap<VcpuId, SchedVcpu>,
    drivers: BTreeMap<VcpuId, Box<dyn WorkloadDriver>>,
    profile: ProfileTool,
    pmu: Pmu,
    next_vm: u32,
    next_pin: usize,
    /// Reusable drain buffer for [`Self::try_leap`] (kept across calls
    /// so quiescent fast-forwards do not touch the allocator).
    leap_buf: Vec<(SimTime, EventKind)>,
    /// Reusable rebase buffer for [`Self::try_leap`]: `(previous-firing
    /// key, rebased due, event)`.
    leap_periodic: Vec<(u64, SimTime, EventKind)>,
}

impl std::fmt::Debug for ServerSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerSim")
            .field("now", &self.now)
            .field("pcpus", &self.pcpus.len())
            .field("vms", &self.vms.len())
            .finish_non_exhaustive()
    }
}

impl ServerSim {
    /// Creates a server with `pcpu_count` physical CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `pcpu_count` is zero.
    pub fn new(pcpu_count: usize, params: SchedParams) -> Self {
        assert!(pcpu_count > 0, "need at least one pCPU");
        let mut sim = ServerSim {
            params,
            now: SimTime::ZERO,
            events: EventQueue::new(),
            pcpus: (0..pcpu_count).map(|_| Pcpu::default()).collect(),
            vms: BTreeMap::new(),
            vcpus: BTreeMap::new(),
            drivers: BTreeMap::new(),
            profile: ProfileTool::new(),
            pmu: Pmu::new(),
            next_vm: 0,
            next_pin: 0,
            leap_buf: Vec::new(),
            leap_periodic: Vec::new(),
        };
        for i in 0..pcpu_count {
            sim.push_event(
                SimTime::from_micros(params.tick_us),
                EventKind::Tick(PcpuId(i)),
            );
        }
        sim.push_event(
            SimTime::from_micros(params.acct_period_us),
            EventKind::Accounting,
        );
        sim
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Scheduler parameters in effect.
    pub fn params(&self) -> &SchedParams {
        &self.params
    }

    /// Number of physical CPUs.
    pub fn pcpu_count(&self) -> usize {
        self.pcpus.len()
    }

    /// The VMM profile tool.
    pub fn profile(&self) -> &ProfileTool {
        &self.profile
    }

    /// Mutable access to the profile tool (e.g. to reset a measurement
    /// window).
    pub fn profile_mut(&mut self) -> &mut ProfileTool {
        &mut self.profile
    }

    /// The performance monitor unit.
    pub fn pmu(&self) -> &Pmu {
        &self.pmu
    }

    /// Looks up a VM.
    pub fn vm(&self, vm: VmId) -> Option<&Vm> {
        self.vms.get(&vm)
    }

    /// Mutable VM access (e.g. for guest OS manipulation by attacks).
    pub fn vm_mut(&mut self, vm: VmId) -> Option<&mut Vm> {
        self.vms.get_mut(&vm)
    }

    /// All VM ids, in creation order.
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.vms.keys().copied().collect()
    }

    /// Total on-CPU time a vCPU has consumed.
    pub fn vcpu_cpu_time_us(&self, vcpu: VcpuId) -> u64 {
        let Some(vs) = self.vcpus.get(&vcpu) else {
            return 0;
        };
        let mut t = vs.cpu_time_us;
        if let RunState::Running { since } = vs.state {
            t += self.now.saturating_duration_since(since);
        }
        t
    }

    /// The pCPU a vCPU is pinned to, if the vCPU exists.
    pub fn vcpu_pcpu(&self, vcpu: VcpuId) -> Option<PcpuId> {
        self.vcpus.get(&vcpu).map(|vs| vs.pcpu)
    }

    /// Number of schedulable (not halted/paused) vCPUs pinned to `p` —
    /// the contention the VMM profile tool reports alongside CPU-time
    /// measurements.
    pub fn schedulable_vcpus_on(&self, p: PcpuId) -> usize {
        self.vcpus
            .values()
            .filter(|vs| vs.pcpu == p && vs.is_schedulable())
            .count()
    }

    /// Creates a VM and makes its vCPUs runnable immediately.
    ///
    /// # Panics
    ///
    /// Panics if the config has no drivers, or the pinning length does not
    /// match the driver count, or a pin is out of range.
    pub fn create_vm(&mut self, config: VmConfig) -> VmId {
        assert!(!config.drivers.is_empty(), "VM needs at least one vCPU");
        if let Some(pins) = &config.pinning {
            assert_eq!(
                pins.len(),
                config.drivers.len(),
                "pinning length must match vCPU count"
            );
            for pin in pins {
                assert!(pin.0 < self.pcpus.len(), "pin out of range");
            }
        }
        let vm_id = VmId(self.next_vm);
        self.next_vm += 1;
        let vcpu_count = config.drivers.len();
        self.vms.insert(
            vm_id,
            Vm {
                name: config.name,
                weight: config.weight,
                state: VmState::Running,
                guest: config.guest,
                vcpu_count,
            },
        );
        let mut touched = Vec::new();
        for (index, driver) in config.drivers.into_iter().enumerate() {
            let pcpu = match &config.pinning {
                Some(pins) => pins[index],
                None => {
                    let p = PcpuId(self.next_pin % self.pcpus.len());
                    self.next_pin += 1;
                    p
                }
            };
            let id = VcpuId { vm: vm_id, index };
            self.vcpus.insert(id, SchedVcpu::new(pcpu, config.weight));
            self.drivers.insert(id, driver);
            self.enqueue(id);
            touched.push(pcpu);
        }
        for p in touched {
            self.preempt_check(p);
        }
        vm_id
    }

    /// Suspends a VM: its vCPUs stop being scheduled until
    /// [`Self::resume_vm`]. No-op for unknown or terminated VMs.
    pub fn suspend_vm(&mut self, vm: VmId) {
        if !matches!(self.vms.get(&vm).map(|v| v.state), Some(VmState::Running)) {
            return;
        }
        self.vms.get_mut(&vm).expect("checked").state = VmState::Suspended;
        let ids: Vec<VcpuId> = self.vm_vcpu_ids(vm);
        for id in ids {
            let state = self.vcpus[&id].state;
            match state {
                RunState::Running { .. } => {
                    let p = self.vcpus[&id].pcpu;
                    self.deschedule(id, DescheduleReason::Stopped, RunState::Paused);
                    self.vcpus.get_mut(&id).unwrap().state_before_pause =
                        Some(crate::scheduler::RunStateKind::Runnable);
                    self.dispatch(p);
                }
                RunState::Runnable => {
                    self.remove_from_queue(id);
                    let vs = self.vcpus.get_mut(&id).unwrap();
                    vs.state = RunState::Paused;
                    vs.state_before_pause = Some(crate::scheduler::RunStateKind::Runnable);
                }
                RunState::Blocked => {
                    let vs = self.vcpus.get_mut(&id).unwrap();
                    vs.state = RunState::Paused;
                    vs.generation += 1; // cancel pending timer wakes
                    vs.state_before_pause = Some(crate::scheduler::RunStateKind::Blocked);
                }
                RunState::Paused | RunState::Halted => {}
            }
        }
    }

    /// Resumes a suspended VM. Previously blocked vCPUs are woken
    /// conservatively (their sleep timers were cancelled by suspension).
    /// No-op unless the VM is suspended.
    pub fn resume_vm(&mut self, vm: VmId) {
        if !matches!(self.vms.get(&vm).map(|v| v.state), Some(VmState::Suspended)) {
            return;
        }
        self.vms.get_mut(&vm).expect("checked").state = VmState::Running;
        let ids = self.vm_vcpu_ids(vm);
        let mut touched = Vec::new();
        for id in ids {
            let vs = self.vcpus.get_mut(&id).unwrap();
            if vs.state == RunState::Paused {
                vs.state = RunState::Runnable;
                vs.state_before_pause = None;
                touched.push(vs.pcpu);
                self.enqueue(id);
            }
        }
        for p in touched {
            self.preempt_check(p);
        }
    }

    /// Terminates a VM permanently: all vCPUs halt and never run again.
    pub fn terminate_vm(&mut self, vm: VmId) {
        let Some(v) = self.vms.get_mut(&vm) else {
            return;
        };
        if v.state == VmState::Terminated {
            return;
        }
        v.state = VmState::Terminated;
        let ids = self.vm_vcpu_ids(vm);
        for id in ids {
            let state = self.vcpus[&id].state;
            match state {
                RunState::Running { .. } => {
                    let p = self.vcpus[&id].pcpu;
                    self.deschedule(id, DescheduleReason::Stopped, RunState::Halted);
                    self.dispatch(p);
                }
                RunState::Runnable => {
                    self.remove_from_queue(id);
                    self.vcpus.get_mut(&id).unwrap().state = RunState::Halted;
                }
                RunState::Blocked | RunState::Paused => {
                    let vs = self.vcpus.get_mut(&id).unwrap();
                    vs.state = RunState::Halted;
                    vs.generation += 1;
                }
                RunState::Halted => {}
            }
        }
    }

    /// Runs the simulation until `deadline`, processing all events due by
    /// then. Time never moves backwards; a past deadline is a no-op.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((time, _)) = self.events.peek() {
            if time > deadline {
                break;
            }
            let Some((time, kind)) = self.events.pop() else {
                break;
            };
            debug_assert!(time >= self.now, "event from the past");
            self.now = time;
            self.handle(kind);
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// Runs the simulation for `duration_us` more microseconds.
    pub fn run_for(&mut self, duration_us: u64) {
        let deadline = self.now + duration_us;
        self.run_until(deadline);
    }

    /// Like [`Self::run_until`], but a *quiescent* server — nothing
    /// running, nothing runnable, and no live timer wake due within the
    /// window — is fast-forwarded in O(pending events) instead of
    /// O(elapsed ticks). The fast path is exactly equivalent to eager
    /// processing: periodic tick/accounting events are no-ops on an idle
    /// machine except for the credit refill of blocked vCPUs, which is
    /// applied in closed form (the per-period share is constant while no
    /// state changes, so `n` clamped refills equal one
    /// `min(cap, credits + n·share)`).
    ///
    /// Falls back to [`Self::run_until`] whenever the preconditions do not
    /// hold, so callers may use this unconditionally.
    pub fn run_until_lazy(&mut self, deadline: SimTime) {
        if deadline > self.now && self.try_leap(deadline) {
            return;
        }
        self.run_until(deadline);
    }

    /// Attempts the quiescent fast-forward to `deadline`. Returns `false`
    /// (with all state untouched) when the server is not provably idle for
    /// the whole window.
    ///
    /// Event-order preservation: the queue is drained in pop order and
    /// rebuilt so that the *pop order* of every surviving pair of events
    /// matches what eager processing would have produced. Events left
    /// untouched by the window (due > deadline) are reinserted first, in
    /// drain order — in the eager world their pushes all predate the
    /// window. Periodic events that would have fired inside the window are
    /// rebased to their first occurrence strictly after `deadline` and
    /// reinserted ordered by their *previous* firing instant (that is when
    /// the eager world would have pushed them), ties broken by drain
    /// order. Stale generation-mismatched timers are dropped — the vCPU
    /// generation only ever increments, so they can never become valid.
    fn try_leap(&mut self, deadline: SimTime) -> bool {
        let params = self.params;
        if params.tick_us == 0 || params.acct_period_us == 0 || params.credits_per_acct < 0 {
            return false;
        }
        if self.pcpus.iter().any(|p| p.current.is_some()) {
            return false;
        }
        if self
            .vcpus
            .values()
            .any(|vs| matches!(vs.state, RunState::Running { .. } | RunState::Runnable))
        {
            return false;
        }
        // Drain everything; abort (restoring pop order exactly) if any
        // live wake would fire inside the window. A generation-matched
        // Wake implies the vCPU is still Blocked: every state transition
        // bumps the generation.
        let mut buf = std::mem::take(&mut self.leap_buf);
        buf.clear();
        while let Some((t, kind)) = self.events.pop() {
            buf.push((t, kind));
        }
        let wake_blocks_leap = buf.iter().any(|&(t, kind)| match kind {
            EventKind::Wake { vcpu, generation } => {
                t <= deadline
                    && self
                        .vcpus
                        .get(&vcpu)
                        .is_some_and(|vs| vs.generation == generation)
            }
            _ => false,
        });
        if wake_blocks_leap {
            for &(t, kind) in &buf {
                self.events.schedule(t, kind);
            }
            buf.clear();
            self.leap_buf = buf;
            return false;
        }
        let mut periodic = std::mem::take(&mut self.leap_periodic);
        periodic.clear();
        let mut acct_firings: u64 = 0;
        for &(t, kind) in &buf {
            match kind {
                EventKind::Tick(_) | EventKind::Accounting => {
                    let period = if matches!(kind, EventKind::Accounting) {
                        params.acct_period_us
                    } else {
                        params.tick_us
                    };
                    if t <= deadline {
                        let skipped = deadline.duration_since(t) / period;
                        let last_firing = t + skipped * period;
                        if matches!(kind, EventKind::Accounting) {
                            acct_firings = skipped + 1;
                        }
                        periodic.push((last_firing.as_micros(), last_firing + period, kind));
                    } else {
                        self.events.schedule(t, kind);
                    }
                }
                EventKind::Wake { vcpu, generation } => {
                    let live = self
                        .vcpus
                        .get(&vcpu)
                        .is_some_and(|vs| vs.generation == generation);
                    if live {
                        // Checked above: a live wake here is due after the
                        // deadline; keep it.
                        self.events.schedule(t, kind);
                    }
                }
                EventKind::ComputeDone { .. } | EventKind::SliceExpired { .. } => {
                    // Valid only while the vCPU is Running; nothing is.
                }
            }
        }
        // Stable in-place insertion sort by previous-firing key (at most
        // one entry per pCPU plus accounting — tiny, and allocation-free).
        for i in 1..periodic.len() {
            let mut j = i;
            while j > 0 && periodic[j - 1].0 > periodic[j].0 {
                periodic.swap(j - 1, j);
                j -= 1;
            }
        }
        for &(_, due, kind) in &periodic {
            self.events.schedule(due, kind);
        }
        // Closed-form credit refill for the skipped accounting firings.
        // Schedulable here means Blocked (preconditions exclude the rest),
        // and blocked vCPUs do receive refills under eager processing.
        if acct_firings > 0 {
            let firings = i64::try_from(acct_firings).unwrap_or(i64::MAX);
            for p in 0..self.pcpus.len() {
                let total_weight: u64 = self
                    .vcpus
                    .values()
                    .filter(|vs| vs.pcpu == PcpuId(p) && vs.is_schedulable())
                    .map(|vs| vs.weight as u64)
                    .sum();
                if total_weight == 0 {
                    continue;
                }
                for vs in self
                    .vcpus
                    .values_mut()
                    .filter(|vs| vs.pcpu == PcpuId(p) && vs.is_schedulable())
                {
                    let share = (params.credits_per_acct as i128 * vs.weight as i128
                        / total_weight as i128) as i64;
                    // share >= 0, so the floor clamp can never bind and n
                    // clamped steps collapse to a single min().
                    vs.credits = vs
                        .credits
                        .saturating_add(share.saturating_mul(firings))
                        .min(params.credit_cap);
                }
            }
        }
        self.now = deadline;
        buf.clear();
        self.leap_buf = buf;
        periodic.clear();
        self.leap_periodic = periodic;
        true
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn vm_vcpu_ids(&self, vm: VmId) -> Vec<VcpuId> {
        self.vcpus
            .keys()
            .copied()
            .filter(|id| id.vm == vm)
            .collect()
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        self.events.schedule(time, kind);
    }

    fn view(&self, vcpu: VcpuId) -> VcpuView {
        VcpuView {
            id: vcpu,
            now: self.now,
            cpu_time_us: self.vcpu_cpu_time_us(vcpu),
        }
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::Tick(p) => self.on_tick(p),
            EventKind::Accounting => self.on_accounting(),
            EventKind::ComputeDone { vcpu, generation } => self.on_compute_done(vcpu, generation),
            EventKind::SliceExpired { vcpu, generation } => self.on_slice_expired(vcpu, generation),
            EventKind::Wake { vcpu, generation } => {
                let Some(vs) = self.vcpus.get(&vcpu) else {
                    return;
                };
                if vs.generation == generation && vs.state == RunState::Blocked {
                    self.wake_vcpu(vcpu, WakeReason::Timer);
                }
            }
        }
    }

    fn on_tick(&mut self, p: PcpuId) {
        if let Some(cur) = self.pcpus[p.0].current {
            let params = self.params;
            let vs = self.vcpus.get_mut(&cur).expect("current exists");
            // Sampled debiting (the exploitable Xen behaviour) unless
            // precise accounting charges actual runtime at deschedule.
            if !params.precise_accounting {
                vs.adjust_credits(-params.credits_per_tick, &params);
            }
            // Boost lasts at most until the next tick catches the vCPU.
            vs.boosted = false;
        }
        // Xen's tick only burns credits; it does not trigger a reschedule.
        // Preemption happens on wake tickling, blocking, or slice expiry —
        // this is what gives benign CPU-bound VMs their 30 ms usage
        // intervals (the paper's single benign histogram peak).
        self.push_event(self.now + self.params.tick_us, EventKind::Tick(p));
    }

    fn on_accounting(&mut self) {
        let params = self.params;
        // Weight-proportional refill, computed per pCPU over schedulable
        // vCPUs pinned there.
        for p in 0..self.pcpus.len() {
            let on_p: Vec<VcpuId> = self
                .vcpus
                .iter()
                .filter(|(_, vs)| vs.pcpu == PcpuId(p) && vs.is_schedulable())
                .map(|(id, _)| *id)
                .collect();
            let total_weight: u64 = on_p.iter().map(|id| self.vcpus[id].weight as u64).sum();
            if total_weight == 0 {
                continue;
            }
            for id in on_p {
                let weight = self.vcpus[&id].weight as u64;
                let share = (params.credits_per_acct as i128 * weight as i128
                    / total_weight as i128) as i64;
                self.vcpus
                    .get_mut(&id)
                    .expect("exists")
                    .adjust_credits(share, &params);
            }
        }
        // Re-sort run queues by (possibly changed) priorities, stably.
        for p in 0..self.pcpus.len() {
            let mut q: Vec<VcpuId> = self.pcpus[p].queue.drain(..).collect();
            q.sort_by_key(|id| self.vcpus[id].effective_priority());
            self.pcpus[p].queue = q.into();
        }
        // Like the tick, accounting does not force a reschedule; the new
        // priorities take effect at the next natural scheduling point.
        self.push_event(self.now + params.acct_period_us, EventKind::Accounting);
        // A pCPU left idle with newly runnable work should still dispatch.
        for p in 0..self.pcpus.len() {
            if self.pcpus[p].current.is_none() {
                self.dispatch(PcpuId(p));
            }
        }
    }

    fn on_compute_done(&mut self, vcpu: VcpuId, generation: u64) {
        let Some(vs) = self.vcpus.get_mut(&vcpu) else {
            return;
        };
        if vs.generation != generation || !matches!(vs.state, RunState::Running { .. }) {
            return;
        }
        vs.pending_compute_us = 0;
        let p = vs.pcpu;
        if vs.yield_pending {
            // The yield quantum elapsed: requeue at the back of the class.
            vs.yield_pending = false;
            self.deschedule(vcpu, DescheduleReason::Yielded, RunState::Runnable);
            self.enqueue(vcpu);
            self.dispatch(p);
            return;
        }
        if self.ask_driver(vcpu) {
            let vs = &self.vcpus[&vcpu];
            let gen = vs.generation;
            let deadline = self.now + vs.pending_compute_us;
            self.push_event(
                deadline,
                EventKind::ComputeDone {
                    vcpu,
                    generation: gen,
                },
            );
        } else {
            self.dispatch(p);
        }
    }

    fn on_slice_expired(&mut self, vcpu: VcpuId, generation: u64) {
        let Some(vs) = self.vcpus.get(&vcpu) else {
            return;
        };
        if vs.generation != generation || !matches!(vs.state, RunState::Running { .. }) {
            return;
        }
        let p = vs.pcpu;
        self.deschedule(vcpu, DescheduleReason::SliceExpired, RunState::Runnable);
        self.enqueue(vcpu);
        self.dispatch(p);
    }

    /// Removes a runnable vCPU from its pCPU queue.
    fn remove_from_queue(&mut self, vcpu: VcpuId) {
        let p = self.vcpus[&vcpu].pcpu;
        self.pcpus[p.0].queue.retain(|&id| id != vcpu);
    }

    /// Inserts a runnable vCPU into its queue, FIFO within priority class.
    fn enqueue(&mut self, vcpu: VcpuId) {
        let prio = self.vcpus[&vcpu].effective_priority();
        let p = self.vcpus[&vcpu].pcpu;
        let pos = self.pcpus[p.0]
            .queue
            .iter()
            .position(|id| self.vcpus[id].effective_priority() > prio)
            .unwrap_or(self.pcpus[p.0].queue.len());
        self.pcpus[p.0].queue.insert(pos, vcpu);
    }

    /// If the queue head outranks the running vCPU (or the pCPU is idle),
    /// switch.
    fn preempt_check(&mut self, p: PcpuId) {
        match self.pcpus[p.0].current {
            None => self.dispatch(p),
            Some(cur) => {
                let cur_prio = self.vcpus[&cur].effective_priority();
                let head_prio = self.pcpus[p.0]
                    .queue
                    .front()
                    .map(|id| self.vcpus[id].effective_priority());
                if let Some(head_prio) = head_prio {
                    if head_prio < cur_prio {
                        self.deschedule(cur, DescheduleReason::Preempted, RunState::Runnable);
                        self.pmu.counters_mut(cur.vm).preemptions += 1;
                        self.enqueue(cur);
                        self.dispatch(p);
                    }
                }
            }
        }
    }

    /// Fills an idle pCPU from its run queue.
    fn dispatch(&mut self, p: PcpuId) {
        while self.pcpus[p.0].current.is_none() {
            let Some(next) = self.pcpus[p.0].queue.pop_front() else {
                return;
            };
            self.schedule_in(p, next);
        }
    }

    fn schedule_in(&mut self, p: PcpuId, vcpu: VcpuId) {
        debug_assert!(self.pcpus[p.0].current.is_none());
        {
            let now = self.now;
            let vs = self.vcpus.get_mut(&vcpu).expect("vcpu exists");
            debug_assert_eq!(vs.state, RunState::Runnable);
            vs.state = RunState::Running { since: now };
            vs.generation += 1;
            vs.compute_started = now;
        }
        self.pcpus[p.0].current = Some(vcpu);
        self.pmu.counters_mut(vcpu.vm).schedules += 1;
        if self.vcpus[&vcpu].pending_compute_us == 0 && !self.ask_driver(vcpu) {
            // The driver immediately gave up the CPU; the caller's dispatch
            // loop will pick the next vCPU.
            return;
        }
        let vs = &self.vcpus[&vcpu];
        if !matches!(vs.state, RunState::Running { .. }) {
            return;
        }
        let gen = vs.generation;
        let compute_deadline = self.now + vs.pending_compute_us;
        self.push_event(
            compute_deadline,
            EventKind::ComputeDone {
                vcpu,
                generation: gen,
            },
        );
        self.push_event(
            self.now + self.params.slice_us,
            EventKind::SliceExpired {
                vcpu,
                generation: gen,
            },
        );
    }

    /// Interacts with the vCPU's driver until it commits to an action that
    /// consumes time. Returns `true` if the vCPU is still running with
    /// `pending_compute_us > 0`.
    fn ask_driver(&mut self, vcpu: VcpuId) -> bool {
        let mut driver = self.drivers.remove(&vcpu).expect("driver exists");
        let mut still_running = false;
        let mut budget = DRIVER_ACTION_BUDGET;
        loop {
            if budget == 0 {
                self.drivers.insert(vcpu, driver);
                panic!("driver livelock: {vcpu} issued too many zero-time actions");
            }
            budget -= 1;
            let view = self.view(vcpu);
            match driver.next_action(&view) {
                VcpuAction::Compute { duration_us } => {
                    if duration_us == 0 {
                        continue;
                    }
                    let now = self.now;
                    let vs = self.vcpus.get_mut(&vcpu).expect("exists");
                    vs.pending_compute_us = duration_us;
                    vs.compute_started = now;
                    still_running = true;
                    break;
                }
                VcpuAction::SendIpi { target_index } => {
                    self.pmu.counters_mut(vcpu.vm).ipis_sent += 1;
                    let target = VcpuId {
                        vm: vcpu.vm,
                        index: target_index,
                    };
                    if target != vcpu && self.vcpus.contains_key(&target) {
                        self.wake_vcpu(target, WakeReason::Ipi);
                    }
                    // The wake may have preempted us.
                    if !matches!(self.vcpus[&vcpu].state, RunState::Running { .. }) {
                        break;
                    }
                }
                VcpuAction::Block { duration_us } => {
                    let gen = self.deschedule(vcpu, DescheduleReason::Blocked, RunState::Blocked);
                    self.pmu.counters_mut(vcpu.vm).blocks += 1;
                    if let Some(d) = duration_us {
                        self.push_event(
                            self.now + d,
                            EventKind::Wake {
                                vcpu,
                                generation: gen,
                            },
                        );
                    }
                    break;
                }
                VcpuAction::Yield => {
                    // A yield costs a minimal quantum (1 us): even a
                    // driver that yields in a tight loop makes time
                    // progress instead of livelocking the dispatcher.
                    let now = self.now;
                    let vs = self.vcpus.get_mut(&vcpu).expect("exists");
                    vs.pending_compute_us = 1;
                    vs.compute_started = now;
                    vs.yield_pending = true;
                    still_running = true;
                    break;
                }
                VcpuAction::Halt => {
                    self.deschedule(vcpu, DescheduleReason::Halted, RunState::Halted);
                    break;
                }
            }
        }
        self.drivers.insert(vcpu, driver);
        still_running
    }

    /// Takes the running vCPU off its pCPU, records the run segment, and
    /// moves it to `new_state`. Returns the vCPU's new generation.
    fn deschedule(&mut self, vcpu: VcpuId, reason: DescheduleReason, new_state: RunState) -> u64 {
        let now = self.now;
        let (segment, gen, p) = {
            let vs = self.vcpus.get_mut(&vcpu).expect("vcpu exists");
            let RunState::Running { since } = vs.state else {
                panic!("deschedule of non-running vcpu {vcpu}");
            };
            let ran = now.duration_since(since);
            vs.cpu_time_us += ran;
            if self.params.precise_accounting {
                let debit = (ran as i128 * self.params.credits_per_tick as i128
                    / self.params.tick_us as i128) as i64;
                vs.adjust_credits(-debit, &self.params);
            }
            if vs.pending_compute_us > 0 {
                let batch_ran = now.duration_since(vs.compute_started);
                vs.pending_compute_us = vs.pending_compute_us.saturating_sub(batch_ran);
            }
            vs.state = new_state;
            vs.generation += 1;
            // Boost survives preemption/suspension; any voluntary or
            // scheduler-forced deschedule clears it.
            if !matches!(
                reason,
                DescheduleReason::Preempted | DescheduleReason::Stopped
            ) {
                vs.boosted = false;
            }
            let segment = (ran > 0).then_some(RunSegment {
                vcpu,
                pcpu: vs.pcpu,
                start: since,
                end: now,
                reason,
            });
            (segment, vs.generation, vs.pcpu)
        };
        if let Some(seg) = segment {
            self.profile.record(seg);
        }
        debug_assert_eq!(self.pcpus[p.0].current, Some(vcpu));
        self.pcpus[p.0].current = None;
        gen
    }

    /// Wakes a blocked vCPU, applying the BOOST rule, and preempts if it
    /// now outranks the running vCPU on its pCPU.
    fn wake_vcpu(&mut self, vcpu: VcpuId, reason: WakeReason) {
        {
            let params = self.params;
            let Some(vs) = self.vcpus.get_mut(&vcpu) else {
                return;
            };
            if vs.state != RunState::Blocked {
                return;
            }
            vs.state = RunState::Runnable;
            let boosted = params.boost_enabled && vs.credits >= 0;
            vs.boosted = boosted;
            let counters = self.pmu.counters_mut(vcpu.vm);
            counters.wakeups += 1;
            if boosted {
                counters.boosts += 1;
            }
        }
        // Notify the driver (its next_action will be asked when scheduled).
        let view = self.view(vcpu);
        if let Some(mut driver) = self.drivers.remove(&vcpu) {
            driver.on_wake(&view, reason);
            self.drivers.insert(vcpu, driver);
        }
        let p = self.vcpus[&vcpu].pcpu;
        self.enqueue(vcpu);
        self.preempt_check(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{shared, BusyLoop, IdleDriver, ScriptedDriver, Shared};
    use crate::time::{MS, SEC};

    fn busy_vm(sim: &mut ServerSim, name: &str, pcpu: usize) -> VmId {
        sim.create_vm(
            VmConfig::new(name, vec![Box::new(BusyLoop::new(1_000))]).pin(vec![PcpuId(pcpu)]),
        )
    }

    #[test]
    fn solo_busy_vm_gets_full_cpu() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let vm = busy_vm(&mut sim, "solo", 0);
        sim.run_until(SimTime::from_secs(1));
        // The in-progress run segment (up to 30 ms) is not yet recorded,
        // so allow a small shortfall.
        let usage = sim.profile().relative_cpu_usage(vm, sim.now());
        assert!(usage > 0.95, "usage = {usage}");
    }

    #[test]
    fn two_busy_vms_share_fairly() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let a = busy_vm(&mut sim, "a", 0);
        let b = busy_vm(&mut sim, "b", 0);
        sim.run_until(SimTime::from_secs(3));
        let ua = sim.profile().relative_cpu_usage(a, sim.now());
        let ub = sim.profile().relative_cpu_usage(b, sim.now());
        assert!((ua - 0.5).abs() < 0.05, "a = {ua}");
        assert!((ub - 0.5).abs() < 0.05, "b = {ub}");
    }

    #[test]
    fn weights_bias_the_share() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let heavy = sim.create_vm(
            VmConfig::new("heavy", vec![Box::new(BusyLoop::new(1_000))])
                .weight(512)
                .pin(vec![PcpuId(0)]),
        );
        let light = sim.create_vm(
            VmConfig::new("light", vec![Box::new(BusyLoop::new(1_000))])
                .weight(256)
                .pin(vec![PcpuId(0)]),
        );
        sim.run_until(SimTime::from_secs(5));
        let uh = sim.profile().relative_cpu_usage(heavy, sim.now());
        let ul = sim.profile().relative_cpu_usage(light, sim.now());
        assert!(uh > ul, "heavy {uh} should beat light {ul}");
        assert!((uh / ul - 2.0).abs() < 0.5, "ratio = {}", uh / ul);
    }

    #[test]
    fn benign_busy_vm_runs_full_slices() {
        // Under contention, a CPU-bound VM's usage intervals cluster at
        // the 30 ms slice length — the paper's benign single peak.
        let mut sim = ServerSim::new(1, SchedParams::default());
        let a = busy_vm(&mut sim, "a", 0);
        let _b = busy_vm(&mut sim, "b", 0);
        sim.run_until(SimTime::from_secs(5));
        let hist = sim.profile().interval_histogram(a, 30, MS);
        let total: u64 = hist.iter().sum();
        assert!(total > 0);
        assert!(
            hist[29] as f64 / total as f64 > 0.8,
            "expected dominant 30ms bin, got {hist:?}"
        );
    }

    #[test]
    fn timer_block_wakes_on_time() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let log: Shared<Vec<u64>> = shared(Vec::new());

        struct Sleeper {
            log: Shared<Vec<u64>>,
            rounds: usize,
        }
        impl WorkloadDriver for Sleeper {
            fn next_action(&mut self, view: &VcpuView) -> VcpuAction {
                self.log.borrow_mut().push(view.now.as_micros());
                if self.rounds == 0 {
                    return VcpuAction::Halt;
                }
                self.rounds -= 1;
                VcpuAction::Block {
                    duration_us: Some(5 * MS),
                }
            }
        }
        sim.create_vm(VmConfig::new(
            "sleeper",
            vec![Box::new(Sleeper {
                log: log.clone(),
                rounds: 3,
            })],
        ));
        sim.run_until(SimTime::from_millis(100));
        let times = log.borrow().clone();
        assert_eq!(times, vec![0, 5_000, 10_000, 15_000]);
    }

    #[test]
    fn boost_wake_preempts_busy_vm() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let busy = busy_vm(&mut sim, "busy", 0);
        let waker_log: Shared<Vec<u64>> = shared(Vec::new());

        struct PeriodicWaker {
            log: Shared<Vec<u64>>,
            compute_next: bool,
        }
        impl WorkloadDriver for PeriodicWaker {
            fn next_action(&mut self, view: &VcpuView) -> VcpuAction {
                // Run 1ms immediately after each wake, then sleep 7ms.
                self.compute_next = !self.compute_next;
                if self.compute_next {
                    VcpuAction::Compute { duration_us: 1_000 }
                } else {
                    self.log.borrow_mut().push(view.now.as_micros());
                    VcpuAction::Block {
                        duration_us: Some(7 * MS),
                    }
                }
            }
        }
        let waker = sim.create_vm(
            VmConfig::new(
                "waker",
                vec![Box::new(PeriodicWaker {
                    log: waker_log,
                    compute_next: false,
                })],
            )
            .pin(vec![PcpuId(0)]),
        );
        sim.run_until(SimTime::from_secs(2));
        // The waker wakes every ~8ms and must run promptly thanks to
        // boost: its share is ~1/8 even though the busy VM never yields.
        let uw = sim.profile().relative_cpu_usage(waker, sim.now());
        assert!(uw > 0.10, "waker usage = {uw}");
        assert!(sim.pmu().counters(waker).boosts > 100);
        let ub = sim.profile().relative_cpu_usage(busy, sim.now());
        assert!(ub > 0.8, "busy usage = {ub}");
    }

    #[test]
    fn boost_shortens_wake_latency() {
        // A vCPU that blocks at t=0 and wakes at t=5ms while an equally
        // in-credit busy VM holds the CPU: with BOOST it preempts at 5ms;
        // without, the wake tickle compares UNDER vs UNDER and does not
        // preempt, so the waker waits for the busy VM's full 30ms slice.
        // Deterministic timestamps make the difference exact.
        let first_compute_at = |params: SchedParams| -> u64 {
            let mut sim = ServerSim::new(1, params);
            let log: Shared<Vec<u64>> = shared(Vec::new());
            struct Waker {
                log: Shared<Vec<u64>>,
                step: usize,
            }
            impl WorkloadDriver for Waker {
                fn next_action(&mut self, view: &VcpuView) -> VcpuAction {
                    self.step += 1;
                    match self.step {
                        1 => VcpuAction::Block {
                            duration_us: Some(5 * MS),
                        },
                        2 => {
                            self.log.borrow_mut().push(view.now.as_micros());
                            VcpuAction::Compute { duration_us: 1_000 }
                        }
                        _ => VcpuAction::Halt,
                    }
                }
            }
            // Waker first so it owns the pCPU at t=0 and can block.
            sim.create_vm(
                VmConfig::new(
                    "waker",
                    vec![Box::new(Waker {
                        log: log.clone(),
                        step: 0,
                    })],
                )
                .pin(vec![PcpuId(0)]),
            );
            busy_vm(&mut sim, "busy", 0);
            sim.run_until(SimTime::from_millis(100));
            let times = log.borrow().clone();
            times[0]
        };
        assert_eq!(first_compute_at(SchedParams::default()), 5_000);
        assert_eq!(first_compute_at(SchedParams::without_boost()), 30_000);
    }

    #[test]
    fn ipi_wakes_sibling_vcpu() {
        let mut sim = ServerSim::new(2, SchedParams::default());
        let woken: Shared<Vec<u64>> = shared(Vec::new());

        struct IpiReceiver {
            woken: Shared<Vec<u64>>,
        }
        impl WorkloadDriver for IpiReceiver {
            fn next_action(&mut self, _view: &VcpuView) -> VcpuAction {
                VcpuAction::Block { duration_us: None }
            }
            fn on_wake(&mut self, view: &VcpuView, reason: WakeReason) {
                assert_eq!(reason, WakeReason::Ipi);
                self.woken.borrow_mut().push(view.now.as_micros());
            }
        }
        sim.create_vm(
            VmConfig::new(
                "pair",
                vec![
                    Box::new(ScriptedDriver::new([
                        VcpuAction::Compute { duration_us: 3_000 },
                        VcpuAction::SendIpi { target_index: 1 },
                    ])),
                    Box::new(IpiReceiver {
                        woken: woken.clone(),
                    }),
                ],
            )
            .pin(vec![PcpuId(0), PcpuId(1)]),
        );
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(woken.borrow().clone(), vec![3_000]);
    }

    #[test]
    fn ipi_after_sender_continues() {
        // The sender keeps running after the IPI because it out-prioritizes
        // nothing on its own pCPU.
        let mut sim = ServerSim::new(2, SchedParams::default());
        let vm = sim.create_vm(
            VmConfig::new(
                "pair",
                vec![
                    Box::new(ScriptedDriver::new([
                        VcpuAction::Compute { duration_us: 1_000 },
                        VcpuAction::SendIpi { target_index: 1 },
                        VcpuAction::Compute { duration_us: 1_000 },
                    ])),
                    Box::new(IdleDriver),
                ],
            )
            .pin(vec![PcpuId(0), PcpuId(1)]),
        );
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(
            sim.vcpu_cpu_time_us(VcpuId { vm, index: 0 }),
            2_000,
            "sender should finish both compute batches"
        );
        assert_eq!(sim.pmu().counters(vm).ipis_sent, 1);
    }

    #[test]
    fn halt_stops_consuming() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let vm = sim.create_vm(VmConfig::new(
            "short",
            vec![Box::new(ScriptedDriver::new([VcpuAction::Compute {
                duration_us: 5_000,
            }]))],
        ));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.vcpu_cpu_time_us(VcpuId { vm, index: 0 }), 5_000);
    }

    #[test]
    fn suspend_resume_roundtrip() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let vm = busy_vm(&mut sim, "v", 0);
        sim.run_until(SimTime::from_millis(100));
        sim.suspend_vm(vm);
        let t_suspend = sim.vcpu_cpu_time_us(VcpuId { vm, index: 0 });
        sim.run_until(SimTime::from_millis(300));
        assert_eq!(
            sim.vcpu_cpu_time_us(VcpuId { vm, index: 0 }),
            t_suspend,
            "suspended VM must not consume CPU"
        );
        sim.resume_vm(vm);
        sim.run_until(SimTime::from_millis(400));
        assert!(sim.vcpu_cpu_time_us(VcpuId { vm, index: 0 }) > t_suspend);
        assert_eq!(sim.vm(vm).unwrap().state, VmState::Running);
    }

    #[test]
    fn terminate_is_permanent() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let vm = busy_vm(&mut sim, "v", 0);
        sim.run_until(SimTime::from_millis(50));
        sim.terminate_vm(vm);
        let t = sim.vcpu_cpu_time_us(VcpuId { vm, index: 0 });
        sim.resume_vm(vm); // must be a no-op
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(sim.vcpu_cpu_time_us(VcpuId { vm, index: 0 }), t);
        assert_eq!(sim.vm(vm).unwrap().state, VmState::Terminated);
    }

    #[test]
    fn yield_loop_cannot_livelock() {
        // Regression: a driver that yields forever must not freeze the
        // dispatcher at one instant — each yield costs a minimal quantum.
        struct YieldForever;
        impl WorkloadDriver for YieldForever {
            fn next_action(&mut self, _view: &VcpuView) -> VcpuAction {
                VcpuAction::Yield
            }
        }
        let mut sim = ServerSim::new(1, SchedParams::default());
        let spinner = sim
            .create_vm(VmConfig::new("spinner", vec![Box::new(YieldForever)]).pin(vec![PcpuId(0)]));
        let coworker = busy_vm(&mut sim, "coworker", 0);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(sim.now(), SimTime::from_millis(100));
        // The yielding VM consumed its 1us quanta; the busy VM got real
        // time too.
        assert!(
            sim.vcpu_cpu_time_us(VcpuId {
                vm: spinner,
                index: 0
            }) > 0
        );
        assert!(
            sim.vcpu_cpu_time_us(VcpuId {
                vm: coworker,
                index: 0
            }) > 10_000
        );
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut sim = ServerSim::new(2, SchedParams::default());
            let a = busy_vm(&mut sim, "a", 0);
            let _b = busy_vm(&mut sim, "b", 0);
            let _c = busy_vm(&mut sim, "c", 1);
            sim.run_until(SimTime::from_secs(2));
            (
                sim.vcpu_cpu_time_us(VcpuId { vm: a, index: 0 }),
                sim.profile().segments().len(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_is_monotonic() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        sim.run_until(SimTime::from_millis(10));
        sim.run_until(SimTime::from_millis(5)); // past deadline: no-op
        assert_eq!(sim.now(), SimTime::from_millis(10));
        sim.run_for(5 * MS);
        assert_eq!(sim.now(), SimTime::from_millis(15));
    }

    #[test]
    fn multi_pcpu_isolation() {
        let mut sim = ServerSim::new(2, SchedParams::default());
        let a = busy_vm(&mut sim, "a", 0);
        let b = busy_vm(&mut sim, "b", 1);
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.profile().relative_cpu_usage(a, sim.now()) > 0.95);
        assert!(sim.profile().relative_cpu_usage(b, sim.now()) > 0.95);
    }

    #[test]
    #[should_panic(expected = "need at least one pCPU")]
    fn zero_pcpus_rejected() {
        let _ = ServerSim::new(0, SchedParams::default());
    }

    #[test]
    #[should_panic(expected = "pin out of range")]
    fn bad_pin_rejected() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let _ = sim.create_vm(
            VmConfig::new("x", vec![Box::new(BusyLoop::default())]).pin(vec![PcpuId(5)]),
        );
    }

    #[test]
    fn cpu_time_of_unknown_vcpu_is_zero() {
        let sim = ServerSim::new(1, SchedParams::default());
        assert_eq!(
            sim.vcpu_cpu_time_us(VcpuId {
                vm: VmId(99),
                index: 0
            }),
            0
        );
    }

    #[test]
    fn lazy_leap_matches_eager_credit_refill() {
        // Two blocked vCPUs with unequal weights under a high credit cap:
        // the leap's closed-form refill must equal three eager accounting
        // firings exactly.
        let params = SchedParams {
            credit_cap: 10_000,
            ..SchedParams::default()
        };
        let build = |eager: bool| {
            let mut sim = ServerSim::new(1, params);
            let a = sim.create_vm(
                VmConfig::new("a", vec![Box::new(IdleDriver)])
                    .weight(512)
                    .pin(vec![PcpuId(0)]),
            );
            let b = sim.create_vm(
                VmConfig::new("b", vec![Box::new(IdleDriver)])
                    .weight(256)
                    .pin(vec![PcpuId(0)]),
            );
            // Short eager prefix: both vCPUs block immediately at t=0.
            sim.run_until(SimTime::from_millis(1));
            if eager {
                sim.run_until(SimTime::from_millis(100));
            } else {
                sim.run_until_lazy(SimTime::from_millis(100));
            }
            let credits = |vm| sim.vcpus[&VcpuId { vm, index: 0 }].credits;
            (credits(a), credits(b), sim.now(), sim.events.len())
        };
        let eager = build(true);
        let lazy = build(false);
        assert_eq!(eager, lazy);
        // 3 firings (30/60/90ms) of shares 200 and 100.
        assert_eq!(lazy.0, 600);
        assert_eq!(lazy.1, 300);
    }

    #[test]
    fn lazy_leap_keeps_future_wakes_on_time() {
        // A wake due after the leap window must survive the leap and fire
        // at exactly the eager instant.
        let run = |lazy: bool| {
            let mut sim = ServerSim::new(1, SchedParams::default());
            let log: Shared<Vec<u64>> = shared(Vec::new());
            struct LongSleeper {
                log: Shared<Vec<u64>>,
                rounds: usize,
            }
            impl WorkloadDriver for LongSleeper {
                fn next_action(&mut self, view: &VcpuView) -> VcpuAction {
                    self.log.borrow_mut().push(view.now.as_micros());
                    if self.rounds == 0 {
                        return VcpuAction::Halt;
                    }
                    self.rounds -= 1;
                    VcpuAction::Block {
                        duration_us: Some(50 * MS),
                    }
                }
            }
            sim.create_vm(VmConfig::new(
                "sleeper",
                vec![Box::new(LongSleeper {
                    log: log.clone(),
                    rounds: 2,
                })],
            ));
            sim.run_until(SimTime::from_millis(1));
            if lazy {
                // Wake due at 50ms > 20ms: the leap may proceed but must
                // keep the wake.
                sim.run_until_lazy(SimTime::from_millis(20));
                assert_eq!(sim.now(), SimTime::from_millis(20));
            }
            sim.run_until(SimTime::from_millis(200));
            let wakes = log.borrow().clone();
            wakes
        };
        let eager = run(false);
        assert_eq!(eager, vec![0, 50_000, 100_000]);
        assert_eq!(run(true), eager);
    }

    #[test]
    fn lazy_leap_aborts_for_wake_inside_window() {
        // A wake due inside the window forces the eager path: the sleeper
        // wake schedule is unchanged.
        let mut sim = ServerSim::new(1, SchedParams::default());
        let log: Shared<Vec<u64>> = shared(Vec::new());
        struct Sleeper {
            log: Shared<Vec<u64>>,
            rounds: usize,
        }
        impl WorkloadDriver for Sleeper {
            fn next_action(&mut self, view: &VcpuView) -> VcpuAction {
                self.log.borrow_mut().push(view.now.as_micros());
                if self.rounds == 0 {
                    return VcpuAction::Halt;
                }
                self.rounds -= 1;
                VcpuAction::Block {
                    duration_us: Some(5 * MS),
                }
            }
        }
        sim.create_vm(VmConfig::new(
            "sleeper",
            vec![Box::new(Sleeper {
                log: log.clone(),
                rounds: 3,
            })],
        ));
        sim.run_until_lazy(SimTime::from_millis(100));
        assert_eq!(log.borrow().clone(), vec![0, 5_000, 10_000, 15_000]);
        assert_eq!(sim.now(), SimTime::from_millis(100));
    }

    #[test]
    fn lazy_leap_falls_back_when_busy() {
        // Lazy chunked driving of a busy server must match one eager run.
        let run = |lazy: bool| {
            let mut sim = ServerSim::new(1, SchedParams::default());
            let a = busy_vm(&mut sim, "a", 0);
            let _b = busy_vm(&mut sim, "b", 0);
            if lazy {
                for i in 1..=20 {
                    sim.run_until_lazy(SimTime::from_millis(100 * i));
                }
            } else {
                sim.run_until(SimTime::from_secs(2));
            }
            (
                sim.vcpu_cpu_time_us(VcpuId { vm: a, index: 0 }),
                sim.profile().segments().len(),
                sim.now(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn lazy_leap_on_empty_server_stays_live() {
        // An empty server leaps over an hour, then hosts a VM normally —
        // the rebased tick/accounting events keep the scheduler working.
        let mut sim = ServerSim::new(2, SchedParams::default());
        sim.run_until_lazy(SimTime::from_secs(3600));
        assert_eq!(sim.now(), SimTime::from_secs(3600));
        let vm = busy_vm(&mut sim, "late", 0);
        sim.run_until(SimTime::from_secs(3601));
        let ran = sim.vcpu_cpu_time_us(VcpuId { vm, index: 0 });
        assert!(ran > 950_000, "ran only {ran}us of the post-leap second");
    }

    #[test]
    fn long_simulation_is_stable() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let a = busy_vm(&mut sim, "a", 0);
        let _b = busy_vm(&mut sim, "b", 0);
        sim.run_until(SimTime::from_secs(30));
        let ua = sim.profile().relative_cpu_usage(a, sim.now());
        assert!((ua - 0.5).abs() < 0.02, "long-run share drifted: {ua}");
        assert_eq!(sim.now(), SimTime::from_secs(30));
        let _ = SEC; // keep the import used
    }
}
