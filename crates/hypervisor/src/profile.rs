//! The VMM Profile Tool (Section 4.5.2): observes vCPU transitions on each
//! physical core and records the virtual running time of each VM, plus the
//! run-segment log that feeds the covert-channel interval histogram
//! (Section 4.4.2).

use crate::ids::{PcpuId, VcpuId, VmId};
use crate::time::SimTime;
use std::collections::BTreeMap;

/// Why a run segment ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DescheduleReason {
    /// The vCPU blocked voluntarily (sleep / I/O wait).
    Blocked,
    /// A higher-priority vCPU preempted it.
    Preempted,
    /// Its 30 ms slice expired.
    SliceExpired,
    /// It yielded voluntarily.
    Yielded,
    /// The guest program halted.
    Halted,
    /// The VM was suspended or terminated by the hypervisor.
    Stopped,
}

/// One contiguous stretch of CPU occupancy by a vCPU — a "CPU usage
/// interval" in the paper's terminology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSegment {
    /// The vCPU that ran.
    pub vcpu: VcpuId,
    /// The pCPU it ran on.
    pub pcpu: PcpuId,
    /// Stint start.
    pub start: SimTime,
    /// Stint end.
    pub end: SimTime,
    /// Why it was descheduled.
    pub reason: DescheduleReason,
}

impl RunSegment {
    /// Duration of the segment in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end.duration_since(self.start)
    }
}

/// The profile tool: per-VM virtual running time plus the segment log.
#[derive(Clone, Debug, Default)]
pub struct ProfileTool {
    segments: Vec<RunSegment>,
    vm_cpu_time_us: BTreeMap<VmId, u64>,
    window_start: SimTime,
}

impl ProfileTool {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed run segment (called by the engine on every
    /// deschedule).
    pub fn record(&mut self, segment: RunSegment) {
        *self.vm_cpu_time_us.entry(segment.vcpu.vm).or_insert(0) += segment.duration_us();
        self.segments.push(segment);
    }

    /// All recorded segments since the last [`Self::reset_window`].
    pub fn segments(&self) -> &[RunSegment] {
        &self.segments
    }

    /// Segments belonging to one VM.
    pub fn vm_segments(&self, vm: VmId) -> impl Iterator<Item = &RunSegment> {
        self.segments.iter().filter(move |s| s.vcpu.vm == vm)
    }

    /// Total virtual running time of `vm` in the current window
    /// (`CPU_measure` in the paper).
    pub fn vm_cpu_time_us(&self, vm: VmId) -> u64 {
        self.vm_cpu_time_us.get(&vm).copied().unwrap_or(0)
    }

    /// Relative CPU usage of `vm`: virtual running time divided by the
    /// wall-clock window length (Section 4.5.3). Returns 0 for an empty
    /// window.
    pub fn relative_cpu_usage(&self, vm: VmId, now: SimTime) -> f64 {
        let window = now.saturating_duration_since(self.window_start);
        if window == 0 {
            return 0.0;
        }
        self.vm_cpu_time_us(vm) as f64 / window as f64
    }

    /// When the current measurement window began.
    pub fn window_start(&self) -> SimTime {
        self.window_start
    }

    /// Starts a new measurement window at `now`: clears segments and
    /// per-VM counters.
    pub fn reset_window(&mut self, now: SimTime) {
        self.segments.clear();
        self.vm_cpu_time_us.clear();
        self.window_start = now;
    }

    /// Builds a usage-interval histogram for `vm`: counts of segment
    /// durations falling in `(0, w], (w, 2w], …` with `bins` bins, the
    /// last bin clamping longer segments — mirroring the Trust Evidence
    /// Register programming of Section 4.4.2.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `bin_width_us == 0`.
    pub fn interval_histogram(&self, vm: VmId, bins: usize, bin_width_us: u64) -> Vec<u64> {
        assert!(bins > 0 && bin_width_us > 0, "invalid histogram shape");
        let mut hist = vec![0u64; bins];
        for seg in self.vm_segments(vm) {
            let d = seg.duration_us();
            if d == 0 {
                continue;
            }
            let bin = (((d - 1) / bin_width_us) as usize).min(bins - 1);
            hist[bin] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(vm: u32, start_us: u64, end_us: u64) -> RunSegment {
        RunSegment {
            vcpu: VcpuId {
                vm: VmId(vm),
                index: 0,
            },
            pcpu: PcpuId(0),
            start: SimTime::from_micros(start_us),
            end: SimTime::from_micros(end_us),
            reason: DescheduleReason::Blocked,
        }
    }

    #[test]
    fn accumulates_cpu_time_per_vm() {
        let mut p = ProfileTool::new();
        p.record(seg(1, 0, 5_000));
        p.record(seg(1, 10_000, 12_000));
        p.record(seg(2, 5_000, 10_000));
        assert_eq!(p.vm_cpu_time_us(VmId(1)), 7_000);
        assert_eq!(p.vm_cpu_time_us(VmId(2)), 5_000);
        assert_eq!(p.vm_cpu_time_us(VmId(3)), 0);
    }

    #[test]
    fn relative_usage() {
        let mut p = ProfileTool::new();
        p.record(seg(1, 0, 30_000));
        let usage = p.relative_cpu_usage(VmId(1), SimTime::from_micros(60_000));
        assert!((usage - 0.5).abs() < 1e-9);
        assert_eq!(p.relative_cpu_usage(VmId(1), SimTime::ZERO), 0.0);
    }

    #[test]
    fn window_reset() {
        let mut p = ProfileTool::new();
        p.record(seg(1, 0, 10_000));
        p.reset_window(SimTime::from_micros(10_000));
        assert_eq!(p.vm_cpu_time_us(VmId(1)), 0);
        assert!(p.segments().is_empty());
        p.record(seg(1, 10_000, 40_000));
        let usage = p.relative_cpu_usage(VmId(1), SimTime::from_micros(40_000));
        assert!((usage - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_binning() {
        let mut p = ProfileTool::new();
        p.record(seg(1, 0, 4_600)); // 4.6 ms -> bin 4
        p.record(seg(1, 10_000, 11_000)); // 1.0 ms -> bin 0
        p.record(seg(1, 20_000, 80_000)); // 60 ms -> clamped to bin 29
        p.record(seg(2, 0, 1_000)); // other VM, excluded
        let h = p.interval_histogram(VmId(1), 30, 1_000);
        assert_eq!(h[4], 1);
        assert_eq!(h[0], 1);
        assert_eq!(h[29], 1);
        assert_eq!(h.iter().sum::<u64>(), 3);
    }

    #[test]
    fn vm_segments_filter() {
        let mut p = ProfileTool::new();
        p.record(seg(1, 0, 1));
        p.record(seg(2, 1, 2));
        assert_eq!(p.vm_segments(VmId(1)).count(), 1);
    }
}
