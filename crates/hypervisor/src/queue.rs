//! The shared virtual-time event queue under both discrete-event engines.
//!
//! Two simulators in this workspace pop timestamped events off a heap:
//! the per-server hypervisor simulator ([`crate::engine::ServerSim`],
//! keyed by [`crate::time::SimTime`]) and the cloud-level protocol
//! engine in `monatt-core` (keyed by a `u64` microsecond wall clock).
//! They used to carry two structurally identical heaps with subtly
//! different tie-break plumbing; this module is the one well-specified
//! substrate both build on.
//!
//! ## Ordering contract
//!
//! Events pop strictly in `(key, seq)` order: earliest key first, and
//! within one instant, insertion order (`seq` is assigned at
//! [`EventQueue::schedule`] time and never reused). Because `seq` is
//! unique the order is total — replaying the same schedule pops the
//! same events in the same order every time, which is what keeps both
//! simulators deterministic without per-entity clocks.
//!
//! ## Intentional divergence between the two engines
//!
//! The queue itself allows scheduling at any key, including one earlier
//! than the last pop. What the engines do with that differs, on
//! purpose:
//!
//! * `ServerSim::run_until` asserts monotonicity (`debug_assert!` that
//!   no popped event predates `now`): the hypervisor only ever
//!   schedules into the future, so a past event there is a bug.
//! * The cloud engine *permits* past scheduling — a remediation
//!   response can advance the wall clock past instants scheduled
//!   before it ran, and such events simply fire "now" (see
//!   `monatt-core`'s `engine` module).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event.
#[derive(Debug)]
struct Entry<K, T> {
    key: K,
    seq: u64,
    payload: T,
}

impl<K: Ord, T> PartialEq for Entry<K, T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}

impl<K: Ord, T> Eq for Entry<K, T> {}

impl<K: Ord, T> PartialOrd for Entry<K, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, T> Ord for Entry<K, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; invert so the earliest (key, seq)
        // pair pops first. `seq` is unique, so the order is total.
        (&other.key, other.seq).cmp(&(&self.key, self.seq))
    }
}

/// A virtual-time event queue with deterministic FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<K, T> {
    heap: BinaryHeap<Entry<K, T>>,
    next_seq: u64,
    max_depth: usize,
}

impl<K: Ord, T> Default for EventQueue<K, T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            max_depth: 0,
        }
    }
}

impl<K: Ord + Copy, T> EventQueue<K, T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at virtual time `key`. Keys in the past are
    /// accepted; whether that is legal is the caller's policy (see the
    /// module docs on the two engines' divergence).
    pub fn schedule(&mut self, key: K, payload: T) {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.heap.push(Entry { key, seq, payload });
        self.max_depth = self.max_depth.max(self.heap.len());
    }

    /// The key and payload of the earliest event, if any.
    pub fn peek(&self) -> Option<(K, &T)> {
        self.heap.peek().map(|e| (e.key, &e.payload))
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(K, T)> {
        self.heap.pop().map(|e| (e.key, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of pending events since construction.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut q = EventQueue::new();
        q.schedule(30u64, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_keys_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third", "fourth"] {
            q.schedule(5u64, label);
        }
        let drained: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(drained, ["first", "second", "third", "fourth"]);
    }

    #[test]
    fn works_with_non_u64_keys() {
        use crate::time::SimTime;
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), 'b');
        q.schedule(SimTime::from_micros(3), 'a');
        assert_eq!(q.peek(), Some((SimTime::from_micros(3), &'a')));
        assert_eq!(q.pop(), Some((SimTime::from_micros(3), 'a')));
        assert_eq!(q.pop(), Some((SimTime::from_micros(7), 'b')));
    }

    #[test]
    fn max_depth_is_a_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.max_depth(), 0);
        q.schedule(1u64, ());
        q.schedule(2, ());
        q.schedule(3, ());
        q.pop();
        q.pop();
        q.schedule(4, ());
        assert_eq!(q.max_depth(), 3);
        assert_eq!(q.len(), 2);
    }
}
