//! Credit-scheduler policy state, modelled on Xen's credit1 scheduler:
//! weighted proportional-share credits, 10 ms accounting ticks that debit
//! the *currently running* vCPU, 30 ms credit refills, and the BOOST
//! priority for vCPUs that wake from sleep while in credit.
//!
//! Both attacks reproduced from the paper exploit this exact mechanism
//! set: the covert channel uses boost-on-wake for fine-grained CPU
//! control, and the availability attack combines boost with tick-dodging
//! (sleeping across the sampling instants so the attacker is never the one
//! debited — the vulnerability described by Zhou et al. and exploited in
//! Section 4.5 of the paper).

use crate::ids::PcpuId;
use crate::time::SimTime;

/// Scheduler tuning parameters. Defaults match Xen's credit1 scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedParams {
    /// Accounting tick period (Xen: 10 ms). The running vCPU is debited at
    /// each tick.
    pub tick_us: u64,
    /// Maximum time slice before a running vCPU is requeued (Xen: 30 ms).
    pub slice_us: u64,
    /// Credit refill period (Xen: 30 ms).
    pub acct_period_us: u64,
    /// Credits debited from the running vCPU at each tick (Xen: 100).
    pub credits_per_tick: i64,
    /// Credits distributed per pCPU per accounting period (Xen: 300).
    pub credits_per_acct: i64,
    /// Upper clamp on a vCPU's credit balance. Prevents unbounded hoarding
    /// while letting idle vCPUs "build up credits" as the paper's covert
    /// channel sender does.
    pub credit_cap: i64,
    /// Lower clamp on a vCPU's credit balance.
    pub credit_floor: i64,
    /// Whether wake-up BOOST is enabled. Disabling it removes the covert
    /// channel's instant preemption (but not the availability attack,
    /// whose root cause is tick sampling).
    pub boost_enabled: bool,
    /// Precise credit accounting: debit each vCPU for its *actual* runtime
    /// at every deschedule instead of sampling whoever runs at the 10 ms
    /// tick. This closes the tick-dodging vulnerability that the
    /// availability attack exploits — the hardening ablation.
    pub precise_accounting: bool,
}

impl Default for SchedParams {
    fn default() -> Self {
        SchedParams {
            tick_us: 10_000,
            slice_us: 30_000,
            acct_period_us: 30_000,
            credits_per_tick: 100,
            credits_per_acct: 300,
            credit_cap: 300,
            credit_floor: -600,
            boost_enabled: true,
            precise_accounting: false,
        }
    }
}

impl SchedParams {
    /// Xen defaults with BOOST disabled (the scheduler-hardening ablation).
    pub fn without_boost() -> Self {
        SchedParams {
            boost_enabled: false,
            ..SchedParams::default()
        }
    }

    /// Xen defaults with precise (non-sampled) credit accounting — the
    /// hardening that defeats the tick-dodging availability attack.
    pub fn with_precise_accounting() -> Self {
        SchedParams {
            precise_accounting: true,
            ..SchedParams::default()
        }
    }
}

/// Effective scheduling priority, strongest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Woke from sleep while in credit; preempts UNDER and OVER.
    Boost,
    /// Credit balance is non-negative.
    Under,
    /// Credit balance is negative (over its fair share).
    Over,
}

/// Run state of a vCPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// On a pCPU since the given instant.
    Running {
        /// When this stint began.
        since: SimTime,
    },
    /// Waiting in a run queue.
    Runnable,
    /// Blocked (sleeping), possibly with a pending timer wake.
    Blocked,
    /// Suspended by the hypervisor (VM pause); not schedulable.
    Paused,
    /// Finished for good.
    Halted,
}

/// Per-vCPU scheduler bookkeeping.
#[derive(Clone, Debug)]
pub struct SchedVcpu {
    /// The pCPU this vCPU is pinned to.
    pub pcpu: PcpuId,
    /// Scheduler weight inherited from the VM.
    pub weight: u32,
    /// Current run state.
    pub state: RunState,
    /// Credit balance.
    pub credits: i64,
    /// Whether the vCPU currently holds wake-up boost.
    pub boosted: bool,
    /// Remaining on-CPU time of the driver's current `Compute` request.
    pub pending_compute_us: u64,
    /// When the current compute batch started consuming CPU (valid while
    /// running with `pending_compute_us > 0`).
    pub compute_started: SimTime,
    /// Monotonic counter bumped on every schedule-in/out; stale timer
    /// events carry the generation they were scheduled under and are
    /// dropped on mismatch.
    pub generation: u64,
    /// Set while the vCPU is consuming the minimal quantum a `Yield`
    /// costs; when the quantum completes, the vCPU is requeued instead of
    /// asking its driver again. (Guarantees time progress even for a
    /// driver that yields in a loop.)
    pub yield_pending: bool,
    /// Total on-CPU microseconds consumed.
    pub cpu_time_us: u64,
    /// State preserved across VM suspension (so resume restores it).
    pub state_before_pause: Option<RunStateKind>,
}

/// A `RunState` without payload, for suspension bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStateKind {
    /// Was runnable (or running).
    Runnable,
    /// Was blocked.
    Blocked,
    /// Was halted.
    Halted,
}

impl SchedVcpu {
    /// Creates a fresh runnable vCPU pinned to `pcpu`.
    pub fn new(pcpu: PcpuId, weight: u32) -> Self {
        SchedVcpu {
            pcpu,
            weight,
            state: RunState::Runnable,
            credits: 0,
            boosted: false,
            pending_compute_us: 0,
            compute_started: SimTime::ZERO,
            generation: 0,
            yield_pending: false,
            cpu_time_us: 0,
            state_before_pause: None,
        }
    }

    /// The effective priority used for queueing and preemption.
    pub fn effective_priority(&self) -> Priority {
        if self.boosted {
            Priority::Boost
        } else if self.credits >= 0 {
            Priority::Under
        } else {
            Priority::Over
        }
    }

    /// Applies a credit delta, clamping to the configured bounds.
    pub fn adjust_credits(&mut self, delta: i64, params: &SchedParams) {
        self.credits = (self.credits + delta)
            .min(params.credit_cap)
            .max(params.credit_floor);
    }

    /// True if this vCPU participates in scheduling (not halted/paused).
    pub fn is_schedulable(&self) -> bool {
        !matches!(self.state, RunState::Halted | RunState::Paused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_xen() {
        let p = SchedParams::default();
        assert_eq!(p.tick_us, 10_000);
        assert_eq!(p.slice_us, 30_000);
        assert_eq!(p.acct_period_us, 30_000);
        assert_eq!(p.credits_per_tick, 100);
        assert!(p.boost_enabled);
        assert!(!SchedParams::without_boost().boost_enabled);
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::Boost < Priority::Under);
        assert!(Priority::Under < Priority::Over);
    }

    #[test]
    fn effective_priority_transitions() {
        let mut v = SchedVcpu::new(PcpuId(0), 256);
        assert_eq!(v.effective_priority(), Priority::Under);
        v.credits = -1;
        assert_eq!(v.effective_priority(), Priority::Over);
        v.boosted = true;
        assert_eq!(v.effective_priority(), Priority::Boost);
    }

    #[test]
    fn credit_clamping() {
        let p = SchedParams::default();
        let mut v = SchedVcpu::new(PcpuId(0), 256);
        v.adjust_credits(10_000, &p);
        assert_eq!(v.credits, p.credit_cap);
        v.adjust_credits(-100_000, &p);
        assert_eq!(v.credits, p.credit_floor);
    }

    #[test]
    fn schedulability() {
        let mut v = SchedVcpu::new(PcpuId(0), 256);
        assert!(v.is_schedulable());
        v.state = RunState::Halted;
        assert!(!v.is_schedulable());
        v.state = RunState::Paused;
        assert!(!v.is_schedulable());
        v.state = RunState::Blocked;
        assert!(v.is_schedulable());
    }
}
