//! The VM Introspection tool (Section 2.1 and Case Study II): a
//! hypervisor-level monitor that probes a target VM's memory to extract
//! its kernel state from *outside* the VM — so even a compromised guest OS
//! cannot hide from it.

use crate::engine::ServerSim;
use crate::guest::GuestTask;
use crate::ids::VmId;

/// Errors from introspection requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmiError {
    /// The target VM does not exist on this server.
    UnknownVm,
}

impl std::fmt::Display for VmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmiError::UnknownVm => write!(f, "target VM not present on this server"),
        }
    }
}

impl std::error::Error for VmiError {}

/// The VM introspection tool bound to one simulated server.
#[derive(Debug)]
pub struct VmiTool<'a> {
    sim: &'a ServerSim,
}

impl<'a> VmiTool<'a> {
    /// Attaches the tool to a server.
    pub fn new(sim: &'a ServerSim) -> Self {
        VmiTool { sim }
    }

    /// Reads the *kernel* task list of `vm` from guest memory. Hidden
    /// (rootkit-concealed) tasks are included — that is the point.
    ///
    /// # Errors
    ///
    /// [`VmiError::UnknownVm`] if the VM is not on this server.
    pub fn kernel_task_list(&self, vm: VmId) -> Result<Vec<GuestTask>, VmiError> {
        self.sim
            .vm(vm)
            .map(|v| v.guest.kernel_tasks().to_vec())
            .ok_or(VmiError::UnknownVm)
    }

    /// What the guest itself would report (after rootkit filtering) — used
    /// to compute the discrepancy that reveals hidden malware.
    ///
    /// # Errors
    ///
    /// [`VmiError::UnknownVm`] if the VM is not on this server.
    pub fn guest_visible_task_list(&self, vm: VmId) -> Result<Vec<GuestTask>, VmiError> {
        self.sim
            .vm(vm)
            .map(|v| v.guest.visible_tasks())
            .ok_or(VmiError::UnknownVm)
    }

    /// Tasks present in the kernel list but hidden from guest queries —
    /// direct evidence of a rootkit.
    ///
    /// # Errors
    ///
    /// [`VmiError::UnknownVm`] if the VM is not on this server.
    pub fn hidden_tasks(&self, vm: VmId) -> Result<Vec<GuestTask>, VmiError> {
        Ok(self
            .kernel_task_list(vm)?
            .into_iter()
            .filter(|t| t.hidden)
            .collect())
    }

    /// SHA-256 of the VM image the guest booted from (startup integrity
    /// measurement input).
    ///
    /// # Errors
    ///
    /// [`VmiError::UnknownVm`] if the VM is not on this server.
    pub fn image_hash(&self, vm: VmId) -> Result<[u8; 32], VmiError> {
        self.sim
            .vm(vm)
            .map(|v| v.guest.image_hash())
            .ok_or(VmiError::UnknownVm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::IdleDriver;
    use crate::guest::GuestOs;
    use crate::scheduler::SchedParams;
    use crate::vm::VmConfig;

    fn sim_with_vm() -> (ServerSim, VmId) {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let guest = GuestOs::boot(b"image".to_vec(), &["init", "sshd"]);
        let vm = sim.create_vm(VmConfig::new("target", vec![Box::new(IdleDriver)]).guest(guest));
        (sim, vm)
    }

    #[test]
    fn sees_all_kernel_tasks() {
        let (mut sim, vm) = sim_with_vm();
        sim.vm_mut(vm)
            .unwrap()
            .guest
            .spawn_task("rootkit-svc", true);
        let vmi = VmiTool::new(&sim);
        assert_eq!(vmi.kernel_task_list(vm).unwrap().len(), 3);
        assert_eq!(vmi.guest_visible_task_list(vm).unwrap().len(), 2);
        let hidden = vmi.hidden_tasks(vm).unwrap();
        assert_eq!(hidden.len(), 1);
        assert_eq!(hidden[0].name, "rootkit-svc");
    }

    #[test]
    fn clean_vm_has_no_hidden_tasks() {
        let (sim, vm) = sim_with_vm();
        let vmi = VmiTool::new(&sim);
        assert!(vmi.hidden_tasks(vm).unwrap().is_empty());
    }

    #[test]
    fn unknown_vm_errors() {
        let (sim, _) = sim_with_vm();
        let vmi = VmiTool::new(&sim);
        assert_eq!(vmi.kernel_task_list(VmId(42)), Err(VmiError::UnknownVm));
        assert_eq!(vmi.image_hash(VmId(42)), Err(VmiError::UnknownVm));
    }

    #[test]
    fn image_hash_matches_guest() {
        let (sim, vm) = sim_with_vm();
        let vmi = VmiTool::new(&sim);
        assert_eq!(
            vmi.image_hash(vm).unwrap(),
            sim.vm(vm).unwrap().guest.image_hash()
        );
    }
}
