//! CPU-bound guest programs modelled on the SPEC2006 benchmarks the paper
//! runs inside the victim VM (bzip2, hmmer, astar in Figure 6).
//!
//! Each program has a fixed amount of on-CPU work; its *relative execution
//! time* under contention (wall-clock to finish ÷ solo wall-clock) is
//! exactly the metric of Figure 6.

use monatt_hypervisor::driver::{shared, Shared, VcpuAction, VcpuView, WorkloadDriver};
use monatt_hypervisor::time::SimTime;

/// Completion record exported by a [`CpuProgram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Total on-CPU work the program performs, in microseconds.
    pub total_work_us: u64,
    /// When the program finished, if it has.
    pub finished_at: Option<SimTime>,
}

impl ProgramStats {
    /// Wall-clock run time if finished (the program starts at t=0 in the
    /// benchmarks).
    pub fn elapsed_us(&self) -> Option<u64> {
        self.finished_at.map(|t| t.as_micros())
    }
}

/// A CPU-bound program: computes `total_work_us` of CPU time in fixed
/// chunks, then halts and records its completion time.
#[derive(Debug)]
pub struct CpuProgram {
    remaining_us: u64,
    chunk_us: u64,
    stats: Shared<ProgramStats>,
}

impl CpuProgram {
    /// Creates a program with `total_work_us` of work, computing in
    /// `chunk_us` chunks.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(total_work_us: u64, chunk_us: u64) -> Self {
        assert!(
            total_work_us > 0 && chunk_us > 0,
            "work and chunk must be positive"
        );
        CpuProgram {
            remaining_us: total_work_us,
            chunk_us,
            stats: shared(ProgramStats {
                total_work_us,
                finished_at: None,
            }),
        }
    }

    /// A handle to the completion record, valid after the simulation runs.
    pub fn stats(&self) -> Shared<ProgramStats> {
        self.stats.clone()
    }
}

impl WorkloadDriver for CpuProgram {
    fn next_action(&mut self, view: &VcpuView) -> VcpuAction {
        if self.remaining_us == 0 {
            let mut stats = self.stats.borrow_mut();
            if stats.finished_at.is_none() {
                stats.finished_at = Some(view.now);
            }
            return VcpuAction::Halt;
        }
        let d = self.chunk_us.min(self.remaining_us);
        self.remaining_us -= d;
        VcpuAction::Compute { duration_us: d }
    }
}

/// The victim programs of Figure 6, with distinct work volumes so their
/// solo baselines differ like the SPEC programs' run times do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpecProgram {
    /// bzip2 (compression, integer).
    Bzip2,
    /// hmmer (gene sequence search, integer).
    Hmmer,
    /// astar (path-finding, integer).
    Astar,
}

impl SpecProgram {
    /// All programs in Figure 6's x-axis order.
    pub const ALL: [SpecProgram; 3] = [SpecProgram::Bzip2, SpecProgram::Hmmer, SpecProgram::Astar];

    /// The display name used in the figure.
    pub fn name(&self) -> &'static str {
        match self {
            SpecProgram::Bzip2 => "bzip2",
            SpecProgram::Hmmer => "hmmer",
            SpecProgram::Astar => "astar",
        }
    }

    /// The simulated on-CPU work of the program.
    pub fn work_us(&self) -> u64 {
        match self {
            SpecProgram::Bzip2 => 3_000_000,
            SpecProgram::Hmmer => 4_000_000,
            SpecProgram::Astar => 3_500_000,
        }
    }

    /// Instantiates the program as a workload driver.
    pub fn driver(&self) -> CpuProgram {
        CpuProgram::new(self.work_us(), 1_000)
    }
}

impl std::fmt::Display for SpecProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monatt_hypervisor::engine::ServerSim;
    use monatt_hypervisor::scheduler::SchedParams;
    use monatt_hypervisor::vm::VmConfig;

    #[test]
    fn solo_program_finishes_in_work_time() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let prog = CpuProgram::new(500_000, 1_000);
        let stats = prog.stats();
        sim.create_vm(VmConfig::new("p", vec![Box::new(prog)]));
        sim.run_until(SimTime::from_secs(2));
        let elapsed = stats.borrow().elapsed_us().expect("finished");
        assert_eq!(elapsed, 500_000);
    }

    #[test]
    fn contended_program_takes_about_twice_as_long() {
        use monatt_hypervisor::driver::BusyLoop;
        use monatt_hypervisor::ids::PcpuId;
        let mut sim = ServerSim::new(1, SchedParams::default());
        let prog = CpuProgram::new(500_000, 1_000);
        let stats = prog.stats();
        sim.create_vm(VmConfig::new("p", vec![Box::new(prog)]).pin(vec![PcpuId(0)]));
        sim.create_vm(
            VmConfig::new("hog", vec![Box::new(BusyLoop::default())]).pin(vec![PcpuId(0)]),
        );
        sim.run_until(SimTime::from_secs(5));
        let elapsed = stats.borrow().elapsed_us().expect("finished") as f64;
        let slowdown = elapsed / 500_000.0;
        assert!((slowdown - 2.0).abs() < 0.15, "slowdown = {slowdown}");
    }

    #[test]
    fn unfinished_program_has_no_completion() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let prog = CpuProgram::new(10_000_000, 1_000);
        let stats = prog.stats();
        sim.create_vm(VmConfig::new("p", vec![Box::new(prog)]));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(stats.borrow().finished_at, None);
    }

    #[test]
    fn spec_catalog() {
        for p in SpecProgram::ALL {
            assert!(p.work_us() > 0);
            assert!(!p.name().is_empty());
        }
        assert_eq!(SpecProgram::Bzip2.to_string(), "bzip2");
        let d = SpecProgram::Hmmer.driver();
        assert_eq!(d.stats().borrow().total_work_us, 4_000_000);
    }

    #[test]
    #[should_panic(expected = "work and chunk must be positive")]
    fn zero_work_rejected() {
        let _ = CpuProgram::new(0, 1);
    }
}
