//! # monatt-workloads
//!
//! Synthetic guest workloads for the CloudMonatt reproduction:
//!
//! * [`programs`] — CPU-bound SPEC2006-like programs (bzip2, hmmer, astar)
//!   used as the victim workload in Figure 6.
//! * [`services`] — the six cloud benchmark services (database, file, web,
//!   app, stream, mail) used as attacker workloads in Figure 6 and as the
//!   monitored workload in Figure 10.
//!
//! The paper ran the real programs on real hardware; here each workload is
//! reduced to its CPU-burst/I-O-wait structure, which is the only property
//! the scheduler-level experiments depend on (see DESIGN.md's substitution
//! table).
//!
//! ## Example
//!
//! ```
//! use monatt_hypervisor::engine::ServerSim;
//! use monatt_hypervisor::scheduler::SchedParams;
//! use monatt_hypervisor::time::SimTime;
//! use monatt_hypervisor::vm::VmConfig;
//! use monatt_workloads::programs::SpecProgram;
//!
//! let mut sim = ServerSim::new(1, SchedParams::default());
//! let prog = SpecProgram::Bzip2.driver();
//! let stats = prog.stats();
//! sim.create_vm(VmConfig::new("victim", vec![Box::new(prog)]));
//! sim.run_until(SimTime::from_secs(10));
//! assert!(stats.borrow().finished_at.is_some());
//! ```

#![warn(missing_docs)]

pub mod programs;
pub mod services;

pub use programs::{CpuProgram, ProgramStats, SpecProgram};
pub use services::{CloudService, ServiceStats, ServiceWorkload};
