//! Cloud service workload models: the six benchmark services the paper
//! runs as attacker workloads in Figure 6 and as the monitored VM's
//! workload in Figure 10 — Database, File, Web, App, Stream, Mail.
//!
//! Each service alternates a CPU burst with an I/O wait. Database/Web/App
//! are CPU-bound (high duty cycle), File/Stream/Mail are I/O-bound — the
//! property that determines how much they degrade a co-resident victim.

use monatt_hypervisor::driver::{shared, Shared, VcpuAction, VcpuView, WorkloadDriver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Throughput record exported by a [`ServiceWorkload`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Completed request cycles (one compute burst + one I/O wait).
    pub requests: u64,
}

/// The six cloud benchmark services of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CloudService {
    /// Database server (CPU-bound).
    Database,
    /// File server (I/O-bound).
    File,
    /// Web server (CPU-bound).
    Web,
    /// Application server (CPU-bound).
    App,
    /// Streaming server (I/O-bound).
    Stream,
    /// Mail server (I/O-bound).
    Mail,
}

impl CloudService {
    /// All services in the paper's figure order.
    pub const ALL: [CloudService; 6] = [
        CloudService::Database,
        CloudService::File,
        CloudService::Web,
        CloudService::App,
        CloudService::Stream,
        CloudService::Mail,
    ];

    /// Display name used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            CloudService::Database => "database",
            CloudService::File => "file",
            CloudService::Web => "web",
            CloudService::App => "app",
            CloudService::Stream => "stream",
            CloudService::Mail => "mail",
        }
    }

    /// `(compute_burst_us, io_wait_us)` profile of the service.
    pub fn profile(&self) -> (u64, u64) {
        match self {
            CloudService::Database => (8_000, 2_000),
            CloudService::File => (600, 12_000),
            CloudService::Web => (6_000, 2_000),
            CloudService::App => (9_000, 3_000),
            CloudService::Stream => (1_000, 10_000),
            CloudService::Mail => (400, 14_000),
        }
    }

    /// True for the CPU-bound services (Database, Web, App).
    pub fn is_cpu_bound(&self) -> bool {
        let (c, io) = self.profile();
        c > io
    }

    /// Instantiates the service as a workload driver with jitter seeded by
    /// `seed`.
    pub fn driver(&self, seed: u64) -> ServiceWorkload {
        let (compute_us, io_us) = self.profile();
        ServiceWorkload::new(compute_us, io_us, seed)
    }
}

impl std::fmt::Display for CloudService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A request-loop workload alternating CPU bursts and I/O waits, with
/// ±20 % uniform jitter on both.
#[derive(Debug)]
pub struct ServiceWorkload {
    compute_us: u64,
    io_us: u64,
    rng: StdRng,
    computing: bool,
    stats: Shared<ServiceStats>,
}

impl ServiceWorkload {
    /// Creates a workload with the given burst/wait profile.
    ///
    /// # Panics
    ///
    /// Panics if either duration is zero.
    pub fn new(compute_us: u64, io_us: u64, seed: u64) -> Self {
        assert!(compute_us > 0 && io_us > 0, "durations must be positive");
        ServiceWorkload {
            compute_us,
            io_us,
            rng: StdRng::seed_from_u64(seed),
            computing: false,
            stats: shared(ServiceStats::default()),
        }
    }

    /// A handle to the throughput record.
    pub fn stats(&self) -> Shared<ServiceStats> {
        self.stats.clone()
    }

    fn jitter(&mut self, base: u64) -> u64 {
        // ±20% uniform jitter, never zero.
        let lo = (base * 8) / 10;
        let hi = (base * 12) / 10;
        self.rng.gen_range(lo.max(1)..=hi.max(1))
    }
}

impl WorkloadDriver for ServiceWorkload {
    fn next_action(&mut self, _view: &VcpuView) -> VcpuAction {
        self.computing = !self.computing;
        if self.computing {
            let d = self.jitter(self.compute_us);
            VcpuAction::Compute { duration_us: d }
        } else {
            self.stats.borrow_mut().requests += 1;
            let d = self.jitter(self.io_us);
            VcpuAction::Block {
                duration_us: Some(d),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monatt_hypervisor::engine::ServerSim;
    use monatt_hypervisor::ids::PcpuId;
    use monatt_hypervisor::scheduler::SchedParams;
    use monatt_hypervisor::time::SimTime;
    use monatt_hypervisor::vm::VmConfig;

    #[test]
    fn catalog_is_consistent() {
        assert_eq!(CloudService::ALL.len(), 6);
        assert!(CloudService::Database.is_cpu_bound());
        assert!(CloudService::Web.is_cpu_bound());
        assert!(CloudService::App.is_cpu_bound());
        assert!(!CloudService::File.is_cpu_bound());
        assert!(!CloudService::Stream.is_cpu_bound());
        assert!(!CloudService::Mail.is_cpu_bound());
        assert_eq!(CloudService::Mail.to_string(), "mail");
    }

    #[test]
    fn service_completes_requests() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let svc = CloudService::Web.driver(7);
        let stats = svc.stats();
        sim.create_vm(VmConfig::new("web", vec![Box::new(svc)]));
        sim.run_until(SimTime::from_secs(5));
        let requests = stats.borrow().requests;
        // ~8ms per cycle over 5s -> roughly 625 requests.
        assert!(requests > 400, "requests = {requests}");
    }

    #[test]
    fn cpu_bound_service_uses_most_of_the_cpu() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let svc = CloudService::Database.driver(1);
        let vm = sim.create_vm(VmConfig::new("db", vec![Box::new(svc)]).pin(vec![PcpuId(0)]));
        sim.run_until(SimTime::from_secs(5));
        let usage = sim.profile().relative_cpu_usage(vm, sim.now());
        assert!(usage > 0.6, "database usage = {usage}");
    }

    #[test]
    fn io_bound_service_uses_little_cpu() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let svc = CloudService::Mail.driver(1);
        let vm = sim.create_vm(VmConfig::new("mail", vec![Box::new(svc)]).pin(vec![PcpuId(0)]));
        sim.run_until(SimTime::from_secs(5));
        let usage = sim.profile().relative_cpu_usage(vm, sim.now());
        assert!(usage < 0.15, "mail usage = {usage}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        use monatt_hypervisor::ids::VcpuId;
        let run = |seed: u64| {
            let mut sim = ServerSim::new(1, SchedParams::default());
            let svc = CloudService::App.driver(seed);
            let vm = sim.create_vm(VmConfig::new("app", vec![Box::new(svc)]));
            sim.run_until(SimTime::from_secs(2));
            sim.vcpu_cpu_time_us(VcpuId { vm, index: 0 })
        };
        assert_eq!(run(5), run(5));
        // Different seeds give different schedules; exact CPU time is a
        // fine-grained enough fingerprint to distinguish them.
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "durations must be positive")]
    fn zero_profile_rejected() {
        let _ = ServiceWorkload::new(0, 1, 1);
    }
}
