//! Periodic attestation (Table 1's `runtime_attest_periodic` family)
//! and [`Cloud::run`], the discrete-event loop that fires subscriptions
//! as they come due.
//!
//! Each firing starts an independent event-driven session
//! ([`crate::session`]), so N subscriptions attest concurrently: a
//! subscription whose server is behind a lossy path retries on its own
//! timer while every other subscription's messages keep flowing — no
//! head-of-line blocking. Sample completion (report bookkeeping, missed
//! counters, escalation to the Response Module) happens when the
//! session finishes, in the event order the queue dictates.

use super::{AttestationReport, Cloud};
use crate::error::CloudError;
use crate::session::{CloudEvent, SessionOrigin};
use crate::types::{HealthStatus, SecurityProperty, ServerId, Vid};
use monatt_crypto::drbg::Drbg;

/// The cadence of a periodic attestation (Table 1: "at the frequency of
/// freq or at random intervals").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Frequency {
    /// A fixed period.
    Fixed(u64),
    /// Uniformly random intervals in `[min_us, max_us]` — randomized
    /// monitoring is harder for an attacker to schedule around.
    Random {
        /// Shortest interval.
        min_us: u64,
        /// Longest interval.
        max_us: u64,
    },
}

impl Frequency {
    /// Convenience constructor for a fixed period in seconds.
    pub fn secs(s: u64) -> Self {
        Frequency::Fixed(s * 1_000_000)
    }

    pub(crate) fn next_interval(&self, rng: &mut Drbg) -> u64 {
        match *self {
            Frequency::Fixed(us) => us,
            Frequency::Random { min_us, max_us } => {
                // Sample from [min_us, max_us] exactly. A degenerate or
                // inverted range (max_us <= min_us) clamps to min_us
                // instead of silently overshooting max_us; a zero
                // interval would never advance the clock, so floor at 1.
                if max_us <= min_us {
                    return min_us.max(1);
                }
                min_us + rng.next_u64_below(max_us - min_us + 1)
            }
        }
    }
}

/// A periodic attestation subscription.
#[derive(Debug)]
pub(crate) struct Subscription {
    pub(crate) vid: Vid,
    pub(crate) property: SecurityProperty,
    pub(crate) frequency: Frequency,
    pub(crate) next_due_us: u64,
    pub(crate) reports: Vec<AttestationReport>,
    /// Samples that came due but failed (protocol error or unreachable).
    pub(crate) missed: u64,
    /// Failures since the last successful sample.
    pub(crate) consecutive_failures: u32,
    /// How often the consecutive-failure threshold was crossed and the
    /// Response Module notified.
    pub(crate) escalations: u32,
    /// Automatic remediation responses for this subscription that
    /// themselves failed (previously discarded silently).
    pub(crate) failed_responses: u64,
}

/// Degradation counters of one periodic subscription — missed samples
/// are recorded, not silently discarded, so a lossy network is
/// distinguishable from a healthy one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubscriptionHealth {
    /// Reports successfully delivered so far.
    pub delivered: u64,
    /// Samples that came due but produced no report.
    pub missed: u64,
    /// Failures since the last successful sample.
    pub consecutive_failures: u32,
    /// Times the failure streak reached the escalation threshold.
    pub escalations: u32,
    /// Automatic remediation responses that failed (e.g. a migration
    /// with no qualified destination). Previously these errors were
    /// silently discarded.
    pub failed_responses: u64,
}

impl Cloud {
    /// Table 1: `runtime_attest_periodic(Vid, P, freq, N)` — subscribes
    /// to periodic attestation. Reports accumulate as the cloud
    /// [`Cloud::run`]s.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] if the VM does not exist.
    pub fn runtime_attest_periodic(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
        freq_us: u64,
    ) -> Result<u64, CloudError> {
        self.runtime_attest_with_frequency(vid, property, Frequency::Fixed(freq_us))
    }

    /// Table 1's random-interval mode: periodic attestation at uniformly
    /// random intervals, which an attacker cannot schedule around.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] if the VM does not exist.
    pub fn runtime_attest_with_frequency(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
        frequency: Frequency,
    ) -> Result<u64, CloudError> {
        if self.controller.vm(vid).is_none() {
            return Err(CloudError::UnknownVm(vid));
        }
        let id = self.next_subscription;
        self.next_subscription += 1;
        let first = frequency.next_interval(&mut self.rng);
        self.subscriptions.insert(
            id,
            Subscription {
                vid,
                property,
                frequency,
                next_due_us: self.wall_clock_us + first,
                reports: Vec::new(),
                missed: 0,
                consecutive_failures: 0,
                escalations: 0,
                failed_responses: 0,
            },
        );
        Ok(id)
    }

    /// Degradation counters of a periodic subscription.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownSubscription`] for an unknown id.
    pub fn subscription_health(&self, subscription: u64) -> Result<SubscriptionHealth, CloudError> {
        self.subscriptions
            .get(&subscription)
            .map(|s| SubscriptionHealth {
                delivered: s
                    .reports
                    .iter()
                    .filter(|r| !r.status.is_unreachable())
                    .count() as u64,
                missed: s.missed,
                consecutive_failures: s.consecutive_failures,
                escalations: s.escalations,
                failed_responses: s.failed_responses,
            })
            .ok_or(CloudError::UnknownSubscription(subscription))
    }

    /// Table 1: `stop_attest_periodic(Vid, P, N)` — ends a subscription
    /// and returns the accumulated reports.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownSubscription`] for an unknown id.
    pub fn stop_attest_periodic(
        &mut self,
        subscription: u64,
    ) -> Result<Vec<AttestationReport>, CloudError> {
        self.subscriptions
            .remove(&subscription)
            .map(|s| s.reports)
            .ok_or(CloudError::UnknownSubscription(subscription))
    }

    /// Runs the cloud for `duration_us`, firing periodic attestations as
    /// they come due and interleaving all resulting protocol sessions on
    /// one event queue.
    ///
    /// ## Horizon semantics
    ///
    /// The run covers the half-open interval `[start, end)` with
    /// `end = start + duration_us`: a subscription firing or outage
    /// transition due strictly before `end` fires in this run; one due
    /// exactly at `end` is carried (in `next_due_us` or the outage
    /// model's pending set) and fires first thing in the next run. All
    /// three scheduling sites — initial subscription seeding here,
    /// follow-up firings in `schedule_subscription_due`, and the outage
    /// model's `drain_due` — use the same strict `< end` comparison, so
    /// back-to-back runs of `d` and `d'` microseconds process exactly
    /// the events one run of `d + d'` would (pinned by the
    /// horizon-boundary test in `cloud/tests.rs`).
    ///
    /// A sample that fails (protocol failure or unreachable server) is
    /// recorded on the subscription, not silently discarded; after
    /// [`super::CloudBuilder::escalation_threshold`] consecutive
    /// failures the subscription files an [`HealthStatus::Unreachable`]
    /// report and, under auto-response, invokes the Response Module's
    /// unreachable policy.
    pub fn run(&mut self, duration_us: u64) {
        let end = self.wall_clock_us + duration_us;
        self.run_horizon = Some(end);
        // Seed the queue with every subscription's next firing. A due
        // time already in the past fires immediately, in subscription-id
        // order (the queue breaks ties by schedule order). Strictly
        // `< end`: a firing due exactly at the horizon belongs to the
        // next run (see the doc comment's horizon semantics).
        let initial: Vec<(u64, u64)> = self
            .subscriptions
            .iter()
            .map(|(id, s)| (*id, s.next_due_us))
            .collect();
        for (id, due) in initial {
            if due < end {
                let due = due.max(self.wall_clock_us);
                self.schedule_cloud_event(due, CloudEvent::SubscriptionDue { id });
            }
        }
        // Seed the outage model's transitions due inside this run. The
        // model keeps its own RNG, so priming it never perturbs the
        // cloud's stream; chained follow-ups are scheduled as each
        // transition fires (see `apply_outage`), horizon-gated the same
        // way subscription firings are.
        if self.outages.is_some() {
            let server_ids: Vec<ServerId> = self.servers.keys().copied().collect();
            let now = self.wall_clock_us;
            let control_nodes = self.topology.control_nodes();
            let batch = match self.outages.as_mut() {
                Some(model) => {
                    model.prime(server_ids, now);
                    // Control-plane churn draws strictly after the
                    // server draws (and only when its MTBF knob is set),
                    // so existing seeded schedules are unchanged.
                    model.prime_control_plane(control_nodes, now);
                    model.drain_due(end)
                }
                None => Vec::new(),
            };
            for t in batch {
                self.schedule_cloud_event(
                    t.at_us.max(now),
                    CloudEvent::Outage {
                        node: t.node,
                        down: t.down,
                        chain: t.stochastic,
                    },
                );
            }
        }
        while let Some((due, event)) = self.engine.pop() {
            self.advance_to(due);
            self.dispatch_event(event);
        }
        self.run_horizon = None;
        // Attestation work may already have advanced the clock past
        // `end`; saturate so the final advance never overshoots the
        // requested horizon.
        let remaining = end.saturating_sub(self.wall_clock_us);
        if remaining > 0 {
            self.advance(remaining);
        } else {
            // Event dispatch moved only the wall clock (lazy pull);
            // settle every server before handing control back so
            // callers observe post-run state.
            self.sync_servers();
        }
    }

    /// A subscription came due: start its attestation session. An error
    /// before the session even gets on the wire counts as a missed
    /// sample immediately.
    pub(crate) fn start_subscription_sample(&mut self, id: u64) {
        let Some(sub) = self.subscriptions.get(&id) else {
            // Unsubscribed while the firing was queued: skip.
            return;
        };
        let (vid, property) = (sub.vid, sub.property);
        // With an evidence validity window configured, a sample whose
        // verdict is still fresh is served from the Attestation Server's
        // cache — no session, no measurement hops (sub-attestation
        // reuse). Steady periodic subscriptions with a period shorter
        // than the window mostly hit this path.
        if let Some(report) = self.evidence_probe(vid, property) {
            self.complete_subscription_sample(id, vid, property, Ok(report));
            return;
        }
        if let Err(e) = self.begin_customer_session(vid, property, SessionOrigin::Subscription(id))
        {
            self.complete_subscription_sample(id, vid, property, Err(e));
        }
    }

    /// A subscription's session finished (or failed to start): record
    /// the report or the miss, run auto-response policy, and schedule
    /// the next firing.
    pub(crate) fn complete_subscription_sample(
        &mut self,
        id: u64,
        vid: Vid,
        property: SecurityProperty,
        result: Result<AttestationReport, CloudError>,
    ) {
        let Some(sub) = self.subscriptions.get(&id) else {
            return;
        };
        let frequency = sub.frequency;
        let threshold = self.escalation_threshold;
        match result {
            Ok(report) => {
                if !report.healthy() && self.auto_response {
                    let action = self.controller.choose_response(property);
                    if !self.auto_respond(vid, action) {
                        if let Some(s) = self.subscriptions.get_mut(&id) {
                            s.failed_responses += 1;
                        }
                    }
                }
                let interval = frequency.next_interval(&mut self.rng);
                let next_due = self.wall_clock_us + interval;
                if let Some(s) = self.subscriptions.get_mut(&id) {
                    s.next_due_us = next_due;
                    s.consecutive_failures = 0;
                    s.reports.push(report);
                }
                self.schedule_subscription_due(id, next_due);
            }
            Err(e) => {
                // An admission-shed sample is the attestation server's
                // own load decision, not evidence the monitored node is
                // failing: it counts as missed but does not feed the
                // unreachable-escalation streak.
                let shed = matches!(e, CloudError::Overloaded { .. });
                let interval = frequency.next_interval(&mut self.rng);
                let next_due = self.wall_clock_us + interval;
                let mut escalated_misses = None;
                if let Some(s) = self.subscriptions.get_mut(&id) {
                    s.next_due_us = next_due;
                    s.missed += 1;
                    if !shed {
                        s.consecutive_failures += 1;
                        if s.consecutive_failures >= threshold {
                            s.escalations += 1;
                            escalated_misses = Some(s.consecutive_failures);
                            s.consecutive_failures = 0;
                        }
                    }
                }
                if let Some(missed) = escalated_misses {
                    let issued_at = self.wall_clock_us;
                    if let Some(s) = self.subscriptions.get_mut(&id) {
                        // File the degradation as a first-class report so
                        // the customer sees the monitoring gap.
                        s.reports.push(AttestationReport {
                            vid,
                            property,
                            status: HealthStatus::Unreachable { missed },
                            elapsed_us: 0,
                            issued_at_us: issued_at,
                        });
                    }
                    if self.auto_response {
                        let action = self.controller.choose_unreachable_response();
                        if !self.auto_respond(vid, action) {
                            if let Some(s) = self.subscriptions.get_mut(&id) {
                                s.failed_responses += 1;
                            }
                        }
                    }
                }
                self.schedule_subscription_due(id, next_due);
            }
        }
    }

    /// Schedules the subscription's next firing, but only while inside
    /// [`Cloud::run`] and only if it falls strictly before the run's
    /// horizon (the `[start, end)` convention) — otherwise `next_due_us`
    /// on the subscription carries it into the next run.
    fn schedule_subscription_due(&mut self, id: u64, due_us: u64) {
        if let Some(end) = self.run_horizon {
            if due_us < end {
                self.schedule_cloud_event(due_us, CloudEvent::SubscriptionDue { id });
            }
        }
    }
}
