//! Unit tests of the Cloud facade: launch pipeline, Table-1 APIs,
//! periodic attestation, responses, fault handling and the
//! failed-auto-response accounting.

use super::{AttestationReport, Cloud, CloudBuilder, Frequency, VmRequest, WorkloadSpec};
use crate::controller::{ResponseAction, VmLifecycle};
use crate::error::CloudError;
use crate::types::{
    Flavor, HealthStatus, Image, NodeId, ProtocolStats, SecurityProperty, ServerId,
};
use monatt_crypto::drbg::Drbg;

fn cloud() -> Cloud {
    CloudBuilder::new().servers(3).seed(7).build()
}

#[test]
fn launch_and_startup_attest() {
    let mut c = cloud();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::StartupIntegrity),
        )
        .unwrap();
    let timing = c.last_launch_timing().unwrap();
    assert!(timing.attestation_us > 0);
    assert!(timing.total_us() > 0);
    // Attestation overhead is roughly the paper's ~20%.
    let frac = timing.attestation_us as f64 / timing.total_us() as f64;
    assert!((0.05..0.40).contains(&frac), "attestation fraction {frac}");
    let report = c
        .startup_attest_current(vid, SecurityProperty::StartupIntegrity)
        .unwrap();
    assert!(report.healthy());
}

#[test]
fn tampered_image_rejected_at_launch() {
    let mut c = cloud();
    let err = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Ubuntu)
                .require(SecurityProperty::StartupIntegrity)
                .with_tampered_image(),
        )
        .unwrap_err();
    let CloudError::LaunchRejected { reason } = err else {
        panic!("expected rejection, got {err:?}");
    };
    assert!(reason.contains("image"), "{reason}");
}

#[test]
fn corrupted_platform_is_avoided() {
    let mut c = CloudBuilder::new()
        .servers(3)
        .seed(8)
        .corrupt_platform(0)
        .build();
    // OpenStack's balance heuristic would pick any server; platform
    // attestation steers the VM away from server 0.
    for _ in 0..3 {
        let vid = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::StartupIntegrity),
            )
            .unwrap();
        assert_ne!(c.server_of(vid), Some(ServerId(0)));
    }
}

#[test]
fn launch_without_properties_skips_attestation() {
    let mut c = cloud();
    let _vid = c
        .request_vm(VmRequest::new(Flavor::Small, Image::Cirros))
        .unwrap();
    let timing = c.last_launch_timing().unwrap();
    assert_eq!(timing.attestation_us, 0);
}

#[test]
fn runtime_integrity_detects_rootkit() {
    let mut c = cloud();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Ubuntu)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    let clean = c
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    assert!(clean.healthy());
    c.infect_vm(vid, "cryptominer").unwrap();
    let infected = c
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    assert!(!infected.healthy());
    let HealthStatus::Compromised { reason } = &infected.status else {
        panic!()
    };
    assert!(reason.contains("cryptominer"));
}

#[test]
fn responses_change_lifecycle() {
    let mut c = cloud();
    let vid = c
        .request_vm(VmRequest::new(Flavor::Medium, Image::Fedora))
        .unwrap();
    let original_server = c.server_of(vid).unwrap();
    let t = c.respond(vid, ResponseAction::Suspension).unwrap();
    assert!(t.response_us > 0);
    assert_eq!(c.vm_state(vid), Some(VmLifecycle::Suspended));
    c.resume(vid).unwrap();
    assert_eq!(c.vm_state(vid), Some(VmLifecycle::Active));
    let t = c.respond(vid, ResponseAction::Migration).unwrap();
    assert!(t.response_us > 0);
    assert_ne!(c.server_of(vid), Some(original_server));
    assert_eq!(c.vm_state(vid), Some(VmLifecycle::Active));
    let t = c.respond(vid, ResponseAction::Termination).unwrap();
    assert!(t.response_us > 0);
    assert_eq!(c.vm_state(vid), Some(VmLifecycle::Terminated));
    // A terminated VM cannot be attested.
    assert!(c
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .is_err());
}

#[test]
fn periodic_attestation_accumulates_reports() {
    let mut c = cloud();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity)
                .workload(WorkloadSpec::Busy),
        )
        .unwrap();
    let sub = c
        .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 5_000_000)
        .unwrap();
    c.run(21_000_000);
    let reports = c.stop_attest_periodic(sub).unwrap();
    assert!(
        (3..=5).contains(&reports.len()),
        "expected ~4 periodic reports, got {}",
        reports.len()
    );
    assert!(reports.iter().all(|r| r.healthy()));
    assert!(c.stop_attest_periodic(sub).is_err());
}

#[test]
fn cpu_availability_detects_boost_attack() {
    let mut c = CloudBuilder::new().servers(2).seed(9).build();
    let victim = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Ubuntu)
                .require(SecurityProperty::CpuAvailability { min_share_pct: 50 })
                .workload(WorkloadSpec::Busy)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    // Healthy before the attack: sole user of the pCPU.
    let before = c
        .runtime_attest_current(
            victim,
            SecurityProperty::CpuAvailability { min_share_pct: 50 },
        )
        .unwrap();
    assert!(before.healthy(), "{:?}", before.status);
    // Co-locate the attacker.
    let _attacker = c
        .request_vm(
            VmRequest::new(Flavor::Medium, Image::Ubuntu)
                .workload(WorkloadSpec::BoostAttack)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    c.advance(1_000_000);
    let after = c
        .runtime_attest_current(
            victim,
            SecurityProperty::CpuAvailability { min_share_pct: 50 },
        )
        .unwrap();
    assert!(!after.healthy(), "victim should be starved");
}

#[test]
fn covert_channel_detected_on_sender() {
    let mut c = CloudBuilder::new().servers(2).seed(10).build();
    let sender = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::CovertChannelFreedom)
                .workload(WorkloadSpec::CovertSender)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    let _receiver = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .workload(WorkloadSpec::Busy)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    c.advance(500_000);
    let report = c
        .runtime_attest_current(sender, SecurityProperty::CovertChannelFreedom)
        .unwrap();
    assert!(!report.healthy(), "covert channel should be detected");
    // A benign busy VM co-resident shows no covert pattern.
    let benign = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::CovertChannelFreedom)
                .workload(WorkloadSpec::Busy)
                .on_server(ServerId(1))
                .pin_pcpu(0),
        )
        .unwrap();
    let report = c
        .runtime_attest_current(benign, SecurityProperty::CovertChannelFreedom)
        .unwrap();
    assert!(report.healthy(), "{:?}", report.status);
}

#[test]
fn network_tampering_is_detected_not_accepted() {
    use monatt_net::sim::Tamperer;
    let mut c = cloud();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    c.network_mut().set_attacker(Box::new(Tamperer::new("")));
    let err = c
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap_err();
    assert!(matches!(err, CloudError::ProtocolFailure { .. }));
    c.network_mut().clear_attacker();
    let ok = c
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    assert!(ok.healthy());
}

#[test]
fn auto_response_migrates_starved_vm() {
    let mut c = CloudBuilder::new()
        .servers(2)
        .seed(12)
        .auto_response(true)
        .build();
    let victim = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::CpuAvailability { min_share_pct: 50 })
                .workload(WorkloadSpec::Busy)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    let _attacker = c
        .request_vm(
            VmRequest::new(Flavor::Medium, Image::Cirros)
                .workload(WorkloadSpec::BoostAttack)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    c.advance(1_000_000);
    let report = c
        .runtime_attest_current(
            victim,
            SecurityProperty::CpuAvailability { min_share_pct: 50 },
        )
        .unwrap();
    assert!(!report.healthy());
    // The response module migrated the victim away.
    assert_eq!(c.server_of(victim), Some(ServerId(1)));
    // And it now attests healthy again.
    let after = c
        .runtime_attest_current(
            victim,
            SecurityProperty::CpuAvailability { min_share_pct: 50 },
        )
        .unwrap();
    assert!(after.healthy(), "{:?}", after.status);
    // The successful migration left no failed-response residue.
    assert_eq!(c.auto_response_failures(), 0);
}

#[test]
fn failed_auto_response_is_recorded_not_discarded() {
    // One server: a migration response has nowhere to go and fails.
    // That failure used to be `let _ = self.respond(..)` — now it is
    // counted on the cloud and on the owning subscription.
    let prop = SecurityProperty::CpuAvailability { min_share_pct: 50 };
    let mut c = CloudBuilder::new()
        .servers(1)
        .seed(33)
        .auto_response(true)
        .build();
    let victim = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(prop)
                .workload(WorkloadSpec::Busy)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    let _attacker = c
        .request_vm(
            VmRequest::new(Flavor::Medium, Image::Cirros)
                .workload(WorkloadSpec::BoostAttack)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    c.advance(1_000_000);
    // Direct API path: the failure is recorded on the cloud.
    let report = c.runtime_attest_current(victim, prop).unwrap();
    assert!(!report.healthy());
    assert_eq!(c.server_of(victim), Some(ServerId(0)), "nowhere to migrate");
    assert_eq!(c.auto_response_failures(), 1);
    // Subscription path: the failure is also attributed to the
    // subscription's health counters.
    let sub = c.runtime_attest_periodic(victim, prop, 2_000_000).unwrap();
    c.run(5_000_000);
    let health = c.subscription_health(sub).unwrap();
    assert!(health.delivered >= 1, "{health:?}");
    assert!(health.failed_responses >= 1, "{health:?}");
    assert!(c.auto_response_failures() > 1);
}

#[test]
fn session_gauges_track_protocol_activity() {
    let mut c = cloud();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    c.reset_protocol_stats();
    c.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    let stats = c.protocol_stats();
    assert_eq!(stats.sessions_started, 1);
    assert_eq!(stats.sessions_completed, 1);
    assert_eq!(stats.sessions_failed, 0);
    assert_eq!(stats.max_in_flight, 1);
    assert!(stats.max_queue_depth >= 1);
    assert_eq!(c.sessions_in_flight(), 0, "no session left behind");
}

#[test]
fn sharded_queue_depths_break_down_the_merged_stat() {
    let mut c = CloudBuilder::new().servers(4).seed(907).shards(4).build();
    let mut vids = Vec::new();
    for _ in 0..4 {
        vids.push(
            c.request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .unwrap(),
        );
    }
    c.reset_protocol_stats();
    for &vid in &vids {
        c.runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 1_000_000)
            .unwrap();
    }
    c.run(2_000_001);
    let stats = c.protocol_stats();
    let depths = c.shard_queue_depths();
    assert_eq!(depths.len(), 4, "one high-water mark per shard");
    // The controller-side shard (0) carries the subscription timers and
    // the controller/attserver hops; the per-server shards carry their
    // own VMs' events. Every shard must have seen traffic, and no
    // single-shard peak can exceed the merged high-water mark.
    assert!(depths.iter().all(|&d| d >= 1), "idle shard in {depths:?}");
    let merged = stats.max_queue_depth as usize;
    assert!(merged >= 1);
    assert!(
        depths.iter().all(|&d| d <= merged),
        "shard peak exceeds merged mark: {depths:?} vs {merged}"
    );
}

#[test]
fn random_interval_periodic_attestation() {
    let mut c = cloud();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity)
                .workload(WorkloadSpec::Busy),
        )
        .unwrap();
    let sub = c
        .runtime_attest_with_frequency(
            vid,
            SecurityProperty::RuntimeIntegrity,
            Frequency::Random {
                min_us: 2_000_000,
                max_us: 8_000_000,
            },
        )
        .unwrap();
    c.run(30_000_000);
    let reports = c.stop_attest_periodic(sub).unwrap();
    // Expected count between 30/8 ≈ 3 and 30/2 = 15.
    assert!(
        (3..=15).contains(&reports.len()),
        "got {} reports",
        reports.len()
    );
    // Intervals actually vary.
    let times: Vec<u64> = reports.iter().map(|r| r.issued_at_us).collect();
    let deltas: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    if deltas.len() >= 2 {
        assert!(
            deltas.iter().any(|&d| d != deltas[0]),
            "intervals should vary: {deltas:?}"
        );
    }
}

#[test]
fn suspension_recheck_resumes_only_when_healthy() {
    let mut c = CloudBuilder::new().servers(2).seed(13).build();
    let prop = SecurityProperty::CpuAvailability { min_share_pct: 50 };
    let victim = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(prop)
                .workload(WorkloadSpec::Busy)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    let attacker = c
        .request_vm(
            VmRequest::new(Flavor::Medium, Image::Cirros)
                .workload(WorkloadSpec::BoostAttack)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    c.advance(1_000_000);
    c.respond(victim, ResponseAction::Suspension).unwrap();
    // The attacker is still there: the recheck re-suspends.
    let report = c.recheck_and_resume(victim, prop).unwrap();
    assert!(!report.healthy());
    assert_eq!(c.vm_state(victim), Some(VmLifecycle::Suspended));
    // Terminate the attacker; now the recheck resumes the victim.
    c.respond(attacker, ResponseAction::Termination).unwrap();
    c.advance(1_000_000);
    let report = c.recheck_and_resume(victim, prop).unwrap();
    assert!(report.healthy(), "{:?}", report.status);
    assert_eq!(c.vm_state(victim), Some(VmLifecycle::Active));
}

#[test]
fn frequency_degenerate_ranges_clamp() {
    let mut rng = Drbg::from_seed(1);
    // Equal bounds: exactly that interval, not max+something.
    let f = Frequency::Random {
        min_us: 5,
        max_us: 5,
    };
    for _ in 0..8 {
        assert_eq!(f.next_interval(&mut rng), 5);
    }
    // Inverted bounds clamp to min.
    let f = Frequency::Random {
        min_us: 10,
        max_us: 2,
    };
    assert_eq!(f.next_interval(&mut rng), 10);
    // All-zero range floors at 1 so run() always advances.
    let f = Frequency::Random {
        min_us: 0,
        max_us: 0,
    };
    assert_eq!(f.next_interval(&mut rng), 1);
    // A proper range stays within [min, max] inclusive.
    let f = Frequency::Random {
        min_us: 3,
        max_us: 6,
    };
    for _ in 0..64 {
        let v = f.next_interval(&mut rng);
        assert!((3..=6).contains(&v), "{v}");
    }
}

#[test]
fn clean_network_keeps_protocol_counters_quiet() {
    let mut c = cloud();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    c.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    let stats = c.protocol_stats();
    assert!(stats.messages_sent > 0);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.drops_seen, 0);
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.duplicates_rejected, 0);
    assert_eq!(stats.auth_failures, 0);
    c.reset_protocol_stats();
    assert_eq!(c.protocol_stats(), ProtocolStats::default());
}

#[test]
fn retries_absorb_lossy_network() {
    use monatt_net::sim::FaultModel;
    let mut c = cloud();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    let clean = c
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    c.network_mut()
        .set_fault_model(FaultModel::new(42).drop_prob(0.2));
    let mut lossy_max = 0;
    for _ in 0..10 {
        let report = c
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .expect("retries should absorb 20% loss");
        assert!(report.healthy());
        lossy_max = lossy_max.max(report.elapsed_us);
    }
    let stats = c.protocol_stats();
    assert!(stats.retries > 0, "{stats:?}");
    assert_eq!(stats.drops_seen, stats.timeouts);
    // Retransmission time is charged into the latency model.
    assert!(lossy_max > clean.elapsed_us, "{lossy_max} vs {clean:?}");
}

#[test]
fn duplicated_records_are_rejected_without_desync() {
    use monatt_net::sim::FaultModel;
    let mut c = cloud();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    c.network_mut()
        .set_fault_model(FaultModel::new(7).duplicate_prob(1.0));
    c.reset_protocol_stats();
    // Every record delivered twice: the window eats each duplicate
    // and the protocol still completes.
    let report = c
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    assert!(report.healthy());
    let stats = c.protocol_stats();
    assert_eq!(stats.duplicates_rejected, stats.messages_sent);
}

#[test]
fn missed_periodic_samples_escalate_to_unreachable() {
    use monatt_net::sim::{Intercept, NetworkAttacker};
    struct DropAll;
    impl NetworkAttacker for DropAll {
        fn intercept(&mut self, _: &str, _: &str, _: &[u8]) -> Intercept {
            Intercept::Drop
        }
    }
    let mut c = CloudBuilder::new()
        .servers(3)
        .seed(21)
        .escalation_threshold(2)
        .build();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    let sub = c
        .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 5_000_000)
        .unwrap();
    c.network_mut().set_attacker(Box::new(DropAll));
    c.run(21_000_000);
    let health = c.subscription_health(sub).unwrap();
    assert_eq!(health.delivered, 0);
    assert!(health.missed >= 3, "{health:?}");
    assert!(health.escalations >= 1, "{health:?}");
    // Healing the network resets the failure streak.
    c.network_mut().clear_attacker();
    c.run(6_000_000);
    let health = c.subscription_health(sub).unwrap();
    assert_eq!(health.consecutive_failures, 0);
    assert!(health.delivered >= 1, "{health:?}");
    let reports = c.stop_attest_periodic(sub).unwrap();
    let unreachable = reports.iter().filter(|r| r.status.is_unreachable()).count();
    assert!(unreachable >= 1, "escalation should file a report");
    assert!(c.subscription_health(sub).is_err());
}

#[test]
fn launch_timing_scales_with_image_and_flavor() {
    let mut c = cloud();
    let mut totals = Vec::new();
    for (image, flavor) in [
        (Image::Cirros, Flavor::Small),
        (Image::Ubuntu, Flavor::Large),
    ] {
        c.request_vm(VmRequest::new(flavor, image).require(SecurityProperty::StartupIntegrity))
            .unwrap();
        totals.push(c.last_launch_timing().unwrap().total_us());
    }
    assert!(totals[1] > totals[0], "{totals:?}");
}

#[test]
fn coalesced_msg4_batches_match_serial_verdicts() {
    // Two subscriptions due at the same instant reach AS-validate close
    // together; with a coalescing window their msg 4s are verified in
    // one combined Schnorr check. The verdicts must match the serial
    // run exactly — batching is a throughput optimisation, never a
    // behaviour change.
    fn run(batched: bool) -> (Vec<Vec<AttestationReport>>, ProtocolStats) {
        let mut b = CloudBuilder::new().servers(3).seed(21);
        if batched {
            b = b.as_batch(1_000_000, 8);
        }
        let mut c = b.build();
        // Launch both VMs first (each launch advances the wall clock),
        // then subscribe back-to-back so the two firings share a due
        // time and their msg 4s land inside one coalescing window.
        let vids: Vec<_> = [Image::Cirros, Image::Ubuntu]
            .into_iter()
            .map(|image| {
                c.request_vm(
                    VmRequest::new(Flavor::Small, image)
                        .require(SecurityProperty::RuntimeIntegrity)
                        .workload(WorkloadSpec::Busy),
                )
                .unwrap()
            })
            .collect();
        let subs: Vec<_> = vids
            .iter()
            .map(|vid| {
                c.runtime_attest_periodic(*vid, SecurityProperty::RuntimeIntegrity, 5_000_000)
                    .unwrap()
            })
            .collect();
        let reports = {
            c.run(21_000_000);
            subs.iter()
                .map(|s| c.stop_attest_periodic(*s).unwrap())
                .collect()
        };
        (reports, c.protocol_stats())
    }
    let (serial, serial_stats) = run(false);
    let (batched, batched_stats) = run(true);
    assert_eq!(serial_stats.msg4_flushes, 0, "serial run must stay inline");
    assert!(
        batched_stats.msg4_batched > batched_stats.msg4_flushes,
        "no flush coalesced two sessions: batched={} flushes={}",
        batched_stats.msg4_batched,
        batched_stats.msg4_flushes
    );
    assert_eq!(serial.len(), batched.len());
    for (s, b) in serial.iter().zip(&batched) {
        assert_eq!(s.len(), b.len(), "delivered counts diverged");
        for (sr, br) in s.iter().zip(b) {
            assert_eq!(sr.status, br.status, "verdict diverged under batching");
        }
    }
}

#[test]
fn evidence_cache_serves_fresh_verdicts_and_invalidates() {
    let ttl = 30_000_000;
    let mut c = CloudBuilder::new()
        .servers(3)
        .seed(22)
        .evidence_cache(ttl)
        .build();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Ubuntu)
                .require(SecurityProperty::RuntimeIntegrity)
                .workload(WorkloadSpec::Busy),
        )
        .unwrap();
    let first = c
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    assert!(first.healthy());
    // A verdict inside the validity window is served from the evidence
    // cache: messages 3/4 and the measurement window are skipped, so
    // the cached report is strictly cheaper than the full protocol.
    let (hits_before, _) = c.evidence_cache_stats();
    let second = c
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    let (hits_after, _) = c.evidence_cache_stats();
    assert_eq!(hits_after, hits_before + 1, "second attest must hit");
    assert_eq!(second.status, first.status);
    assert!(
        second.elapsed_us < first.elapsed_us,
        "cached {} vs full {}",
        second.elapsed_us,
        first.elapsed_us
    );
    // Remediation moves the VM to a new host: the cached verdict is
    // about the old trust context and must not be served again.
    c.respond(vid, crate::controller::ResponseAction::Migration)
        .unwrap();
    let (hits_mig, misses_mig) = c.evidence_cache_stats();
    let third = c
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    let (hits_post, misses_post) = c.evidence_cache_stats();
    assert_eq!(hits_post, hits_mig, "post-migration attest must not hit");
    assert!(misses_post > misses_mig);
    assert!(third.elapsed_us > second.elapsed_us);
    // The validity window expires evidence by wall clock: after idling
    // past the TTL the next sample runs the full protocol again.
    c.run(ttl + 1_000_000);
    let (hits_idle, _) = c.evidence_cache_stats();
    let fourth = c
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    let (hits_end, _) = c.evidence_cache_stats();
    assert_eq!(hits_end, hits_idle, "expired evidence must not be served");
    assert!(fourth.elapsed_us > second.elapsed_us);
}

#[test]
fn avk_cert_cache_hits_on_reuse_and_resets_on_rekey() {
    let mut c = CloudBuilder::new()
        .servers(2)
        .seed(23)
        .reuse_avk(true)
        .avk_cert_cache(true)
        .build();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity)
                .workload(WorkloadSpec::Busy),
        )
        .unwrap();
    for _ in 0..2 {
        let r = c
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .unwrap();
        assert!(r.healthy());
    }
    let (hits, _) = c.avk_cert_cache_stats();
    assert!(
        hits >= 1,
        "a reused attestation session must hit the certified-AVK cache"
    );
    // Crash + recovery re-keys the node's channels, which bumps the
    // pCA epoch: every certificate issued before is stale and the
    // cache is dropped, so the next attestation re-certifies.
    let server = c.server_of(vid).unwrap();
    c.crash_node(NodeId::Server(server));
    c.recover_node(NodeId::Server(server));
    let (_, misses_rekey) = c.avk_cert_cache_stats();
    let r = c
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    assert!(r.healthy(), "attestation must recover at the new epoch");
    let (_, misses_post) = c.avk_cert_cache_stats();
    assert!(
        misses_post > misses_rekey,
        "re-keying must invalidate certified AVKs"
    );
}

#[test]
fn horizon_boundary_event_fires_in_the_next_run() {
    // `Cloud::run` covers the half-open interval [start, end): a
    // subscription firing due exactly at the horizon belongs to the
    // next run, so splitting one run in two at the boundary processes
    // the identical event set (referenced by the `run` doc comment).
    fn build() -> (Cloud, u64) {
        let mut c = CloudBuilder::new().servers(3).seed(24).build();
        let vid = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity)
                    .workload(WorkloadSpec::Busy),
            )
            .unwrap();
        let sub = c
            .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 5_000_000)
            .unwrap();
        (c, sub)
    }
    let (mut whole, sub_w) = build();
    whole.run(10_000_000);
    let (mut split, sub_s) = build();
    // The first firing is due exactly at this run's end: carried.
    split.run(5_000_000);
    assert_eq!(
        split.subscription_health(sub_s).unwrap().delivered,
        0,
        "a firing due exactly at the horizon must not fire in this run"
    );
    split.run(5_000_000);
    assert_eq!(
        split.subscription_health(sub_s).unwrap().delivered,
        1,
        "the carried firing must fire first thing in the next run"
    );
    assert_eq!(whole.wall_clock_us(), split.wall_clock_us());
    assert_eq!(whole.drbg_probe(), split.drbg_probe());
    let rw = whole.stop_attest_periodic(sub_w).unwrap();
    let rs = split.stop_attest_periodic(sub_s).unwrap();
    assert_eq!(rw, rs, "split runs must reproduce the whole run's reports");
}

// ---- Protocol-IR programs: layered attestation and fan-out ---------

#[test]
fn layered_attest_healthy_platform_measures_the_vm() {
    let mut c = cloud();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Ubuntu)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    let before = c.protocol_stats();
    let report = c
        .layered_attest(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    assert!(report.healthy(), "clean platform + clean VM: {report:?}");
    let after = c.protocol_stats();
    // One layered call = the parent session plus one delegated
    // platform-appraisal child, both completing.
    assert_eq!(after.sessions_started - before.sessions_started, 2);
    assert_eq!(after.sessions_completed - before.sessions_completed, 2);
    // Clean network: parent walks all six hops (the gate passed and the
    // VM was measured), the child the internal four.
    assert_eq!(after.messages_sent - before.messages_sent, 10);
    // The infected VM still fails through the layered program.
    c.infect_vm(vid, "cryptominer").unwrap();
    let infected = c
        .layered_attest(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    assert!(!infected.healthy());
}

#[test]
fn layered_attest_corrupt_platform_gates_off_the_vm_measurement() {
    // A single corrupt server; the VM requires no property at launch,
    // so placement cannot steer away from it.
    let mut c = CloudBuilder::new()
        .servers(1)
        .seed(9)
        .corrupt_platform(0)
        .build();
    let vid = c
        .request_vm(VmRequest::new(Flavor::Small, Image::Cirros))
        .unwrap();
    let before = c.protocol_stats();
    let report = c
        .layered_attest(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    assert!(
        !report.healthy(),
        "a trojaned platform must fail the layered appraisal: {report:?}"
    );
    assert!(
        matches!(report.status, HealthStatus::Compromised { .. }),
        "{report:?}"
    );
    let after = c.protocol_stats();
    assert_eq!(after.sessions_started - before.sessions_started, 2);
    // The gate skipped messages 3 and 4 of the parent: the VM was never
    // measured. Parent sends 1, 2, 5, 6; the delegated child 2-5.
    assert_eq!(
        after.messages_sent - before.messages_sent,
        8,
        "an unhealthy platform must skip the VM measurement hops"
    );
}

#[test]
fn multi_attest_fans_out_and_combines() {
    let mut c = cloud();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Ubuntu)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    let props = [
        SecurityProperty::StartupIntegrity,
        SecurityProperty::RuntimeIntegrity,
    ];
    let before = c.protocol_stats();
    let report = c.multi_attest(vid, &props).unwrap();
    assert!(report.healthy(), "{report:?}");
    assert_eq!(report.property, SecurityProperty::StartupIntegrity);
    let after = c.protocol_stats();
    // Parent plus one measurement child per property.
    assert_eq!(after.sessions_started - before.sessions_started, 3);
    assert_eq!(after.sessions_completed - before.sessions_completed, 3);
    // Parent: 1, 2, 5, 6; each child: 3, 4.
    assert_eq!(after.messages_sent - before.messages_sent, 8);
    // A violated property poisons the combined report, naming the
    // branch that found it.
    c.infect_vm(vid, "cryptominer").unwrap();
    let infected = c.multi_attest(vid, &props).unwrap();
    let HealthStatus::Compromised { reason } = &infected.status else {
        panic!("expected a combined violation, got {:?}", infected.status);
    };
    assert!(reason.contains("branch 1"), "{reason}");
    assert!(reason.contains("cryptominer"), "{reason}");
}

#[test]
fn registered_protocols_run_like_builtins() {
    use crate::protocol::Protocol;
    let mut c = cloud();
    let vid = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::StartupIntegrity),
        )
        .unwrap();
    // Registering the stock customer program by hand must behave
    // exactly like the built-in path.
    let pid = c.register_protocol(&Protocol::figure3_customer()).unwrap();
    let via_program = c
        .attest_with_program(vid, SecurityProperty::StartupIntegrity, pid)
        .unwrap();
    let via_api = c
        .startup_attest_current(vid, SecurityProperty::StartupIntegrity)
        .unwrap();
    assert_eq!(via_program.status, via_api.status);
    assert_eq!(via_program.elapsed_us, via_api.elapsed_us);
    // Ill-formed terms are rejected with a typed error.
    let err = c
        .register_protocol(&Protocol::Seq(vec![Protocol::Complete]))
        .unwrap_err();
    assert!(matches!(err, CloudError::ProtocolFailure { .. }));
}

#[test]
fn layered_and_fanout_reports_are_deterministic_across_shards() {
    fn run(shards: usize) -> (Vec<AttestationReport>, u64) {
        let mut c = CloudBuilder::new()
            .servers(3)
            .seed(41)
            .shards(shards)
            .build();
        let vid = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Ubuntu)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .unwrap();
        let reports = vec![
            c.layered_attest(vid, SecurityProperty::RuntimeIntegrity)
                .unwrap(),
            c.multi_attest(
                vid,
                &[
                    SecurityProperty::StartupIntegrity,
                    SecurityProperty::RuntimeIntegrity,
                    SecurityProperty::CovertChannelFreedom,
                ],
            )
            .unwrap(),
        ];
        (reports, c.drbg_probe())
    }
    let (r1, d1) = run(1);
    let (r4, d4) = run(4);
    let (r7, d7) = run(7);
    assert_eq!(r1, r4);
    assert_eq!(r1, r7);
    assert_eq!(d1, d4);
    assert_eq!(d1, d7);
}

#[test]
fn deferred_retransmits_during_batch_flushes_are_counted_once() {
    // Regression pin for the msg-4 coalescing hazard: a session parked
    // in the Attestation Server's batch buffer can still receive a
    // deferred retransmit (a duplicate quote the network delayed past
    // the retry timeout). Before the `in_batch` guard, that straggler
    // could re-park or re-advance the session, so one attestation was
    // counted twice in the ledger. With the guard it is rejected as a
    // duplicate and the exactly-once accounting identity holds under
    // every seed: every started session resolves to exactly one
    // completion or one failure, and nothing stays in flight.
    use monatt_net::sim::FaultModel;

    let mut saw_flush = false;
    let mut saw_duplicate = false;
    for seed in 0..6u64 {
        let mut c = CloudBuilder::new()
            .servers(3)
            .seed(300 + seed)
            .as_batch(1_500_000, 4)
            .build();
        let vids: Vec<_> = [Image::Cirros, Image::Ubuntu, Image::Fedora]
            .into_iter()
            .map(|image| {
                c.request_vm(
                    VmRequest::new(Flavor::Small, image)
                        .require(SecurityProperty::RuntimeIntegrity)
                        .workload(WorkloadSpec::Busy),
                )
                .unwrap()
            })
            .collect();
        let subs: Vec<_> = vids
            .iter()
            .map(|vid| {
                c.runtime_attest_periodic(*vid, SecurityProperty::RuntimeIntegrity, 5_000_000)
                    .unwrap()
            })
            .collect();
        // Duplicates plus a delay longer than the 2 ms retry timeout:
        // the original record triggers a retransmit, then the delayed
        // copy lands as a straggler — often while the session sits in
        // the coalescing buffer awaiting a flush.
        c.network_mut().set_fault_model(
            FaultModel::new(seed)
                .drop_prob(0.20)
                .duplicate_prob(0.50)
                .delay(0.40, 2_500),
        );
        c.reset_protocol_stats();
        c.run(31_000_000);
        c.network_mut().clear_fault_model();
        for sub in subs {
            c.stop_attest_periodic(sub).unwrap();
        }
        let stats = c.protocol_stats();
        assert_eq!(
            stats.sessions_started,
            stats.sessions_completed + stats.sessions_failed,
            "seed {seed}: session ledger drifted: {stats:?}"
        );
        assert_eq!(c.sessions_in_flight(), 0, "seed {seed}: stuck session");
        saw_flush |= stats.msg4_flushes > 0;
        saw_duplicate |= stats.duplicates_rejected > 0;
    }
    assert!(saw_flush, "no seed exercised a coalesced msg-4 flush");
    assert!(saw_duplicate, "no seed delivered a straggler duplicate");
}
