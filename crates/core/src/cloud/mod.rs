//! The `Cloud` facade: wires customer, Cloud Controller, Attestation
//! Server and Cloud Servers together over the simulated network, and
//! exposes the paper's monitoring/attestation APIs (Table 1), the VM
//! launch pipeline (Section 7.1.1), periodic attestation (Section 3.2.1)
//! and remediation responses (Section 5).
//!
//! The facade is split by concern:
//!
//! * `mod.rs` — the [`Cloud`] state, its accessors, the virtual clock
//!   and the event dispatcher, plus the synchronous Table-1 attestation
//!   wrappers that pump the event loop to completion.
//! * [`build`] — [`CloudBuilder`], [`VmRequest`] and the launch
//!   pipeline.
//! * [`subscriptions`] — periodic attestation ([`Frequency`],
//!   [`SubscriptionHealth`]) and [`Cloud::run`]'s event loop.
//! * [`response`] — the Response Module's remediation actions.
//!
//! The protocol state machines themselves live in [`crate::session`],
//! driven by the [`crate::engine`] event queue; this module only owns
//! the shared state they operate on.

mod build;
mod response;
mod subscriptions;
#[cfg(test)]
mod tests;

pub use build::{CloudBuilder, LaunchTiming, VmRequest, WorkloadHandles, WorkloadSpec};
pub use response::ResponseTiming;
pub use subscriptions::{Frequency, SubscriptionHealth};

use crate::attestation::AttestationServer;
use crate::controller::{CloudController, ResponseAction, VmLifecycle};
use crate::controlplane::{
    as_node, as_replica_index, controller_instance, controller_node, ControlPlaneStats,
    ControlPlaneTopology, CUSTOMER_ENDPOINT,
};
use crate::engine::ShardedEngine;
use crate::error::CloudError;
use crate::latency::{LatencyParams, RetryPolicy};
use crate::outage::{AdmissionControl, OutageModel, OutageStats};
use crate::protocol::{CompileError, ProgramId, ProgramRegistry, Protocol};
use crate::server::CloudServerNode;
use crate::session::{
    CloudEvent, Msg4Meta, PendingMsg4, SessionArena, SessionEvent, SessionId, SessionOrigin,
};
use crate::types::{HealthStatus, NodeId, ProtocolStats, SecurityProperty, ServerId, Vid};
use build::VmMeta;
use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::SigningKey;
use monatt_net::channel::{handshake_pair, SecureChannel};
use monatt_net::sim::SimNetwork;
use std::collections::{BTreeMap, BTreeSet};
use subscriptions::Subscription;

/// The customer-facing attestation result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttestationReport {
    /// The attested VM.
    pub vid: Vid,
    /// The property checked.
    pub property: SecurityProperty,
    /// The verdict.
    pub status: HealthStatus,
    /// End-to-end attestation latency (protocol + measurement window).
    pub elapsed_us: u64,
    /// At what cloud wall-clock time the report was issued.
    pub issued_at_us: u64,
}

impl AttestationReport {
    /// True if the property was judged to hold.
    pub fn healthy(&self) -> bool {
        self.status.is_healthy()
    }
}

/// Maps a protocol-compile error into the cloud's error type.
fn compile_failure(e: CompileError) -> CloudError {
    CloudError::ProtocolFailure {
        reason: format!("protocol did not compile: {e}"),
    }
}

/// Both endpoints of one SSL-like link, with the peer names resolved once
/// at build time so protocol hops never format endpoint identifiers.
pub(crate) struct ChannelPair {
    pub(crate) initiator: SecureChannel,
    pub(crate) responder: SecureChannel,
}

/// One secure link of the control-plane mesh, identified by the
/// instances it connects. The unit of lazy re-keying: a recovery marks
/// the node's links stale, and each link re-handshakes on first use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum LinkKey {
    /// Customer ↔ controller instance `i`.
    CustCtrl(u32),
    /// Controller instance `i` ↔ AS replica `r`.
    CtrlAs(u32, u32),
    /// AS replica `r` ↔ one cloud server.
    AsServer(u32, ServerId),
}

/// Every secure channel of the cloud, laid out by the control-plane
/// topology: `K` customer↔controller links, a `K×N` controller↔AS
/// mesh (row-major by controller instance), and one AS↔server link per
/// `(replica, server)`. The dormant K=1/N=1 layout is exactly the old
/// three-channel cloud.
pub(crate) struct ControlLinks {
    pub(crate) cust_ctrl: Vec<ChannelPair>,
    pub(crate) ctrl_as: Vec<ChannelPair>,
    /// Row width of `ctrl_as` (the AS pool size `N`).
    pub(crate) replicas: u32,
    pub(crate) as_server: BTreeMap<(u32, ServerId), ChannelPair>,
}

impl ControlLinks {
    pub(crate) fn cust_ctrl_mut(&mut self, instance: u32) -> Option<&mut ChannelPair> {
        self.cust_ctrl.get_mut(instance as usize)
    }

    pub(crate) fn ctrl_as_mut(&mut self, instance: u32, replica: u32) -> Option<&mut ChannelPair> {
        let idx = (instance as usize)
            .checked_mul(self.replicas.max(1) as usize)?
            .checked_add(replica as usize)?;
        self.ctrl_as.get_mut(idx)
    }

    pub(crate) fn as_server_mut(
        &mut self,
        replica: u32,
        server: ServerId,
    ) -> Option<&mut ChannelPair> {
        self.as_server.get_mut(&(replica, server))
    }
}

/// The long-term signing identities behind the secure channels,
/// retained so a recovered node re-handshakes fresh session keys —
/// channel state from before a crash never resumes. One identity per
/// controller instance and per AS replica (index 0 is the primary).
pub(crate) struct ChannelIdentities {
    pub(crate) customer: SigningKey,
    pub(crate) controllers: Vec<SigningKey>,
    pub(crate) attservers: Vec<SigningKey>,
    pub(crate) servers: BTreeMap<ServerId, SigningKey>,
}

impl ChannelIdentities {
    fn controller(&self, instance: u32) -> Option<&SigningKey> {
        self.controllers.get(instance as usize)
    }

    fn attserver(&self, replica: u32) -> Option<&SigningKey> {
        self.attservers.get(replica as usize)
    }
}

impl std::fmt::Debug for ChannelIdentities {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Signing material: identify the holders, never the bits.
        f.debug_struct("ChannelIdentities")
            .field("servers", &self.servers.len())
            .finish_non_exhaustive()
    }
}

/// The Attestation Server replica serving `replica` — index 0 is the
/// primary, indices ≥ 1 live in the pool. A free function (not a
/// method) so callers can borrow it alongside other `Cloud` fields.
/// An out-of-range index falls back to the primary rather than
/// panicking (defensive: routes are built from the topology, which
/// matches the pool by construction).
pub(crate) fn attserver_at<'a>(
    primary: &'a mut AttestationServer,
    pool: &'a mut [AttestationServer],
    replica: u32,
) -> &'a mut AttestationServer {
    if replica == 0 {
        return primary;
    }
    match pool.get_mut((replica - 1) as usize) {
        Some(a) => a,
        None => primary,
    }
}

/// Handshakes one link between two long-term identities and stamps the
/// peer names. A handshake between honest in-process parties only
/// fails on a simulation bug; the caller then leaves the old channel
/// in place (sessions on it will fail loudly) rather than panic.
fn rekey_pair(
    rng: &mut Drbg,
    a: &SigningKey,
    b: &SigningKey,
    a_name: &str,
    b_name: &str,
) -> Option<ChannelPair> {
    let (mut i, mut r) = handshake_pair(rng, a, b).ok()?;
    i.set_peer(b_name);
    r.set_peer(a_name);
    Some(ChannelPair {
        initiator: i,
        responder: r,
    })
}

/// Re-establishes one stale link with fresh session keys — the lazy
/// half of the post-recovery re-key, paid at the link's first use
/// instead of in a synchronized burst at recovery time. A free
/// function over destructured `Cloud` fields so the transmit path can
/// call it mid-borrow.
pub(crate) fn refresh_stale_link(
    rng: &mut Drbg,
    identities: &ChannelIdentities,
    links: &mut ControlLinks,
    outage_stats: &mut OutageStats,
    link: LinkKey,
) {
    let refreshed = match link {
        LinkKey::CustCtrl(i) => match (identities.controller(i), links.cust_ctrl_mut(i)) {
            (Some(ctrl), Some(slot)) => rekey_pair(
                rng,
                &identities.customer,
                ctrl,
                CUSTOMER_ENDPOINT,
                &controller_node(i).endpoint(),
            )
            .map(|pair| *slot = pair)
            .is_some(),
            _ => false,
        },
        LinkKey::CtrlAs(i, r) => {
            match (
                identities.controller(i),
                identities.attserver(r),
                links.ctrl_as_mut(i, r),
            ) {
                (Some(ctrl), Some(attsrv), Some(slot)) => rekey_pair(
                    rng,
                    ctrl,
                    attsrv,
                    &controller_node(i).endpoint(),
                    &as_node(r).endpoint(),
                )
                .map(|pair| *slot = pair)
                .is_some(),
                _ => false,
            }
        }
        LinkKey::AsServer(r, id) => {
            match (
                identities.attserver(r),
                identities.servers.get(&id),
                links.as_server_mut(r, id),
            ) {
                (Some(attsrv), Some(server), Some(slot)) => rekey_pair(
                    rng,
                    attsrv,
                    server,
                    &as_node(r).endpoint(),
                    &NodeId::Server(id).endpoint(),
                )
                .map(|pair| *slot = pair)
                .is_some(),
                _ => false,
            }
        }
    };
    if refreshed {
        outage_stats.rehandshakes += 1;
    }
}

/// The assembled CloudMonatt cloud.
pub struct Cloud {
    pub(crate) rng: Drbg,
    pub(crate) controller: CloudController,
    pub(crate) attserver: AttestationServer,
    /// Standby Attestation-Server replicas (replica indices 1..N), each
    /// a fully independent appraiser: own signing identity, own privacy
    /// CA, own evidence/AVK caches. Empty in the dormant topology.
    pub(crate) as_pool: Vec<AttestationServer>,
    /// Protocol signing identities of standby controller instances
    /// (instances 1..K); instance 0 signs with `controller`'s own key.
    pub(crate) ctrl_signing: Vec<SigningKey>,
    /// The replicated control-plane topology: shard ownership, replica
    /// health, and the per-session routing decisions.
    pub(crate) topology: ControlPlaneTopology,
    pub(crate) servers: BTreeMap<ServerId, CloudServerNode>,
    pub(crate) network: SimNetwork,
    pub(crate) links: ControlLinks,
    /// Links marked stale by a node recovery, re-keyed lazily on first
    /// use (see `OutageStats::deferred_rekeys`).
    pub(crate) stale_links: BTreeSet<LinkKey>,
    pub(crate) latency: LatencyParams,
    pub(crate) retry: RetryPolicy,
    /// The retry/timeout/backoff ladder for *control-plane* hops
    /// (messages 1, 2, 5, 6). Defaults to the data-plane policy, so the
    /// dormant topology draws an identical backoff stream.
    pub(crate) control_retry: RetryPolicy,
    pub(crate) escalation_threshold: u32,
    pub(crate) stats: ProtocolStats,
    pub(crate) wall_clock_us: u64,
    pub(crate) last_launch: Option<LaunchTiming>,
    pub(crate) subscriptions: BTreeMap<u64, Subscription>,
    pub(crate) next_subscription: u64,
    pub(crate) auto_response: bool,
    pub(crate) vm_meta: BTreeMap<Vid, VmMeta>,
    pub(crate) seed: u64,
    /// The discrete-event queue every time-driven step goes through: a
    /// K-sharded timer wheel whose merged pop order is independent of K
    /// (see `crate::engine`).
    pub(crate) engine: ShardedEngine<CloudEvent>,
    /// In-flight attestation sessions: a slab arena whose slots retain
    /// their buffers across sessions (see [`crate::arena`]).
    pub(crate) sessions: SessionArena,
    /// Per-server instant until which the measurement window is owned by
    /// some session (windows are server-global; see `crate::session`).
    pub(crate) window_free_at: BTreeMap<ServerId, u64>,
    /// While [`Cloud::run`] drains the queue, the horizon past which no
    /// new subscription firings are scheduled.
    pub(crate) run_horizon: Option<u64>,
    /// Automatic remediation responses that themselves failed (the error
    /// used to be silently discarded).
    pub(crate) auto_response_failures: u64,
    /// Long-term identities for post-recovery channel re-handshakes.
    pub(crate) identities: ChannelIdentities,
    /// The installed node-outage schedule, if any.
    pub(crate) outages: Option<OutageModel>,
    /// Node-failure activity counters.
    pub(crate) outage_stats: OutageStats,
    /// Nodes currently crashed.
    pub(crate) down: BTreeSet<NodeId>,
    /// The Attestation Server's admission gate, if configured.
    pub(crate) admission: Option<AdmissionControl>,
    /// End-to-end deadline budget applied to every new session, if any.
    pub(crate) session_deadline_us: Option<u64>,
    /// Reusable buffer for the record a transmit delivers (the wire
    /// bytes between seal and open). One message is in flight per
    /// transmit resolution, so a single cloud-wide buffer suffices.
    pub(crate) record_scratch: Vec<u8>,
    /// Reusable buffer ping-ponged with a session's `inbox` while the
    /// delivered plaintext is dispatched (see `Cloud::step_arrival`).
    pub(crate) inbox_scratch: Vec<u8>,
    /// Reusable encode buffers for rebuilding quote fields (measurement
    /// spec/measurement, property/status) during validation and
    /// certification.
    pub(crate) quote_scratch: monatt_net::wire::EncodeScratch,
    /// Msg-4 coalescing window at the Attestation Server, microseconds.
    /// 0 (the default) disables coalescing: message 4 validates inline
    /// on arrival, the pre-batching path.
    pub(crate) as_batch_window_us: u64,
    /// Maximum responses per coalesced batch; reaching it flushes
    /// immediately (inline, before the window timer).
    pub(crate) as_batch_max: usize,
    /// Measurement responses parked at the Attestation Server awaiting
    /// the next batched validation pass.
    pub(crate) pending_msg4: Vec<PendingMsg4>,
    /// Reusable per-flush scratch for re-read session expectations;
    /// cleared each batch, capacity retained so steady-state flushes do
    /// not reallocate.
    pub(crate) batch_meta: Vec<Option<Msg4Meta>>,
    /// Evidence-cache validity window: `Some(ttl)` serves repeat
    /// attestation requests for the same `(Vid, property)` from the AS
    /// cache for `ttl` microseconds. `None` (the default) disables the
    /// cache entirely.
    pub(crate) evidence_ttl_us: Option<u64>,
    /// Compiled attestation-protocol programs: the standard Figure-3
    /// customer/internal exchanges, layered attestation, cached fan-out
    /// variants, and anything registered through
    /// [`Cloud::register_protocol`].
    pub(crate) programs: ProgramRegistry,
}

impl std::fmt::Debug for Cloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cloud")
            .field("servers", &self.servers.len())
            .field("wall_clock_us", &self.wall_clock_us)
            .field("sessions_in_flight", &self.sessions.len())
            .finish_non_exhaustive()
    }
}

impl Cloud {
    /// Current cloud wall-clock time in microseconds.
    pub fn wall_clock_us(&self) -> u64 {
        self.wall_clock_us
    }

    /// Number of cloud servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The server currently hosting `vid`.
    pub fn server_of(&self, vid: Vid) -> Option<ServerId> {
        self.controller.vm(vid).map(|r| r.server)
    }

    /// Lifecycle state of `vid`.
    pub fn vm_state(&self, vid: Vid) -> Option<VmLifecycle> {
        self.controller.vm(vid).map(|r| r.state)
    }

    /// Read access to a server node (monitor tools, experiment checks).
    /// State is as of the node's last catch-up; call [`Cloud::advance`]
    /// or [`Cloud::sync_servers`] first for current values.
    pub fn server(&self, id: ServerId) -> Option<&CloudServerNode> {
        self.servers.get(&id)
    }

    /// Mutable server access — used by attack injection in experiments.
    /// The node is caught up to the wall clock first.
    pub fn server_mut(&mut self, id: ServerId) -> Option<&mut CloudServerNode> {
        self.touch_server(id)
    }

    /// The network, for installing Dolev-Yao adversaries and fault
    /// models in experiments.
    pub fn network_mut(&mut self) -> &mut SimNetwork {
        &mut self.network
    }

    /// Turns the simulated network's transmission log on or off (on by
    /// default). Large-fleet sweeps turn it off: per-message log
    /// entries are the only allocations a warm attestation round makes.
    /// Message fates, latencies and RNG draws are unaffected.
    pub fn set_network_logging(&mut self, on: bool) {
        self.network.set_logging(on);
    }

    /// Per-hop protocol delivery counters (retries, drops seen,
    /// duplicates rejected, timeouts) and session gauges accumulated
    /// since the last reset.
    pub fn protocol_stats(&self) -> ProtocolStats {
        self.stats
    }

    /// Zeroes the protocol counters (e.g. between experiment phases).
    pub fn reset_protocol_stats(&mut self) {
        self.stats = ProtocolStats::default();
    }

    /// The per-hop retransmission policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Attestation sessions currently in flight.
    pub fn sessions_in_flight(&self) -> usize {
        self.sessions.len()
    }

    /// Automatic remediation responses that themselves failed. A failed
    /// auto-response is recorded here (and on the owning subscription's
    /// [`SubscriptionHealth::failed_responses`]) instead of being
    /// silently discarded.
    pub fn auto_response_failures(&self) -> u64 {
        self.auto_response_failures
    }

    /// Diagnostic: draws and returns one value from the cloud's DRBG.
    ///
    /// Determinism tests use this as an RNG-position fingerprint — two
    /// runs that made the same draws in the same order return the same
    /// probe value. It mutates the DRBG state, so call it only at the
    /// end of a scenario.
    pub fn drbg_probe(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// The stage breakdown of the most recent launch (Figure 9).
    pub fn last_launch_timing(&self) -> Option<LaunchTiming> {
        self.last_launch
    }

    /// Advances the wall clock by `duration_us` and catches every server
    /// simulator up to it — the synchronous scenario-boundary form, after
    /// which observed server state (workload progress, CPU time) is
    /// current.
    pub fn advance(&mut self, duration_us: u64) {
        self.wall_clock_us += duration_us;
        self.sync_servers();
    }

    /// Catches every server simulator up to the wall clock. Internal
    /// event dispatch moves only the wall clock (lazy pull — O(1) in
    /// fleet size); each node pays its elapsed time when next touched,
    /// or here in bulk.
    pub fn sync_servers(&mut self) {
        let wall = self.wall_clock_us;
        for node in self.servers.values_mut() {
            node.catch_up(wall);
        }
    }

    /// Advances the clock to the absolute instant `due_us` (no-op if the
    /// clock is already there or past — events scheduled "in the past"
    /// fire at the current time). Only the wall clock moves; server
    /// simulators catch up lazily at their next touch point, so
    /// dispatching an event costs O(1) in fleet size.
    pub(crate) fn advance_to(&mut self, due_us: u64) {
        if due_us > self.wall_clock_us {
            self.wall_clock_us = due_us;
        }
    }

    /// The server node, caught up to the wall clock — the one mutable
    /// access path for protocol and lifecycle code, so a lazily lagging
    /// simulator is never observed or mutated at a stale instant.
    pub(crate) fn touch_server(&mut self, id: ServerId) -> Option<&mut CloudServerNode> {
        let wall = self.wall_clock_us;
        let node = self.servers.get_mut(&id)?;
        node.catch_up(wall);
        Some(node)
    }

    /// Routes one popped event to its handler.
    pub(crate) fn dispatch_event(&mut self, event: CloudEvent) {
        match event {
            CloudEvent::Session { sid, event } => self.step_session(sid, event),
            CloudEvent::SubscriptionDue { id } => self.start_subscription_sample(id),
            CloudEvent::Outage { node, down, chain } => self.apply_outage(node, down, chain),
            CloudEvent::Msg4Flush => self.flush_msg4_batch(),
        }
    }

    /// Schedules an event and maintains the queue-depth gauge. The
    /// shard key routes the entry to one of the K wheels — session and
    /// outage traffic by server, subscription firings by subscription
    /// id — but never affects the pop order (see `crate::engine`).
    pub(crate) fn schedule_cloud_event(&mut self, due_us: u64, event: CloudEvent) {
        let shard_key = match &event {
            CloudEvent::Session { sid, .. } => self
                .sessions
                .get(*sid)
                .map(|s| s.server.0 as u64)
                .unwrap_or(0),
            CloudEvent::SubscriptionDue { id } => *id,
            CloudEvent::Outage { node, .. } => match node {
                NodeId::Server(s) => s.0 as u64,
                NodeId::Controller
                | NodeId::AttestationServer
                | NodeId::ControllerReplica(_)
                | NodeId::AsReplica(_) => 0,
            },
            // The coalescing buffer is Attestation-Server state.
            CloudEvent::Msg4Flush => 0,
        };
        self.engine.schedule(due_us, shard_key, event);
        self.stats.max_queue_depth = self
            .stats
            .max_queue_depth
            .max(self.engine.max_depth() as u64);
    }

    /// Per-shard high-water marks of the event-queue depth. With K=1
    /// this is a one-element slice equal to
    /// [`ProtocolStats::max_queue_depth`]; at K>1 the merged total stays
    /// in the stats and the breakdown lives here.
    pub fn shard_queue_depths(&self) -> &[usize] {
        self.engine.shard_depths()
    }

    /// Schedules a session-step event.
    pub(crate) fn schedule_session_event(
        &mut self,
        due_us: u64,
        sid: SessionId,
        event: SessionEvent,
    ) {
        self.schedule_cloud_event(due_us, CloudEvent::Session { sid, event });
    }

    pub(crate) fn fresh_nonce(&mut self) -> [u8; 32] {
        self.rng.next_bytes32()
    }

    /// Executes an automatic remediation response, recording (instead of
    /// discarding) a failure. Returns whether the response succeeded.
    pub(crate) fn auto_respond(&mut self, vid: Vid, action: ResponseAction) -> bool {
        match self.respond(vid, action) {
            Ok(_) => true,
            Err(_) => {
                self.auto_response_failures += 1;
                false
            }
        }
    }

    // ---- Node-level failure and overload -------------------------------

    /// Installs (or replaces) a node-outage schedule. Transitions fire
    /// as engine events during [`Cloud::run`].
    pub fn set_outage_model(&mut self, model: OutageModel) {
        self.outages = Some(model);
    }

    /// Removes the outage schedule (nodes currently down stay down
    /// until recovered via [`Cloud::recover_node`]).
    pub fn clear_outage_model(&mut self) {
        self.outages = None;
    }

    /// Sets (or clears) the end-to-end deadline budget applied to every
    /// session started from now on; in-flight sessions keep the budget
    /// they were spawned with. `None` (the default) leaves sessions
    /// unbounded.
    pub fn set_session_deadline(&mut self, budget_us: Option<u64>) {
        self.session_deadline_us = budget_us;
    }

    /// Node-failure activity counters.
    pub fn outage_stats(&self) -> OutageStats {
        self.outage_stats
    }

    /// Whether `node` is currently crashed.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// The nodes currently crashed.
    pub fn down_nodes(&self) -> Vec<NodeId> {
        self.down.iter().copied().collect()
    }

    /// Whether the Attestation Server's admission gate is currently
    /// refusing new sessions.
    pub fn is_shedding(&self) -> bool {
        self.admission.is_some_and(|g| g.is_shedding())
    }

    /// Experiment hook: crashes `node` immediately (the event-driven
    /// path is a scripted or stochastic [`OutageModel`]). Idempotent.
    /// Deliveries to and from the node black-hole, in-flight sessions
    /// touching it fail fast with [`CloudError::NodeDown`], and a cloud
    /// server's resident VMs are evacuated to live servers.
    pub fn crash_node(&mut self, node: NodeId) {
        self.apply_crash(node);
    }

    /// Experiment hook: recovers `node` immediately. Idempotent. Every
    /// secure channel the node terminates is marked stale and
    /// re-handshaked on first use — session keys from before the crash
    /// never resume, without a synchronized handshake burst at
    /// recovery.
    pub fn recover_node(&mut self, node: NodeId) {
        self.apply_recovery(node);
    }

    /// The replicated control-plane topology: shard ownership, replica
    /// health and sizing. Dormant (K=1, N=1) unless configured via
    /// [`CloudBuilder::control_plane`].
    pub fn control_plane(&self) -> &ControlPlaneTopology {
        &self.topology
    }

    /// Cumulative control-plane failover/reroute counters.
    pub fn control_plane_stats(&self) -> ControlPlaneStats {
        self.topology.stats()
    }

    /// The public identity key (VKc) of one controller instance.
    /// Instance 0 is the primary `controller`; standbys sign with their
    /// own per-instance keys, so a customer report pins the exact
    /// instance that served the session.
    pub(crate) fn controller_identity_key(
        &self,
        instance: u32,
    ) -> monatt_crypto::schnorr::VerifyingKey {
        match instance
            .checked_sub(1)
            .and_then(|i| self.ctrl_signing.get(i as usize))
        {
            Some(key) => key.verifying_key(),
            None => self.controller.identity_key(),
        }
    }

    /// The public identity key (VKa) of one Attestation-Server replica.
    /// Replica 0 is the primary `attserver`; pool replicas carry their
    /// own identities (per-replica pCA certification — no shared key).
    pub(crate) fn attserver_identity_key(
        &self,
        replica: u32,
    ) -> monatt_crypto::schnorr::VerifyingKey {
        match replica
            .checked_sub(1)
            .and_then(|i| self.as_pool.get(i as usize))
        {
            Some(attsrv) => attsrv.identity_key(),
            None => self.attserver.identity_key(),
        }
    }

    /// Signs the message-6 customer report with the routed controller
    /// instance's own key (instance 0 delegates to `controller`).
    pub(crate) fn certify_msg6(
        &mut self,
        instance: u32,
        vid: Vid,
        property: SecurityProperty,
        status: HealthStatus,
        nonce1: [u8; 32],
    ) -> crate::messages::CustomerReportMsg {
        let Cloud {
            controller,
            ctrl_signing,
            quote_scratch,
            ..
        } = self;
        let key = match instance
            .checked_sub(1)
            .and_then(|i| ctrl_signing.get(i as usize))
        {
            Some(key) => key,
            None => controller.signing_key(),
        };
        CloudController::certify_customer_report_keyed(
            key,
            vid,
            property,
            status,
            nonce1,
            quote_scratch,
        )
    }

    /// Servers currently crashed (the exclusion set for placement).
    pub(crate) fn down_servers(&self) -> BTreeSet<ServerId> {
        self.down
            .iter()
            .filter_map(|n| match n {
                NodeId::Server(id) => Some(*id),
                _ => None,
            })
            .collect()
    }

    /// The Attestation Server's admission decision for one new session.
    pub(crate) fn admit_session(&mut self) -> Result<(), CloudError> {
        let Some(gate) = self.admission.as_mut() else {
            return Ok(());
        };
        let in_flight = self.sessions.len();
        if !gate.admit(in_flight) {
            self.stats.sessions_shed += 1;
            return Err(CloudError::Overloaded { in_flight });
        }
        Ok(())
    }

    /// One outage-schedule transition fired; `chain` asks the renewal
    /// process for the follow-up transition.
    pub(crate) fn apply_outage(&mut self, node: NodeId, down: bool, chain: bool) {
        if down {
            self.apply_crash(node);
        } else {
            self.apply_recovery(node);
        }
        if !chain {
            return;
        }
        let chained = match self.outages.as_mut() {
            Some(model) => {
                model.chain(node, down, self.wall_clock_us);
                match self.run_horizon {
                    // Only chain-schedule within the current run's
                    // horizon; later transitions stay pending in the
                    // model and seed the next run.
                    Some(end) => model.drain_due(end),
                    None => Vec::new(),
                }
            }
            None => Vec::new(),
        };
        for t in chained {
            let at = t.at_us.max(self.wall_clock_us);
            self.schedule_cloud_event(
                at,
                CloudEvent::Outage {
                    node: t.node,
                    down: t.down,
                    chain: t.stochastic,
                },
            );
        }
    }

    pub(crate) fn apply_crash(&mut self, node: NodeId) {
        if !self.down.insert(node) {
            return;
        }
        self.outage_stats.crashes += 1;
        self.network.set_endpoint_down(&node.endpoint());
        // A crashed controller instance hands its shards to the next
        // live instance on the ring; a crashed AS replica drops out of
        // selection. New sessions route around the hole — the in-flight
        // ones pinned to it fail fast below and re-admit.
        self.topology.on_crash(node);
        // Fail in-flight sessions whose current hop depends on the
        // node. Sessions already holding a verdict or a parked outcome
        // keep it — their network work is done.
        let victims: Vec<SessionId> = self
            .sessions
            .iter()
            .filter(|(_, s)| !s.is_terminal() && s.touches(node))
            .map(|(sid, _)| sid)
            .collect();
        for sid in victims {
            self.finish_session_node_down(sid, node);
        }
        // Cached trust does not survive the platform that produced it.
        // Replica state is independent: a crashed replica loses *its*
        // evidence/AVK caches, the other replicas keep theirs.
        match node {
            NodeId::Server(id) => {
                self.attserver.invalidate_evidence_for_server(id);
                for replica in self.as_pool.iter_mut() {
                    replica.invalidate_evidence_for_server(id);
                }
                // The server's volatile attestation session dies with it.
                if let Some(n) = self.servers.get_mut(&id) {
                    n.reset_avk_session();
                }
            }
            NodeId::AttestationServer | NodeId::AsReplica(_) => {
                if let Some(r) = as_replica_index(node) {
                    attserver_at(&mut self.attserver, &mut self.as_pool, r)
                        .invalidate_all_evidence();
                }
            }
            NodeId::Controller | NodeId::ControllerReplica(_) => {}
        }
        if let NodeId::Server(id) = node {
            // A crashed server's measurement window dies with it.
            self.window_free_at.remove(&id);
            self.evacuate_server(id);
        }
    }

    pub(crate) fn apply_recovery(&mut self, node: NodeId) {
        if !self.down.remove(&node) {
            return;
        }
        self.outage_stats.recoveries += 1;
        self.network.set_endpoint_up(&node.endpoint());
        self.topology.on_recover(node);
        // Channel re-keying is deferred to first use (a mass recovery
        // must not burst handshakes), but the *trust boundary* advances
        // now: the pCA epoch of every replica whose links went stale
        // bumps (staling issued AVK certificates and dropping the
        // certified-AVK cache), and servers reusing an attestation
        // session start a fresh one.
        self.mark_links_stale(node);
        match node {
            NodeId::Server(id) => {
                self.attserver.on_rekey();
                for replica in self.as_pool.iter_mut() {
                    replica.on_rekey();
                }
                if let Some(n) = self.servers.get_mut(&id) {
                    n.reset_avk_session();
                }
            }
            NodeId::AttestationServer | NodeId::AsReplica(_) => {
                if let Some(r) = as_replica_index(node) {
                    attserver_at(&mut self.attserver, &mut self.as_pool, r).on_rekey();
                }
                for n in self.servers.values_mut() {
                    n.reset_avk_session();
                }
            }
            NodeId::Controller | NodeId::ControllerReplica(_) => {
                self.attserver.on_rekey();
                for replica in self.as_pool.iter_mut() {
                    replica.on_rekey();
                }
            }
        }
    }

    /// Marks every secure link `node` terminates stale. Each stale link
    /// re-handshakes on its first post-recovery use (see
    /// [`refresh_stale_link`], called from the transmit path): session
    /// keys from before the crash never resume, but a mass recovery
    /// costs nothing until traffic actually crosses a link.
    fn mark_links_stale(&mut self, node: NodeId) {
        let k = self.topology.controllers();
        let n = self.topology.replicas();
        let mark = |stale: &mut BTreeSet<LinkKey>, stats: &mut OutageStats, link: LinkKey| {
            if stale.insert(link) {
                stats.deferred_rekeys += 1;
            }
        };
        if let Some(i) = controller_instance(node) {
            mark(
                &mut self.stale_links,
                &mut self.outage_stats,
                LinkKey::CustCtrl(i),
            );
            for r in 0..n {
                mark(
                    &mut self.stale_links,
                    &mut self.outage_stats,
                    LinkKey::CtrlAs(i, r),
                );
            }
        } else if let Some(r) = as_replica_index(node) {
            for i in 0..k {
                mark(
                    &mut self.stale_links,
                    &mut self.outage_stats,
                    LinkKey::CtrlAs(i, r),
                );
            }
            let servers: Vec<ServerId> = self.identities.servers.keys().copied().collect();
            for id in servers {
                mark(
                    &mut self.stale_links,
                    &mut self.outage_stats,
                    LinkKey::AsServer(r, id),
                );
            }
        } else if let NodeId::Server(id) = node {
            for r in 0..n {
                mark(
                    &mut self.stale_links,
                    &mut self.outage_stats,
                    LinkKey::AsServer(r, id),
                );
            }
        }
    }

    /// The full customer-facing attestation (all six messages of Figure
    /// 3), shared by the Table 1 APIs: starts a session and pumps the
    /// event loop until it completes.
    fn customer_attest(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
    ) -> Result<AttestationReport, CloudError> {
        if let Some(report) = self.evidence_probe(vid, property) {
            return Ok(report);
        }
        let sid = self.begin_customer_session(vid, property, SessionOrigin::Api)?;
        let outcome = self.pump_session(sid)?;
        Ok(AttestationReport {
            vid,
            property,
            status: outcome.status,
            elapsed_us: outcome.elapsed_us,
            issued_at_us: self.wall_clock_us,
        })
    }

    /// Serves an attestation from the Attestation Server's evidence
    /// cache, when a validity window is configured
    /// ([`CloudBuilder::evidence_cache`]) and fresh evidence for
    /// `(vid, property)` exists. The measurement hops (messages 3 and 4,
    /// the window, the quote) are skipped entirely — the sub-attestation
    /// reuse idea — and the caller pays only the request/report
    /// processing at the controller and AS (messages 1, 2, 5 and 6).
    /// Returns `None` when the cache is disabled, the VM is gone, or the
    /// evidence is stale; the caller then runs the full protocol.
    pub(crate) fn evidence_probe(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
    ) -> Option<AttestationReport> {
        self.evidence_ttl_us?;
        let record = self.controller.vm(vid)?;
        if record.state == VmLifecycle::Terminated {
            return None;
        }
        let now = self.wall_clock_us;
        // Probe the replica this VM is currently served by; replica
        // caches are warmed independently, so a rerouted VM pays the
        // full protocol until its new replica has evidence.
        let replica = self.topology.serving_replica(vid);
        let cached = attserver_at(&mut self.attserver, &mut self.as_pool, replica)
            .evidence_lookup(vid, property, now)?;
        let elapsed_us = self.latency.post_hop_us(1)
            + self.latency.post_hop_us(2)
            + self.latency.post_hop_us(5)
            + self.latency.post_hop_us(6);
        self.advance(elapsed_us);
        Some(AttestationReport {
            vid,
            property,
            status: cached.status,
            elapsed_us,
            issued_at_us: self.wall_clock_us,
        })
    }

    /// Evidence-cache hits and misses, summed over the Attestation
    /// Server and every pool replica (each keeps its own cache).
    pub fn evidence_cache_stats(&self) -> (u64, u64) {
        let (mut hits, mut misses) = self.attserver.evidence_cache_stats();
        for replica in &self.as_pool {
            let (h, m) = replica.evidence_cache_stats();
            hits += h;
            misses += m;
        }
        (hits, misses)
    }

    /// Evidence-cache hits and misses for one AS replica (0 is the
    /// primary). Lets tests and the chaos sweep prove cache
    /// *independence*: a crashed replica loses its evidence, the
    /// others keep theirs.
    pub fn replica_evidence_cache_stats(&self, replica: u32) -> (u64, u64) {
        replica
            .checked_sub(1)
            .and_then(|i| self.as_pool.get(i as usize))
            .unwrap_or(&self.attserver)
            .evidence_cache_stats()
    }

    /// Certified-AVK cache hits and misses, summed over every
    /// replica's privacy CA.
    pub fn avk_cert_cache_stats(&self) -> (u64, u64) {
        let (mut hits, mut misses) = self.attserver.avk_cert_cache_stats();
        for replica in &self.as_pool {
            let (h, m) = replica.avk_cert_cache_stats();
            hits += h;
            misses += m;
        }
        (hits, misses)
    }

    /// Table 1: `startup_attest_current(Vid, P, N)` — attestation before
    /// / at launch time.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] or a protocol failure.
    pub fn startup_attest_current(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
    ) -> Result<AttestationReport, CloudError> {
        self.customer_attest(vid, property)
    }

    /// Table 1: `runtime_attest_current(Vid, P, N)` — an immediate
    /// runtime attestation.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] or a protocol failure.
    pub fn runtime_attest_current(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
    ) -> Result<AttestationReport, CloudError> {
        let report = self.customer_attest(vid, property)?;
        if !report.healthy() && self.auto_response {
            let action = self.controller.choose_response(property);
            self.auto_respond(vid, action);
        }
        Ok(report)
    }

    /// Layered attestation ([`Protocol::layered`]): appraise the VM's
    /// hosting platform first (a delegated boot-chain appraisal of the
    /// VMM/hypervisor), and only if that verdict is healthy measure the
    /// VM itself for `property` — the VM's VMI quote is gated on the
    /// platform's. An unhealthy platform skips the VM measurement
    /// entirely and the report certifies the negative platform verdict.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] or a protocol failure.
    pub fn layered_attest(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
    ) -> Result<AttestationReport, CloudError> {
        let program = self.programs.layered;
        self.attest_with_program(vid, property, program)
    }

    /// Multi-property fan-out ([`Protocol::fanout`]): one session
    /// measures every property in `properties` through parallel
    /// delegated measurement branches (each with its own window and
    /// quote) and certifies one combined report — healthy iff every
    /// branch is healthy. The report's `property` field carries the
    /// first requested property.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`], a protocol failure, or a protocol
    /// compile error for an empty property list.
    pub fn multi_attest(
        &mut self,
        vid: Vid,
        properties: &[SecurityProperty],
    ) -> Result<AttestationReport, CloudError> {
        let Some(&first) = properties.first() else {
            return Err(CloudError::ProtocolFailure {
                reason: "fan-out needs at least one property".into(),
            });
        };
        let program = self
            .programs
            .fanout_for(properties)
            .map_err(compile_failure)?;
        self.attest_with_program(vid, first, program)
    }

    /// Compiles and registers an arbitrary attestation-protocol term;
    /// the returned handle runs through
    /// [`Cloud::attest_with_program`].
    ///
    /// # Errors
    ///
    /// A [`CloudError::ProtocolFailure`] carrying the compile error if
    /// the term is ill-formed.
    pub fn register_protocol(&mut self, protocol: &Protocol) -> Result<ProgramId, CloudError> {
        self.programs.register(protocol).map_err(compile_failure)
    }

    /// Runs a registered protocol program as one synchronous session
    /// against `vid` (the program decides which hops, windows, forks
    /// and delegations happen).
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] or a protocol failure.
    pub fn attest_with_program(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
        program: ProgramId,
    ) -> Result<AttestationReport, CloudError> {
        let sid = self.begin_program_session(vid, property, program, SessionOrigin::Api)?;
        let outcome = self.pump_session(sid)?;
        Ok(AttestationReport {
            vid,
            property,
            status: outcome.status,
            elapsed_us: outcome.elapsed_us,
            issued_at_us: self.wall_clock_us,
        })
    }

    /// Completed service requests of a [`WorkloadSpec::Service`] VM
    /// (throughput measurements, Figure 10).
    pub fn service_requests(&self, vid: Vid) -> Option<u64> {
        self.vm_meta
            .get(&vid)?
            .handles
            .service
            .as_ref()
            .map(|s| s.borrow().requests)
    }

    /// Completion time of a [`WorkloadSpec::Program`] VM, if finished.
    pub fn program_elapsed_us(&self, vid: Vid) -> Option<u64> {
        self.vm_meta
            .get(&vid)?
            .handles
            .program
            .as_ref()
            .and_then(|s| s.borrow().elapsed_us())
    }

    /// Experiment hook: infects a VM with rootkit-hidden malware (Case
    /// Study II).
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] if the VM is not hosted anywhere.
    pub fn infect_vm(&mut self, vid: Vid, service_name: &str) -> Result<u32, CloudError> {
        let server = self.server_of(vid).ok_or(CloudError::UnknownVm(vid))?;
        let node = self
            .touch_server(server)
            .ok_or(CloudError::UnknownServer(server))?;
        let local = node.local_vm(vid).ok_or(CloudError::UnknownVm(vid))?;
        let pid = monatt_attacks::rootkit::infect_with_rootkit(node.sim_mut(), local, service_name)
            .ok_or(CloudError::UnknownVm(vid))?;
        Ok(pid)
    }
}
