//! Cloud assembly and the VM launch pipeline: [`CloudBuilder`],
//! [`VmRequest`], workload instantiation and [`Cloud::request_vm`]
//! (Section 7.1.1's Scheduling → Networking → Block-device-mapping →
//! Spawning → Attestation stages).

use super::{ChannelIdentities, ChannelPair, Cloud, ControlLinks};
use crate::attestation::AttestationServer;
use crate::controller::{CloudController, ServerInfo, VmLifecycle, VmRecord};
use crate::controlplane::{as_node, controller_node, ControlPlaneTopology, CUSTOMER_ENDPOINT};
use crate::engine::ShardedEngine;
use crate::error::CloudError;
use crate::interpret::ReferenceDb;
use crate::latency::{LatencyParams, RetryPolicy};
use crate::server::CloudServerNode;
use crate::types::{Flavor, HealthStatus, Image, ProtocolStats, SecurityProperty, ServerId, Vid};
use monatt_attacks::boost::{boost_attack_drivers, BoostAttackVcpu};
use monatt_attacks::covert::CovertSender;
use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::SigningKey;
use monatt_hypervisor::driver::{BusyLoop, IdleDriver, WorkloadDriver};
use monatt_hypervisor::scheduler::SchedParams;
use monatt_net::channel::handshake_pair;
use monatt_net::sim::SimNetwork;
use monatt_workloads::programs::SpecProgram;
use monatt_workloads::services::CloudService;
use std::collections::BTreeMap;

/// The guest workload to run in a requested VM. Kept as a declarative
/// spec so migration can re-instantiate it on the destination server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// All vCPUs idle.
    Idle,
    /// CPU-bound busy loop on every vCPU.
    Busy,
    /// A cloud benchmark service on vCPU 0.
    Service(CloudService),
    /// A SPEC-like CPU-bound program on vCPU 0.
    Program(SpecProgram),
    /// The covert-channel sender of Case Study III (transmits a fixed
    /// pattern).
    CovertSender,
    /// The IPI-boost availability attacker of Case Study IV.
    BoostAttack,
}

/// Observation handles exported by a workload (for throughput and
/// completion measurements in experiments).
#[derive(Clone, Debug, Default)]
pub struct WorkloadHandles {
    /// Request counter of a [`WorkloadSpec::Service`] workload.
    pub service: Option<monatt_hypervisor::driver::Shared<monatt_workloads::ServiceStats>>,
    /// Completion record of a [`WorkloadSpec::Program`] workload.
    pub program: Option<monatt_hypervisor::driver::Shared<monatt_workloads::ProgramStats>>,
}

impl WorkloadSpec {
    pub(crate) fn drivers(
        &self,
        vcpus: usize,
        seed: u64,
    ) -> (Vec<Box<dyn WorkloadDriver>>, WorkloadHandles) {
        let mut drivers: Vec<Box<dyn WorkloadDriver>> = Vec::with_capacity(vcpus);
        let mut handles = WorkloadHandles::default();
        match self {
            WorkloadSpec::Idle => {
                for _ in 0..vcpus {
                    drivers.push(Box::new(IdleDriver));
                }
            }
            WorkloadSpec::Busy => {
                for _ in 0..vcpus {
                    drivers.push(Box::new(BusyLoop::default()));
                }
            }
            WorkloadSpec::Service(svc) => {
                let driver = svc.driver(seed);
                handles.service = Some(driver.stats());
                drivers.push(Box::new(driver));
                for _ in 1..vcpus {
                    drivers.push(Box::new(IdleDriver));
                }
            }
            WorkloadSpec::Program(prog) => {
                let driver = prog.driver();
                handles.program = Some(driver.stats());
                drivers.push(Box::new(driver));
                for _ in 1..vcpus {
                    drivers.push(Box::new(IdleDriver));
                }
            }
            WorkloadSpec::CovertSender => {
                drivers.push(Box::new(CovertSender::new(b"\xA5")));
                for _ in 1..vcpus {
                    drivers.push(Box::new(IdleDriver));
                }
            }
            WorkloadSpec::BoostAttack => {
                if vcpus >= 2 {
                    drivers.extend(boost_attack_drivers());
                    for _ in 2..vcpus {
                        drivers.push(Box::new(IdleDriver));
                    }
                } else {
                    drivers.push(Box::new(BoostAttackVcpu::new(0)));
                }
            }
        }
        (drivers, handles)
    }
}

/// A VM request, as submitted by the customer.
#[derive(Clone, Debug)]
pub struct VmRequest {
    /// VM size.
    pub flavor: Flavor,
    /// Boot image.
    pub image: Image,
    /// Security properties to provision monitoring for.
    pub properties: Vec<SecurityProperty>,
    /// Guest workload.
    pub workload: WorkloadSpec,
    /// Experiment hook: corrupt the image in storage before launch
    /// (Case Study I attack).
    pub tampered_image: bool,
    /// Experiment hook: force placement on a specific server.
    pub on_server: Option<ServerId>,
    /// Experiment hook: pin all vCPUs to one pCPU (co-residency).
    pub pin_pcpu: Option<usize>,
}

impl VmRequest {
    /// Creates a request with no security properties and an idle guest.
    pub fn new(flavor: Flavor, image: Image) -> Self {
        VmRequest {
            flavor,
            image,
            properties: Vec::new(),
            workload: WorkloadSpec::Idle,
            tampered_image: false,
            on_server: None,
            pin_pcpu: None,
        }
    }

    /// Adds a required security property.
    pub fn require(mut self, property: SecurityProperty) -> Self {
        self.properties.push(property);
        self
    }

    /// Sets the guest workload.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Corrupts the image in storage (attack experiment).
    pub fn with_tampered_image(mut self) -> Self {
        self.tampered_image = true;
        self
    }

    /// Forces placement on `server` (experiment hook).
    pub fn on_server(mut self, server: ServerId) -> Self {
        self.on_server = Some(server);
        self
    }

    /// Pins all vCPUs to pCPU `p` of the chosen server (experiment hook).
    pub fn pin_pcpu(mut self, p: usize) -> Self {
        self.pin_pcpu = Some(p);
        self
    }
}

/// Stage breakdown of one VM launch (Figure 9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaunchTiming {
    /// Scheduling stage (incl. the CloudMonatt property filter).
    pub scheduling_us: u64,
    /// Networking stage.
    pub networking_us: u64,
    /// Block-device-mapping stage.
    pub block_device_us: u64,
    /// Spawning stage.
    pub spawning_us: u64,
    /// The new Attestation stage.
    pub attestation_us: u64,
}

impl LaunchTiming {
    /// Total launch time.
    pub fn total_us(&self) -> u64 {
        self.scheduling_us
            + self.networking_us
            + self.block_device_us
            + self.spawning_us
            + self.attestation_us
    }
}

/// Builder for a [`Cloud`].
#[derive(Clone, Debug)]
pub struct CloudBuilder {
    servers: usize,
    pcpus_per_server: usize,
    seed: u64,
    latency: LatencyParams,
    sched: SchedParams,
    retry: RetryPolicy,
    escalation_threshold: u32,
    auto_response: bool,
    corrupted_platforms: Vec<usize>,
    session_deadline_us: Option<u64>,
    admission: Option<(usize, usize)>,
    shards: usize,
    as_batch: Option<(u64, usize)>,
    evidence_ttl_us: Option<u64>,
    avk_cert_cache: bool,
    reuse_avk: bool,
    control_plane: (u32, u32),
    control_retry: Option<RetryPolicy>,
}

impl Default for CloudBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CloudBuilder {
    /// Starts a builder with 3 servers of 4 pCPUs (the paper's testbed
    /// scale).
    pub fn new() -> Self {
        CloudBuilder {
            servers: 3,
            pcpus_per_server: 4,
            seed: 0,
            latency: LatencyParams::default(),
            sched: SchedParams::default(),
            retry: RetryPolicy::default(),
            escalation_threshold: 3,
            auto_response: false,
            corrupted_platforms: Vec::new(),
            session_deadline_us: None,
            admission: None,
            shards: 1,
            as_batch: None,
            evidence_ttl_us: None,
            avk_cert_cache: false,
            reuse_avk: false,
            control_plane: (1, 1),
            control_retry: None,
        }
    }

    /// Replicates the control plane: `k` controller instances (VM
    /// subscriptions, records and placement route to shards by a stable
    /// `Vid` hash, with ring failover onto standby instances) and an
    /// `n`-replica Attestation-Server pool with health-gated selection
    /// (each replica carries its own signing identity, privacy CA and
    /// caches). Values are clamped to at least 1; the default `(1, 1)`
    /// topology is dormant — byte-identical to the unreplicated cloud.
    pub fn control_plane(mut self, k: u32, n: u32) -> Self {
        self.control_plane = (k.max(1), n.max(1));
        self
    }

    /// Gives control-plane hops (messages 1, 2, 5 and 6) their own
    /// retry/timeout/backoff ladder, independent of the data-plane
    /// measurement hops. Default: same ladder as [`Self::retry`].
    pub fn control_retry(mut self, policy: RetryPolicy) -> Self {
        self.control_retry = Some(policy);
        self
    }

    /// Coalesces message-4 validation at the Attestation Server:
    /// responses arriving within `window_us` of each other (up to `max`
    /// per batch) are verified in one batched Schnorr pass instead of
    /// one-by-one. `window_us == 0` disables coalescing (the default,
    /// byte-identical to the pre-batching path); `max` is clamped to at
    /// least 1, and a batch of one charges exactly the inline latency.
    pub fn as_batch(mut self, window_us: u64, max: usize) -> Self {
        self.as_batch = Some((window_us, max.max(1)));
        self
    }

    /// Gives Attestation-Server verdicts a validity window: a repeat
    /// attestation request for the same `(Vid, property)` within
    /// `ttl_us` is served from cached evidence, skipping the
    /// measurement hops entirely. Invalidated on VM migration,
    /// termination, evacuation, node crash and channel re-key.
    /// Default: disabled.
    pub fn evidence_cache(mut self, ttl_us: u64) -> Self {
        self.evidence_ttl_us = Some(ttl_us);
        self
    }

    /// Turns on the privacy CA's certified-AVK cache: an identical
    /// certification request seen again is answered without re-verifying
    /// the identity binding. Only effective when servers also reuse
    /// their attestation key ([`Self::reuse_avk`]). Default: off.
    pub fn avk_cert_cache(mut self, on: bool) -> Self {
        self.avk_cert_cache = on;
        self
    }

    /// Makes every cloud server reuse one attestation session key across
    /// attestations (instead of the paper's fresh-AVK-per-session
    /// default), so repeat bindings can hit the pCA's certified-AVK
    /// cache. An explicit anonymity/performance trade-off; default: off.
    pub fn reuse_avk(mut self, on: bool) -> Self {
        self.reuse_avk = on;
        self
    }

    /// Splits the event engine into `k` timer-wheel shards routed by
    /// server id. Purely structural: the merged pop order — and hence
    /// every trace, latency and RNG draw — is identical for any `k`
    /// (values below 1 are clamped to 1). Default: 1.
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = k.max(1);
        self
    }

    /// Sets the number of cloud servers.
    pub fn servers(mut self, n: usize) -> Self {
        self.servers = n;
        self
    }

    /// Sets pCPUs per server.
    pub fn pcpus_per_server(mut self, n: usize) -> Self {
        self.pcpus_per_server = n;
        self
    }

    /// Seeds all randomness (key generation, nonces, workload jitter).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the latency model.
    pub fn latency(mut self, latency: LatencyParams) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the hypervisor scheduler parameters.
    pub fn sched(mut self, sched: SchedParams) -> Self {
        self.sched = sched;
        self
    }

    /// Overrides the per-hop retransmission policy
    /// ([`RetryPolicy::disabled`] restores fail-fast hops).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// After how many consecutive missed periodic samples a subscription
    /// escalates to the Response Module (default 3; minimum 1).
    pub fn escalation_threshold(mut self, k: u32) -> Self {
        self.escalation_threshold = k.max(1);
        self
    }

    /// Enables automatic remediation responses on failed attestations.
    pub fn auto_response(mut self, on: bool) -> Self {
        self.auto_response = on;
        self
    }

    /// Boots server `index` with a corrupted hypervisor (Case Study I
    /// platform attack).
    pub fn corrupt_platform(mut self, index: usize) -> Self {
        self.corrupted_platforms.push(index);
        self
    }

    /// Gives every attestation session an end-to-end deadline budget:
    /// a session that cannot reach a verdict within `budget_us` aborts
    /// with [`crate::CloudError::DeadlineExceeded`] — retransmission
    /// stops as soon as the remaining budget cannot cover another
    /// loss-detection timeout. Default: no deadline.
    pub fn session_deadline(mut self, budget_us: u64) -> Self {
        self.session_deadline_us = Some(budget_us);
        self
    }

    /// Bounds sessions in flight at the Attestation Server: past `high`
    /// new sessions are refused with
    /// [`crate::CloudError::Overloaded`] until in-flight drains to
    /// `low` (hysteresis). Default: unbounded.
    pub fn admission_control(mut self, high: usize, low: usize) -> Self {
        self.admission = Some((high, low));
        self
    }

    /// Builds the cloud: provisions keys, boots servers, registers them
    /// with the controller and pCA, and establishes the secure channels.
    ///
    /// Convenience wrapper over [`Self::try_build`] for tests, benches
    /// and examples.
    ///
    /// # Panics
    ///
    /// Panics if a secure-channel handshake between the freshly
    /// provisioned (honest, in-process) parties fails, which indicates a
    /// bug rather than adversarial input.
    pub fn build(self) -> Cloud {
        // Documented convenience panic; fallible callers use try_build.
        self.try_build()
            .expect("cloud assembly between honest parties") // #[allow(monatt::panic_freedom)]
    }

    /// Builds the cloud, surfacing secure-channel establishment failures
    /// as [`CloudError::ChannelEstablishment`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::ChannelEstablishment`] if any of the
    /// customer↔controller, controller↔attestation-server or
    /// attestation-server↔cloud-server handshakes fails.
    pub fn try_build(self) -> Result<Cloud, CloudError> {
        let mut rng = Drbg::from_seed(self.seed);
        let mut controller = CloudController::new(&mut rng);
        let mut attserver = AttestationServer::new(&mut rng);
        if self.avk_cert_cache {
            attserver.enable_avk_cert_cache();
        }
        let customer_identity = SigningKey::generate(&mut rng);
        let references = ReferenceDb::new();
        let all_properties = [
            SecurityProperty::StartupIntegrity,
            SecurityProperty::RuntimeIntegrity,
            SecurityProperty::CovertChannelFreedom,
            SecurityProperty::CpuAvailability { min_share_pct: 0 },
            SecurityProperty::SchedulerFairness,
        ];
        let mut servers = BTreeMap::new();
        for i in 0..self.servers {
            let id = ServerId(i as u32);
            let corrupted = self.corrupted_platforms.contains(&i);
            let components: Vec<&str> = if corrupted {
                vec!["firmware-v2", "trojaned-xen-4.4", "dom0-linux-3.13"]
            } else {
                references.platform_components().to_vec()
            };
            let mut node = CloudServerNode::boot(
                id,
                self.pcpus_per_server,
                self.sched,
                Drbg::from_seed(self.seed ^ (0xABCD + i as u64)),
                &components,
                &all_properties,
            );
            if self.reuse_avk {
                node.set_avk_reuse(true);
            }
            attserver.register_cloud_server(node.identity_key());
            controller.register_server(ServerInfo {
                id,
                free_vcpus: node.free_vcpus(),
                supported_properties: all_properties.iter().map(|p| p.label()).collect(),
            });
            servers.insert(id, node);
        }
        // Establish the SSL-like channels (session keys Kx, Ky, Kz).
        let controller_identity = SigningKey::generate(&mut rng);
        let attserver_identity = SigningKey::generate(&mut rng);
        let make_pair = |rng: &mut Drbg,
                         a: &SigningKey,
                         b: &SigningKey,
                         a_name: &str,
                         b_name: &str|
         -> Result<ChannelPair, CloudError> {
            let (mut i, mut r) =
                handshake_pair(rng, a, b).map_err(|error| CloudError::ChannelEstablishment {
                    initiator: a_name.to_string(),
                    responder: b_name.to_string(),
                    error,
                })?;
            i.set_peer(b_name);
            r.set_peer(a_name);
            Ok(ChannelPair {
                initiator: i,
                responder: r,
            })
        };
        let cust_ctrl = make_pair(
            &mut rng,
            &customer_identity,
            &controller_identity,
            CUSTOMER_ENDPOINT,
            &controller_node(0).endpoint(),
        )?;
        let ctrl_as = make_pair(
            &mut rng,
            &controller_identity,
            &attserver_identity,
            &controller_node(0).endpoint(),
            &as_node(0).endpoint(),
        )?;
        let mut as_server = BTreeMap::new();
        let mut server_identities = BTreeMap::new();
        for id in servers.keys() {
            // In deployment the server end terminates inside the
            // Attestation Client; the channel key is Kz.
            let server_chan_identity = SigningKey::generate(&mut rng);
            as_server.insert(
                *id,
                make_pair(
                    &mut rng,
                    &attserver_identity,
                    &server_chan_identity,
                    &as_node(0).endpoint(),
                    &id.to_string(),
                )?,
            );
            server_identities.insert(*id, server_chan_identity);
        }
        // --- Replicated control plane (opt-in). Every extra key and
        // channel below is provisioned strictly AFTER the complete
        // default sequence above, so the dormant topology (K=1, N=1)
        // draws a byte-identical RNG stream to the unreplicated cloud.
        let (k, n) = self.control_plane;
        let mut ctrl_signing = Vec::new();
        let mut controller_identities = vec![controller_identity];
        let mut attserver_identities = vec![attserver_identity];
        let mut as_pool = Vec::new();
        for _ in 1..k {
            // Standby controller instance: its own protocol signing key
            // (customers pin the instance that served them) and its own
            // channel identity.
            ctrl_signing.push(SigningKey::generate(&mut rng));
            controller_identities.push(SigningKey::generate(&mut rng));
        }
        for _ in 1..n {
            // Pool replica: a fully independent appraiser — own
            // identity, own privacy CA (no shared-key shortcut), own
            // evidence/AVK caches, warmed independently.
            let mut replica = AttestationServer::new(&mut rng);
            if self.avk_cert_cache {
                replica.enable_avk_cert_cache();
            }
            for node in servers.values() {
                replica.register_cloud_server(node.identity_key());
            }
            attserver_identities.push(SigningKey::generate(&mut rng));
            as_pool.push(replica);
        }
        let mut cust_ctrl_links = vec![cust_ctrl];
        for (i, ctrl_chan) in controller_identities.iter().enumerate().skip(1) {
            cust_ctrl_links.push(make_pair(
                &mut rng,
                &customer_identity,
                ctrl_chan,
                CUSTOMER_ENDPOINT,
                &controller_node(i as u32).endpoint(),
            )?);
        }
        // The controller↔AS mesh, row-major by controller instance;
        // entry (0, 0) is the default link handshaken above.
        let mut ctrl_as_links = Vec::with_capacity(k as usize * n as usize);
        let mut default_ctrl_as = Some(ctrl_as);
        for (i, ctrl_chan) in controller_identities.iter().enumerate() {
            for (r, as_chan) in attserver_identities.iter().enumerate() {
                if i == 0 && r == 0 {
                    if let Some(pair) = default_ctrl_as.take() {
                        ctrl_as_links.push(pair);
                    }
                    continue;
                }
                ctrl_as_links.push(make_pair(
                    &mut rng,
                    ctrl_chan,
                    as_chan,
                    &controller_node(i as u32).endpoint(),
                    &as_node(r as u32).endpoint(),
                )?);
            }
        }
        let mut as_server_links: BTreeMap<(u32, ServerId), ChannelPair> = as_server
            .into_iter()
            .map(|(id, pair)| ((0u32, id), pair))
            .collect();
        for (r, as_chan) in attserver_identities.iter().enumerate().skip(1) {
            for (id, server_chan) in server_identities.iter() {
                as_server_links.insert(
                    (r as u32, *id),
                    make_pair(
                        &mut rng,
                        as_chan,
                        server_chan,
                        &as_node(r as u32).endpoint(),
                        &id.to_string(),
                    )?,
                );
            }
        }
        Ok(Cloud {
            rng,
            controller,
            attserver,
            as_pool,
            ctrl_signing,
            topology: ControlPlaneTopology::new(k, n),
            servers,
            network: SimNetwork::default(),
            links: ControlLinks {
                cust_ctrl: cust_ctrl_links,
                ctrl_as: ctrl_as_links,
                replicas: n.max(1),
                as_server: as_server_links,
            },
            stale_links: std::collections::BTreeSet::new(),
            latency: self.latency,
            retry: self.retry,
            control_retry: self.control_retry.unwrap_or(self.retry),
            escalation_threshold: self.escalation_threshold.max(1),
            stats: ProtocolStats::default(),
            wall_clock_us: 0,
            last_launch: None,
            subscriptions: BTreeMap::new(),
            next_subscription: 1,
            auto_response: self.auto_response,
            vm_meta: BTreeMap::new(),
            seed: self.seed,
            engine: ShardedEngine::new(self.shards),
            sessions: crate::session::SessionArena::new(),
            window_free_at: BTreeMap::new(),
            run_horizon: None,
            auto_response_failures: 0,
            identities: ChannelIdentities {
                customer: customer_identity,
                controllers: controller_identities,
                attservers: attserver_identities,
                servers: server_identities,
            },
            outages: None,
            outage_stats: crate::outage::OutageStats::default(),
            down: std::collections::BTreeSet::new(),
            admission: self
                .admission
                .map(|(high, low)| crate::outage::AdmissionControl::new(high, low)),
            session_deadline_us: self.session_deadline_us,
            record_scratch: Vec::new(),
            inbox_scratch: Vec::new(),
            quote_scratch: monatt_net::wire::EncodeScratch::new(),
            as_batch_window_us: self.as_batch.map_or(0, |(w, _)| w),
            as_batch_max: self.as_batch.map_or(1, |(_, m)| m.max(1)),
            pending_msg4: Vec::new(),
            batch_meta: Vec::new(),
            evidence_ttl_us: self.evidence_ttl_us,
            programs: crate::protocol::ProgramRegistry::standard().map_err(|e| {
                CloudError::ProtocolFailure {
                    reason: format!("standard protocols did not compile: {e}"),
                }
            })?,
        })
    }
}

#[derive(Clone, Debug)]
pub(crate) struct VmMeta {
    pub(crate) workload: WorkloadSpec,
    pub(crate) tampered: bool,
    pub(crate) pin_pcpu: Option<usize>,
    pub(crate) handles: WorkloadHandles,
}

impl Cloud {
    /// Requests a VM (the paper's launch pipeline, Section 7.1.1):
    /// Scheduling → Networking → Block-device-mapping → Spawning →
    /// Attestation. If startup attestation finds a compromised platform,
    /// another server is tried; a compromised image rejects the launch.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoQualifiedServer`] or
    /// [`CloudError::LaunchRejected`].
    pub fn request_vm(&mut self, request: VmRequest) -> Result<Vid, CloudError> {
        let vid = self.controller.allocate_vid();
        let wants_attestation = !request.properties.is_empty();
        let mut timing = LaunchTiming::default();
        // Crashed servers are never placement candidates; servers that
        // fail platform attestation join the exclusion set per attempt.
        let mut excluded = self.down_servers();
        // Try servers until one passes platform attestation.
        for _attempt in 0..self.servers.len().max(1) {
            // Scheduling.
            let server_id = match request.on_server {
                Some(forced) if !excluded.contains(&forced) => forced,
                Some(forced) if self.down.contains(&crate::types::NodeId::Server(forced)) => {
                    return Err(CloudError::NodeDown {
                        node: crate::types::NodeId::Server(forced),
                    })
                }
                Some(_) => {
                    return Err(CloudError::LaunchRejected {
                        reason: "forced server failed platform attestation".into(),
                    })
                }
                None => self.controller.select_server_excluding(
                    request.flavor,
                    &request.properties,
                    &excluded,
                )?,
            };
            timing.scheduling_us += self
                .latency
                .scheduling_us(self.servers.len(), wants_attestation);
            // Networking, block device mapping, spawning.
            timing.networking_us += self.latency.networking_us();
            timing.block_device_us += self.latency.block_device_us(request.image);
            timing.spawning_us += self.latency.spawning_us(request.image, request.flavor);
            let mut image_bytes = request.image.pristine_bytes();
            if request.tampered_image {
                image_bytes[0] ^= 0xff;
            }
            let (drivers, handles) = request
                .workload
                .drivers(request.flavor.vcpus(), self.seed ^ vid.0);
            let node = self
                .touch_server(server_id)
                .ok_or(CloudError::UnknownServer(server_id))?;
            node.launch_vm_pinned(
                vid,
                request.image,
                image_bytes,
                drivers,
                256,
                request.pin_pcpu,
            );
            // Attestation stage (messages 2-5, as an event-driven
            // session pumped to completion).
            if wants_attestation {
                let sid = self.begin_internal_session(
                    vid,
                    server_id,
                    SecurityProperty::StartupIntegrity,
                    request.image,
                )?;
                let outcome = self.pump_session(sid)?;
                timing.attestation_us += outcome.elapsed_us;
                match outcome.status {
                    HealthStatus::Healthy => {}
                    HealthStatus::Compromised { reason } if reason.contains("platform") => {
                        // Try another server for this VM.
                        if let Some(node) = self.touch_server(server_id) {
                            node.remove_vm(vid);
                        }
                        excluded.insert(server_id);
                        continue;
                    }
                    HealthStatus::Compromised { reason } => {
                        if let Some(node) = self.touch_server(server_id) {
                            node.remove_vm(vid);
                        }
                        self.last_launch = Some(timing);
                        return Err(CloudError::LaunchRejected { reason });
                    }
                    HealthStatus::Unreachable { .. } => {
                        // Delivery failures surface as Err(Unreachable)
                        // from the session, so a report never carries
                        // this status here; reject defensively — the
                        // launch policy requires a verdict.
                        if let Some(node) = self.touch_server(server_id) {
                            node.remove_vm(vid);
                        }
                        self.last_launch = Some(timing);
                        return Err(CloudError::LaunchRejected {
                            reason: "no attestation verdict: server unreachable".into(),
                        });
                    }
                }
            }
            self.controller.record_deployment(VmRecord {
                vid,
                flavor: request.flavor,
                image: request.image,
                properties: request.properties.clone(),
                server: server_id,
                state: VmLifecycle::Active,
            });
            self.vm_meta.insert(
                vid,
                VmMeta {
                    workload: request.workload,
                    tampered: request.tampered_image,
                    pin_pcpu: request.pin_pcpu,
                    handles,
                },
            );
            // The attestation stage already advanced time inside the
            // session; advance the management stages now.
            self.advance(timing.total_us().saturating_sub(timing.attestation_us));
            self.last_launch = Some(timing);
            return Ok(vid);
        }
        self.last_launch = Some(timing);
        Err(CloudError::NoQualifiedServer {
            requested: request.properties,
        })
    }
}
