//! The Response Module (Section 5.2): remediation actions —
//! termination, suspension, migration — their Figure-11 timings, and
//! the suspension-recheck policy.

use super::build::VmMeta;
use super::{AttestationReport, Cloud, WorkloadHandles, WorkloadSpec};
use crate::controller::{ResponseAction, VmLifecycle};
use crate::error::CloudError;
use crate::types::{SecurityProperty, ServerId, Vid};

/// Timing of a remediation response (Figure 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResponseTiming {
    /// Which response ran.
    pub action: ResponseAction,
    /// Time the response itself took.
    pub response_us: u64,
}

impl Cloud {
    /// Executes a remediation response (Section 5.2) and reports its
    /// timing (Figure 11).
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] or [`CloudError::MigrationFailed`].
    pub fn respond(
        &mut self,
        vid: Vid,
        action: ResponseAction,
    ) -> Result<ResponseTiming, CloudError> {
        let record = self
            .controller
            .vm(vid)
            .ok_or(CloudError::UnknownVm(vid))?
            .clone();
        let response_us = match action {
            ResponseAction::Termination => {
                if let Some(node) = self.touch_server(record.server) {
                    node.remove_vm(vid);
                }
                self.controller.release_capacity(vid);
                if let Some(r) = self.controller.vm_mut(vid) {
                    r.state = VmLifecycle::Terminated;
                }
                self.latency.terminate_us(record.flavor)
            }
            ResponseAction::Suspension => {
                if let Some(node) = self.touch_server(record.server) {
                    node.suspend_vm(vid);
                }
                if let Some(r) = self.controller.vm_mut(vid) {
                    r.state = VmLifecycle::Suspended;
                }
                self.latency.suspend_us(record.flavor)
            }
            ResponseAction::Migration => {
                // Re-run Policy Validation excluding the source and any
                // crashed server.
                let mut excluded = self.down_servers();
                excluded.insert(record.server);
                let destination = self
                    .controller
                    .select_server_excluding(record.flavor, &record.properties, &excluded)
                    .map_err(|_| CloudError::MigrationFailed { vid })?;
                let meta = self.vm_meta.get(&vid).cloned().unwrap_or(VmMeta {
                    workload: WorkloadSpec::Idle,
                    tampered: false,
                    pin_pcpu: None,
                    handles: WorkloadHandles::default(),
                });
                if let Some(node) = self.touch_server(record.server) {
                    node.remove_vm(vid);
                }
                self.controller.release_capacity(vid);
                let mut image_bytes = record.image.pristine_bytes();
                if meta.tampered {
                    image_bytes[0] ^= 0xff;
                }
                let (drivers, handles) = meta
                    .workload
                    .drivers(record.flavor.vcpus(), self.seed ^ vid.0);
                if let Some(m) = self.vm_meta.get_mut(&vid) {
                    m.handles = handles;
                }
                let node = self
                    .touch_server(destination)
                    .ok_or(CloudError::UnknownServer(destination))?;
                node.launch_vm_pinned(vid, record.image, image_bytes, drivers, 256, meta.pin_pcpu);
                if let Some(r) = self.controller.vm_mut(vid) {
                    r.server = destination;
                    r.state = VmLifecycle::Active;
                }
                self.controller.take_capacity(destination, record.flavor);
                self.latency.migrate_us(record.flavor)
            }
        };
        // Any remediation changes the VM's trust context (new host,
        // suspended state, or gone): cached evidence about it is stale
        // on every replica, not just the one that served it.
        self.attserver.invalidate_evidence_for_vid(vid);
        for replica in self.as_pool.iter_mut() {
            replica.invalidate_evidence_for_vid(vid);
        }
        self.advance(response_us);
        Ok(ResponseTiming {
            action,
            response_us,
        })
    }

    /// Evacuates every VM resident on a crashed server: the Response
    /// Module re-runs Policy Validation per VM and migrates it to a
    /// live server with capacity supporting its properties; a VM with
    /// nowhere to go is terminated (counted as an evacuation failure).
    /// No wall-clock charge — this is crash fallout, not a managed
    /// migration.
    pub(crate) fn evacuate_server(&mut self, crashed: ServerId) {
        let vids: Vec<Vid> = self
            .controller
            .vms()
            .filter(|r| r.server == crashed && r.state != VmLifecycle::Terminated)
            .map(|r| r.vid)
            .collect();
        let mut excluded = self.down_servers();
        excluded.insert(crashed);
        for vid in vids {
            let Some(record) = self.controller.vm(vid).cloned() else {
                continue;
            };
            // Evidence gathered on the crashed host is void for this VM
            // wherever it lands — on every replica.
            self.attserver.invalidate_evidence_for_vid(vid);
            for replica in self.as_pool.iter_mut() {
                replica.invalidate_evidence_for_vid(vid);
            }
            // The crashed host's simulator state for this VM is gone
            // either way.
            if let Some(node) = self.touch_server(crashed) {
                node.remove_vm(vid);
            }
            self.controller.release_capacity(vid);
            match self.controller.select_server_excluding(
                record.flavor,
                &record.properties,
                &excluded,
            ) {
                Ok(destination) => {
                    let meta = self.vm_meta.get(&vid).cloned().unwrap_or(VmMeta {
                        workload: WorkloadSpec::Idle,
                        tampered: false,
                        pin_pcpu: None,
                        handles: WorkloadHandles::default(),
                    });
                    let mut image_bytes = record.image.pristine_bytes();
                    if meta.tampered {
                        image_bytes[0] ^= 0xff;
                    }
                    let (drivers, handles) = meta
                        .workload
                        .drivers(record.flavor.vcpus(), self.seed ^ vid.0);
                    if let Some(m) = self.vm_meta.get_mut(&vid) {
                        m.handles = handles;
                    }
                    if let Some(node) = self.touch_server(destination) {
                        node.launch_vm_pinned(
                            vid,
                            record.image,
                            image_bytes,
                            drivers,
                            256,
                            meta.pin_pcpu,
                        );
                    }
                    if let Some(r) = self.controller.vm_mut(vid) {
                        r.server = destination;
                        r.state = VmLifecycle::Active;
                    }
                    self.controller.take_capacity(destination, record.flavor);
                    self.outage_stats.evacuations += 1;
                }
                Err(_) => {
                    if let Some(r) = self.controller.vm_mut(vid) {
                        r.state = VmLifecycle::Terminated;
                    }
                    self.outage_stats.evacuation_failures += 1;
                }
            }
        }
    }

    /// The Section 5.2 suspension recheck: briefly resumes a suspended
    /// VM, re-attests the property, and keeps it running only if the
    /// security health has recovered (re-suspending otherwise). Returns
    /// the recheck report.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] or a protocol failure.
    pub fn recheck_and_resume(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
    ) -> Result<AttestationReport, CloudError> {
        if self.vm_state(vid) != Some(VmLifecycle::Suspended) {
            return self.runtime_attest_current(vid, property);
        }
        self.resume(vid)?;
        let report = self.startup_attest_current(vid, property)?;
        if !report.healthy() {
            let record = self
                .controller
                .vm(vid)
                .ok_or(CloudError::UnknownVm(vid))?
                .clone();
            if let Some(node) = self.touch_server(record.server) {
                node.suspend_vm(vid);
            }
            if let Some(r) = self.controller.vm_mut(vid) {
                r.state = VmLifecycle::Suspended;
            }
        }
        Ok(report)
    }

    /// Resumes a suspended VM (after the platform re-attests healthy).
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] if the VM does not exist.
    pub fn resume(&mut self, vid: Vid) -> Result<(), CloudError> {
        let record = self
            .controller
            .vm(vid)
            .ok_or(CloudError::UnknownVm(vid))?
            .clone();
        if let Some(node) = self.touch_server(record.server) {
            node.resume_vm(vid);
        }
        if let Some(r) = self.controller.vm_mut(vid) {
            r.state = VmLifecycle::Active;
        }
        Ok(())
    }
}
