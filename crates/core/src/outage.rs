//! Node-level failure and overload models.
//!
//! The per-message [`monatt_net::sim::FaultModel`] loses, duplicates,
//! corrupts and delays individual records; this module models the next
//! failure class up: whole protocol entities — cloud servers, the
//! Attestation Server, the Cloud Controller link — crashing and
//! recovering as units ([`OutageModel`]), and the Attestation Server
//! protecting itself from session overload with a bounded admission
//! gate ([`AdmissionControl`]).
//!
//! An [`OutageModel`] is a *schedule*: scripted `crash_at`/`recover_at`
//! transitions plus, optionally, a seeded MTBF/MTTR renewal process over
//! the cloud servers. The model itself never touches the cloud — the
//! cloud's event loop drains due transitions out of it
//! ([`OutageModel::drain_due`]) into ordinary engine events, applies
//! them, and asks the model to chain the follow-up transition
//! ([`OutageModel::chain`]). All stochastic draws come from the model's
//! own [`Drbg`] stream, so installing an outage model never perturbs
//! the cloud's main RNG: a run with no outage model is bit-identical to
//! one before this module existed.
//!
//! What a crash *means* (black-holed deliveries, fail-fast sessions,
//! VM evacuation, forced re-handshake on recovery) is implemented in
//! the cloud facade; the counters live in [`OutageStats`].

use crate::types::{NodeId, ServerId};
use monatt_crypto::drbg::Drbg;

/// One node state transition the schedule wants to happen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Virtual time at which the transition fires.
    pub at_us: u64,
    /// The node changing state.
    pub node: NodeId,
    /// `true` = the node crashes; `false` = it recovers.
    pub down: bool,
    /// Whether this transition came from the MTBF/MTTR renewal process
    /// (and should chain its opposite when it fires) rather than the
    /// scripted schedule.
    pub stochastic: bool,
}

/// A seeded schedule of node crashes and recoveries.
///
/// Two sources compose:
///
/// * **Scripted** transitions ([`OutageModel::crash_at`] /
///   [`OutageModel::recover_at`]) fire at exact instants — the tool for
///   reproducible scenario tests.
/// * A **renewal process** ([`OutageModel::mtbf`]) gives every cloud
///   server an alternating up/down lifetime: up-times draw uniformly
///   from `[MTBF/2, 3·MTBF/2]`, down-times from `[MTTR/2, 3·MTTR/2]`,
///   all from the model's private DRBG. Control-plane nodes (controller
///   instances and AS replicas) do not churn by default — taking them
///   down is a deliberate act — but an explicit
///   [`OutageModel::control_plane_mtbf`] opts them into their own
///   renewal process with separate means, drawn *after* all server
///   draws so enabling it never shifts the server schedule.
///
/// Transitions only fire inside [`crate::Cloud::run`]; between runs the
/// schedule simply waits.
#[derive(Debug)]
pub struct OutageModel {
    rng: Drbg,
    mtbf_us: Option<u64>,
    mttr_us: u64,
    /// Control-plane renewal means (controller instances, AS replicas).
    cp_mtbf_us: Option<u64>,
    cp_mttr_us: u64,
    /// Pending transitions, unsorted; `drain_due` orders the due ones.
    pending: Vec<Transition>,
    /// Whether the renewal process has drawn its first crash times.
    primed: bool,
    /// Same, for the control-plane renewal process.
    cp_primed: bool,
}

impl OutageModel {
    /// An empty schedule with its own seeded RNG stream (decoupled from
    /// the cloud's, so installing the model does not shift any other
    /// seeded draw).
    pub fn new(seed: u64) -> Self {
        OutageModel {
            rng: Drbg::from_seed(seed ^ 0xC8A5_4EC0_DEAD_BEA7),
            mtbf_us: None,
            mttr_us: 0,
            cp_mtbf_us: None,
            cp_mttr_us: 0,
            pending: Vec::new(),
            primed: false,
            cp_primed: false,
        }
    }

    /// Gives every cloud server an MTBF/MTTR renewal schedule: crash
    /// after roughly `mtbf_us` of uptime, recover after roughly
    /// `mttr_us` (each drawn uniformly within ±50% of its mean).
    pub fn mtbf(mut self, mtbf_us: u64, mttr_us: u64) -> Self {
        self.mtbf_us = Some(mtbf_us.max(1));
        self.mttr_us = mttr_us.max(1);
        self
    }

    /// Gives every *control-plane* node (controller instances and AS
    /// replicas of the cloud's [`crate::ControlPlaneTopology`]) its own
    /// MTBF/MTTR renewal schedule, separate from the server means.
    /// Control-plane crashes are rarer and repairs faster in practice;
    /// keeping the knobs apart lets the chaos bench churn both layers
    /// at realistic, independent rates.
    pub fn control_plane_mtbf(mut self, mtbf_us: u64, mttr_us: u64) -> Self {
        self.cp_mtbf_us = Some(mtbf_us.max(1));
        self.cp_mttr_us = mttr_us.max(1);
        self
    }

    /// Scripts a crash of `node` at virtual time `at_us`.
    pub fn crash_at(mut self, at_us: u64, node: NodeId) -> Self {
        self.pending.push(Transition {
            at_us,
            node,
            down: true,
            stochastic: false,
        });
        self
    }

    /// Scripts a recovery of `node` at virtual time `at_us`.
    pub fn recover_at(mut self, at_us: u64, node: NodeId) -> Self {
        self.pending.push(Transition {
            at_us,
            node,
            down: false,
            stochastic: false,
        });
        self
    }

    /// Uniform draw within ±50% of `mean`: `[mean/2, 3·mean/2]`.
    fn lifetime(&mut self, mean: u64) -> u64 {
        mean / 2 + self.rng.next_u64_below(mean + 1)
    }

    /// Draws the first crash time for every server (in server-id order,
    /// for a stable draw sequence). Called once, on the first `run`
    /// after installation; later calls are no-ops.
    pub(crate) fn prime<I: IntoIterator<Item = ServerId>>(&mut self, servers: I, now_us: u64) {
        if self.primed {
            return;
        }
        self.primed = true;
        let Some(mtbf) = self.mtbf_us else {
            return;
        };
        for server in servers {
            let at_us = now_us.saturating_add(self.lifetime(mtbf));
            self.pending.push(Transition {
                at_us,
                node: NodeId::Server(server),
                down: true,
                stochastic: true,
            });
        }
    }

    /// Draws the first crash time for every control-plane node, in the
    /// deterministic order the topology enumerates them (controllers
    /// first, then AS replicas). Idempotent like [`OutageModel::prime`];
    /// a no-op unless [`OutageModel::control_plane_mtbf`] was set, so
    /// existing server-churn seeds draw an identical stream. Called
    /// after `prime` so control-plane draws always follow the full
    /// server draw prefix.
    pub(crate) fn prime_control_plane<I: IntoIterator<Item = NodeId>>(
        &mut self,
        nodes: I,
        now_us: u64,
    ) {
        if self.cp_primed {
            return;
        }
        self.cp_primed = true;
        let Some(mtbf) = self.cp_mtbf_us else {
            return;
        };
        for node in nodes {
            let at_us = now_us.saturating_add(self.lifetime(mtbf));
            self.pending.push(Transition {
                at_us,
                node,
                down: true,
                stochastic: true,
            });
        }
    }

    /// Removes and returns every pending transition due strictly before
    /// `horizon_us`, ordered by `(at_us, node, down)` so same-instant
    /// transitions schedule deterministically. Transitions at or past
    /// the horizon stay pending for a later `run` — the same half-open
    /// `[start, end)` convention `Cloud::run` uses when seeding
    /// subscription firings, so splitting one run into two at any
    /// boundary processes the identical event set.
    pub(crate) fn drain_due(&mut self, horizon_us: u64) -> Vec<Transition> {
        let mut due: Vec<Transition> = Vec::new();
        let mut keep = Vec::with_capacity(self.pending.len());
        for t in self.pending.drain(..) {
            if t.at_us < horizon_us {
                due.push(t);
            } else {
                keep.push(t);
            }
        }
        self.pending = keep;
        due.sort_by_key(|t| (t.at_us, t.node, t.down));
        due
    }

    /// Chains the renewal process after a stochastic transition fired:
    /// a crash queues the recovery, a recovery queues the next crash.
    /// The chained transition lands in `pending`; the caller drains it
    /// (if due within its horizon) via [`OutageModel::drain_due`].
    pub(crate) fn chain(&mut self, node: NodeId, went_down: bool, now_us: u64) {
        let control_plane = !matches!(node, NodeId::Server(_));
        let (mtbf, mttr) = if control_plane {
            (self.cp_mtbf_us, self.cp_mttr_us)
        } else {
            (self.mtbf_us, self.mttr_us)
        };
        let mean = if went_down {
            mttr
        } else {
            match mtbf {
                Some(m) => m,
                None => return,
            }
        };
        let at_us = now_us.saturating_add(self.lifetime(mean.max(1)));
        self.pending.push(Transition {
            at_us,
            node,
            down: !went_down,
            stochastic: true,
        });
    }

    /// Whether any transitions are still pending.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }
}

/// Counters of node-level failure activity, surfaced via
/// [`crate::Cloud::outage_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutageStats {
    /// Node crash transitions applied.
    pub crashes: u64,
    /// Node recovery transitions applied.
    pub recoveries: u64,
    /// Secure channels re-established after a recovery (stale session
    /// keys never resume across a crash). Re-keying is *lazy*: a
    /// recovery only marks the node's channels stale, and each channel
    /// re-handshakes on its first post-recovery use, so this counts
    /// performed handshakes, not recovered nodes.
    pub rehandshakes: u64,
    /// Channel re-handshakes deferred at recovery time (marked stale,
    /// to be re-keyed on first use). Deferring avoids a synchronized
    /// handshake burst when churn recovers many nodes at once.
    pub deferred_rekeys: u64,
    /// In-flight sessions failed fast with [`crate::CloudError::NodeDown`].
    pub node_down_failures: u64,
    /// VMs migrated off a crashed server onto a live one.
    pub evacuations: u64,
    /// VMs that could not be evacuated (no live server with capacity
    /// and the required properties) and were terminated.
    pub evacuation_failures: u64,
}

/// The Attestation Server's bounded admission gate.
///
/// Beyond `high` sessions in flight, new sessions are *shed* — refused
/// at admission with [`crate::CloudError::Overloaded`] before any work
/// (or RNG draw) happens — rather than queued unboundedly. Shedding
/// persists until the backlog drains to `low` (hysteresis: without the
/// gap, in-flight load hovering at the threshold would flap the gate on
/// every admission).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionControl {
    high: usize,
    low: usize,
    shedding: bool,
}

impl AdmissionControl {
    /// A gate that starts shedding at `high` sessions in flight and
    /// re-admits once in-flight drains to `low` (clamped to `high`).
    pub fn new(high: usize, low: usize) -> Self {
        let high = high.max(1);
        AdmissionControl {
            high,
            low: low.min(high),
            shedding: false,
        }
    }

    /// Decides one admission given the current sessions-in-flight
    /// count. Updates the hysteresis state.
    pub(crate) fn admit(&mut self, in_flight: usize) -> bool {
        if self.shedding && in_flight <= self.low {
            self.shedding = false;
        }
        if !self.shedding && in_flight >= self.high {
            self.shedding = true;
        }
        !self.shedding
    }

    /// Whether the gate is currently refusing admissions.
    pub fn is_shedding(&self) -> bool {
        self.shedding
    }

    /// The high-water mark (shedding onset).
    pub fn high_water(&self) -> usize {
        self.high
    }

    /// The low-water mark (re-admission).
    pub fn low_water(&self) -> usize {
        self.low
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_transitions_drain_in_time_order() {
        let mut model = OutageModel::new(1)
            .crash_at(500, NodeId::Server(ServerId(1)))
            .crash_at(100, NodeId::Controller)
            .recover_at(300, NodeId::Controller);
        let due = model.drain_due(400);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].at_us, 100);
        assert!(due[0].down);
        assert_eq!(due[1].at_us, 300);
        assert!(!due[1].down);
        // The 500us crash is past the horizon: still pending.
        assert!(model.has_pending());
        let later = model.drain_due(1_000);
        assert_eq!(later.len(), 1);
        assert_eq!(later[0].node, NodeId::Server(ServerId(1)));
        assert!(!model.has_pending());
    }

    #[test]
    fn renewal_process_primes_once_per_server_and_chains() {
        let mut model = OutageModel::new(7).mtbf(1_000_000, 100_000);
        model.prime([ServerId(0), ServerId(1)], 0);
        model.prime([ServerId(0), ServerId(1)], 0); // idempotent
        let due = model.drain_due(u64::MAX);
        assert_eq!(due.len(), 2);
        for t in &due {
            assert!(t.down && t.stochastic);
            // Uniform ±50% of the mean.
            assert!((500_000..=1_500_000).contains(&t.at_us), "{}", t.at_us);
        }
        // A fired crash chains its recovery.
        model.chain(due[0].node, true, due[0].at_us);
        let rec = model.drain_due(u64::MAX);
        assert_eq!(rec.len(), 1);
        assert!(!rec[0].down);
        let downtime = rec[0].at_us - due[0].at_us;
        assert!((50_000..=150_000).contains(&downtime), "{downtime}");
    }

    #[test]
    fn control_plane_renewal_is_opt_in_and_separately_paced() {
        // Without the knob, priming control-plane nodes draws nothing:
        // server-only seeds see an identical stream.
        let mut server_only = OutageModel::new(11).mtbf(1_000_000, 100_000);
        server_only.prime([ServerId(0)], 0);
        server_only.prime_control_plane([NodeId::Controller, NodeId::AttestationServer], 0);
        assert_eq!(server_only.drain_due(u64::MAX).len(), 1);

        let mut model = OutageModel::new(11)
            .mtbf(1_000_000, 100_000)
            .control_plane_mtbf(4_000_000, 50_000);
        model.prime([ServerId(0)], 0);
        model.prime_control_plane([NodeId::Controller, NodeId::AsReplica(1)], 0);
        model.prime_control_plane([NodeId::Controller, NodeId::AsReplica(1)], 0); // idempotent
        let due = model.drain_due(u64::MAX);
        assert_eq!(due.len(), 3);
        let cp: Vec<_> = due
            .iter()
            .filter(|t| !matches!(t.node, NodeId::Server(_)))
            .collect();
        assert_eq!(cp.len(), 2);
        for t in &cp {
            assert!(t.down && t.stochastic);
            assert!((2_000_000..=6_000_000).contains(&t.at_us), "{}", t.at_us);
        }
        // A fired control-plane crash chains a recovery on the
        // control-plane MTTR, not the server one.
        model.chain(NodeId::AsReplica(1), true, 4_000_000);
        let rec = model.drain_due(u64::MAX);
        assert_eq!(rec.len(), 1);
        let downtime = rec[0].at_us - 4_000_000;
        assert!((25_000..=75_000).contains(&downtime), "{downtime}");
    }

    #[test]
    fn model_is_deterministic_per_seed() {
        let first_crashes = |seed: u64| {
            let mut m = OutageModel::new(seed).mtbf(500_000, 50_000);
            m.prime([ServerId(0), ServerId(1), ServerId(2)], 0);
            m.drain_due(u64::MAX)
                .into_iter()
                .map(|t| t.at_us)
                .collect::<Vec<_>>()
        };
        assert_eq!(first_crashes(3), first_crashes(3));
        assert_ne!(first_crashes(3), first_crashes(4));
    }

    #[test]
    fn admission_gate_hysteresis() {
        let mut gate = AdmissionControl::new(4, 2);
        assert!(gate.admit(0));
        assert!(gate.admit(3));
        // Hitting the high-water mark starts shedding.
        assert!(!gate.admit(4));
        assert!(gate.is_shedding());
        // Still above low water: keep shedding even below high.
        assert!(!gate.admit(3));
        // Drained to low water: re-admit.
        assert!(gate.admit(2));
        assert!(!gate.is_shedding());
        assert!(gate.admit(3));
    }

    #[test]
    fn admission_gate_clamps_degenerate_marks() {
        // low > high clamps to high: a plain threshold.
        let gate = AdmissionControl::new(2, 9);
        assert_eq!(gate.low_water(), 2);
        assert_eq!(gate.high_water(), 2);
        let mut gate = AdmissionControl::new(0, 0); // high clamps to 1
        assert!(gate.admit(0));
        assert!(!gate.admit(1));
    }
}
