//! Per-session transport machinery for compiled attestation programs.
//!
//! A session owns one protocol exchange and advances purely by
//! reacting to events popped from the [`crate::engine`] queue: record
//! arrivals, retransmission timeouts, measurement-window
//! openings/closings and the final completion tick. Nothing blocks, so
//! N sessions interleave on the same virtual clock and one stalled hop
//! (a lossy path to one server) no longer head-of-line-blocks every
//! other subscription.
//!
//! Which exchange a session runs is no longer hard-wired: the session
//! is a program counter and a typed register file (nonces, the
//! measurement request, the in-flight verdict) over a compiled
//! [`crate::protocol`] program. This module owns the transport layer —
//! sealing, retransmission ladders, late arrivals, deadlines and
//! terminal bookkeeping — while the interpreter that builds and
//! consumes protocol messages lives in [`crate::protocol::run`] and
//! the fork/join machinery for parallel and delegated sub-protocols in
//! [`crate::protocol::fork`].
//!
//! ## Latency accounting
//!
//! Every microsecond the old inline implementation added to `elapsed`
//! is mirrored here as a scheduled delay, charged when the delay is
//! scheduled: hop latencies at transmit resolution, per-message
//! processing ([`LatencyParams::post_hop_us`]) as a pre-delay on the
//! next transmission, the measurement window between `WindowOpen` and
//! `WindowClose`, and the final processing tail before `Complete`. The
//! completion event therefore fires at exactly `start + elapsed_us`,
//! which keeps the clean-path Figure 9–11 numbers bit-identical to the
//! pre-event-loop code (pinned by the golden-trace test).
//!
//! [`LatencyParams::post_hop_us`]: crate::latency::LatencyParams::post_hop_us
//!
//! ## Retransmission as timer events
//!
//! The network simulator resolves a record's fate at send time, so each
//! attempt schedules exactly one follow-up: the arrival of a delivered
//! record, or the sender's loss-detection timeout for a lost/rejected
//! one. On timeout the session retries (charging backoff, drawn in
//! event order from the cloud DRBG — the same draw sequence the
//! blocking loop made) until the [`RetryPolicy`] budget is exhausted,
//! then fails with the same error classification as before:
//! authentication failures are protocol failures, pure silence is
//! [`CloudError::Unreachable`].
//!
//! [`RetryPolicy`]: crate::latency::RetryPolicy

use crate::cloud::{refresh_stale_link, Cloud, ControlLinks, LinkKey};
use crate::controlplane::{as_node, controller_node, RouteTag};
use crate::error::CloudError;
use crate::latency::RetryPolicy;
use crate::measurements::MeasurementSpec;
use crate::messages::MeasureResponse;
use crate::protocol::compile::ProgramId;
use crate::protocol::MsgKind;
use crate::types::{HealthStatus, Image, NodeId, SecurityProperty, ServerId, Vid};
use monatt_net::channel::{ChannelError, SecureChannel};
use std::collections::BTreeSet;

pub(crate) use crate::arena::SessionId;

/// The in-flight session table: slot-indexed, generation-checked,
/// buffer-retaining (see [`crate::arena`]).
pub(crate) type SessionArena = crate::arena::Arena<AttestSession>;

/// Timer and delivery events that step one session.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SessionEvent {
    /// The current hop's record reaches its receiver.
    Arrival,
    /// The sender's loss-detection timeout fired: retransmit or fail.
    /// Tagged with the hop generation it was scheduled in, so a timer
    /// outlived by its hop (the hop completed via a late arrival) is
    /// discarded instead of retransmitting into a finished exchange.
    Retry {
        /// Hop generation at schedule time.
        generation: u32,
    },
    /// A record delayed past the sender's loss-detection timeout
    /// finally reaches the receiver — after the sender already
    /// retransmitted. Normally it bounces off the receive window as a
    /// duplicate; if every retransmit was lost too, it saves the hop.
    LateArrival {
        /// Hop generation at schedule time.
        generation: u32,
    },
    /// The measurement window may open on the server.
    WindowOpen,
    /// The measurement window elapsed: measure, quote, respond.
    WindowClose,
    /// All processing charges are paid: deliver the verdict.
    Complete,
}

/// Everything the cloud's event loop can schedule.
#[derive(Clone, Copy, Debug)]
pub(crate) enum CloudEvent {
    /// Step an attestation session.
    Session {
        /// The session to step.
        sid: SessionId,
        /// What happened.
        event: SessionEvent,
    },
    /// A periodic subscription came due.
    SubscriptionDue {
        /// The subscription id.
        id: u64,
    },
    /// A node state transition from the outage schedule.
    Outage {
        /// The node changing state.
        node: NodeId,
        /// `true` = crash, `false` = recovery.
        down: bool,
        /// Whether the renewal process should chain the opposite
        /// transition when this one fires (stochastic transitions only).
        chain: bool,
    },
    /// The Attestation Server's msg-4 coalescing window elapsed: every
    /// parked measurement response is validated in one batched
    /// verification pass (see [`Cloud::flush_msg4_batch`]). A flush that
    /// finds the buffer already drained (a size-triggered flush beat the
    /// window timer) is a no-op.
    Msg4Flush,
}

/// A message-4 measurement response parked at the Attestation Server,
/// awaiting the coalescing flush. The session's expectations (vid, spec,
/// nonce N3) are re-read from the live session at flush time; an entry
/// whose session died in between (node crash, deadline) is skipped.
#[derive(Debug)]
pub(crate) struct PendingMsg4 {
    pub(crate) sid: SessionId,
    pub(crate) msg4: MeasureResponse,
    /// Wall-clock instant the response reached the AS; the flush charges
    /// `flush_time - arrived_at_us` as coalescing wait.
    pub(crate) arrived_at_us: u64,
}

/// A batch entry's expectations, re-read from its live session at flush
/// time: (vid, server, property, image, spec, nonce2, nonce3, replica).
/// The replica index partitions the flush — each AS replica validates
/// only its own sessions' responses.
pub(crate) type Msg4Meta = (
    Vid,
    ServerId,
    SecurityProperty,
    Image,
    MeasurementSpec,
    [u8; 32],
    [u8; 32],
    u32,
);

/// Who consumes the session's outcome.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SessionOrigin {
    /// A synchronous Table-1 API call pumping the queue to completion.
    Api,
    /// A periodic subscription sample fired by [`Cloud::run`].
    Subscription(u64),
    /// A fork branch spawned by a parent session's `Fork` op; the
    /// outcome lands in the parent's branch slot (see
    /// [`crate::protocol::fork`]).
    Child {
        /// The forking session.
        parent: SessionId,
        /// The parent's branch-slot index this child reports into.
        slot: u16,
    },
}

/// A session's terminal value: the interpreted verdict plus the
/// end-to-end latency charged to it.
#[derive(Clone, Debug)]
pub(crate) struct SessionYield {
    /// The verdict carried by the final protocol message.
    pub(crate) status: HealthStatus,
    /// End-to-end latency (protocol + measurement window + queueing).
    pub(crate) elapsed_us: u64,
}

pub(crate) type SessionOutcome = Result<SessionYield, CloudError>;

/// Parameters for spawning a fork-branch child session (see
/// [`crate::protocol::fork`]): the parent's placement plus the branch's
/// program, property and report-back slot.
pub(crate) struct ChildSpawn {
    pub(crate) vid: Vid,
    pub(crate) server: ServerId,
    pub(crate) property: SecurityProperty,
    pub(crate) image: Image,
    pub(crate) program: ProgramId,
    pub(crate) parent: SessionId,
    pub(crate) slot: u16,
}

/// One in-flight attestation exchange: the program counter plus the
/// typed register file of a compiled protocol program, and the
/// transport state of its current hop.
#[derive(Debug)]
pub(crate) struct AttestSession {
    pub(crate) vid: Vid,
    pub(crate) server: ServerId,
    /// Control-plane route pinned at admission: which shard/controller
    /// instance and AS replica this session's hops go to. A crashed
    /// route node fails the session fast; re-admission re-routes.
    pub(crate) route: RouteTag,
    pub(crate) property: SecurityProperty,
    pub(crate) expected_image: Image,
    pub(crate) origin: SessionOrigin,
    /// The compiled program this session interprets.
    pub(crate) program: ProgramId,
    /// Program counter into the compiled op schedule.
    pub(crate) pc: u16,
    /// The record kind currently on the wire — cached from the current
    /// `Hop` op so the transport layer resolves channels and node
    /// dependencies without re-reading the program.
    pub(crate) msg: MsgKind,
    /// Transmit attempts of the current hop (resets per hop).
    pub(crate) attempt: u32,
    /// Accumulated end-to-end latency charge.
    pub(crate) elapsed_us: u64,
    /// The plaintext being (re)transmitted on the current hop.
    pub(crate) wire: Vec<u8>,
    /// The sealed record of the current hop, cached on the first
    /// attempt so retransmits put the byte-identical record (same
    /// channel sequence number) back on the wire. A late or duplicated
    /// copy of an already-delivered record then bounces off the
    /// receiver's anti-replay window — the hop can never be processed
    /// twice. Empty means "not sealed yet" (a sealed record is never
    /// empty: it carries at least a header and a tag); the buffer is
    /// reused across hops and sessions, so the warm path never
    /// reallocates it.
    pub(crate) sealed: Vec<u8>,
    /// Current hop generation; bumped when a hop completes so stale
    /// `Retry`/`LateArrival` timers from earlier in the hop die.
    pub(crate) generation: u32,
    /// Records delayed past the loss-detection timeout, parked until
    /// their `LateArrival` event fires: `(msg, generation, record)`.
    pub(crate) late: Vec<(MsgKind, u32, Vec<u8>)>,
    /// The retry budget ran out while parked late copies were still in
    /// flight: the verdict is deferred to the last `LateArrival`.
    pub(crate) retry_deferred: bool,
    /// End-to-end deadline: `(budget_us, expires_at_us)`. `None` (the
    /// default) leaves the session unbounded — the clean path never
    /// checks it.
    pub(crate) deadline: Option<(u64, u64)>,
    /// Opened plaintext parked between transmit resolution and the
    /// arrival event. `inbox_full` distinguishes "a record is parked"
    /// from the empty resting state; the buffer itself is reused across
    /// hops (ping-ponged out during dispatch, put back after).
    pub(crate) inbox: Vec<u8>,
    pub(crate) inbox_full: bool,
    pub(crate) last_auth_failure: Option<ChannelError>,
    // ---- The typed register file -----------------------------------
    /// Nonce N1 (customer ↔ controller).
    pub(crate) nonce1: [u8; 32],
    /// Nonce N2 (controller ↔ attestation server).
    pub(crate) nonce2: [u8; 32],
    /// Nonce N3 (attestation server ↔ cloud server).
    pub(crate) nonce3: [u8; 32],
    /// The (vid, property) the controller read from the request and
    /// forwards to the appraiser. Initialized from the session's own
    /// fields; overwritten by a received message 1.
    pub(crate) req_vid: Vid,
    pub(crate) req_property: SecurityProperty,
    /// The measurement spec the attestation server requested.
    pub(crate) spec: Option<MeasurementSpec>,
    /// The measurement request as decoded by the cloud server.
    pub(crate) measure: Option<crate::messages::MeasureRequest>,
    /// The in-flight verdict: written by a received message 4/5/6 or a
    /// fork join, consumed by the next certification hop or `Complete`.
    pub(crate) status: Option<HealthStatus>,
    /// Parked in the Attestation Server's msg-4 coalescing buffer: the
    /// receive side of the hop is deferred to the batch flush, and a
    /// second park of the same hop (a straggler duplicate) must be
    /// counted once, never processed.
    pub(crate) in_batch: bool,
    // ---- Fork/join state (see `crate::protocol::fork`) -------------
    /// Child sessions still running for the current `Fork` op; the
    /// parent is parked (and invisible to per-hop fail-fast) until
    /// this reaches zero.
    pub(crate) fork_outstanding: u16,
    /// Wall-clock instant the fork spawned; the join charges the
    /// difference as the parent's wait.
    pub(crate) fork_started_us: u64,
    /// Per-branch outcomes, indexed by branch slot.
    pub(crate) fork_slots: Vec<Option<Result<HealthStatus, CloudError>>>,
    /// The verdict decoded from the final message.
    pub(crate) verdict: Option<HealthStatus>,
    /// Terminal outcome, parked for an API pump to collect.
    pub(crate) pending: Option<SessionOutcome>,
}

impl AttestSession {
    /// The seed value for a never-used arena slot: every field is
    /// overwritten by [`AttestSession::reset`] before use. Runs once
    /// per slot when the arena grows; steady state reuses slots.
    #[cold]
    pub(crate) fn vacant() -> Self {
        AttestSession {
            vid: Vid(0),
            server: ServerId(0),
            route: RouteTag::default(),
            property: SecurityProperty::StartupIntegrity,
            expected_image: Image::Cirros,
            origin: SessionOrigin::Api,
            program: ProgramId(0),
            pc: 0,
            msg: MsgKind::Msg2,
            attempt: 0,
            elapsed_us: 0,
            wire: Vec::new(),
            sealed: Vec::new(),
            generation: 0,
            late: Vec::new(),
            retry_deferred: false,
            deadline: None,
            inbox: Vec::new(),
            inbox_full: false,
            last_auth_failure: None,
            nonce1: [0; 32],
            nonce2: [0; 32],
            nonce3: [0; 32],
            req_vid: Vid(0),
            req_property: SecurityProperty::StartupIntegrity,
            spec: None,
            measure: None,
            status: None,
            in_batch: false,
            fork_outstanding: 0,
            fork_started_us: 0,
            fork_slots: Vec::new(),
            verdict: None,
            pending: None,
        }
    }

    /// Re-initializes a (possibly recycled) arena slot for a new
    /// exchange. Every field is reset; `Vec`-backed fields are cleared
    /// in place so a recycled slot's buffer capacity survives. The
    /// caller then enters the program's first op, which encodes the
    /// opening hop into `wire`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn reset(
        &mut self,
        vid: Vid,
        server: ServerId,
        route: RouteTag,
        property: SecurityProperty,
        expected_image: Image,
        program: ProgramId,
        origin: SessionOrigin,
    ) {
        self.vid = vid;
        self.server = server;
        self.route = route;
        self.property = property;
        self.expected_image = expected_image;
        self.origin = origin;
        self.program = program;
        self.pc = 0;
        // Placeholder until the first `Hop` op is entered; nothing
        // reads it before then.
        self.msg = MsgKind::Msg2;
        self.attempt = 0;
        self.elapsed_us = 0;
        self.wire.clear();
        self.sealed.clear();
        self.generation = 0;
        self.late.clear();
        self.retry_deferred = false;
        self.deadline = None;
        self.inbox.clear();
        self.inbox_full = false;
        self.last_auth_failure = None;
        self.nonce1 = [0; 32];
        self.nonce2 = [0; 32];
        self.nonce3 = [0; 32];
        self.req_vid = vid;
        self.req_property = property;
        self.spec = None;
        self.measure = None;
        self.status = None;
        self.in_batch = false;
        self.fork_outstanding = 0;
        self.fork_started_us = 0;
        self.fork_slots.clear();
        self.verdict = None;
        self.pending = None;
    }
}

impl AttestSession {
    /// Whether the session already holds its terminal outcome (parked
    /// for an API pump, or the verdict is decoded and the `Complete`
    /// tick is pending). Such sessions survive a node crash: their
    /// network work is done.
    pub(crate) fn is_terminal(&self) -> bool {
        self.pending.is_some() || self.verdict.is_some()
    }

    /// Whether the session's current protocol hop depends on `node`. A
    /// parent parked on a fork depends on nothing itself — its fate
    /// rides entirely on its children, which fail (and resume it) on
    /// their own — so it is invisible to per-hop fail-fast.
    pub(crate) fn touches(&self, node: NodeId) -> bool {
        if self.fork_outstanding > 0 {
            return false;
        }
        hop_nodes(self.msg, self.route, self.server).contains(&node)
    }
}

pub(crate) fn lost_session() -> CloudError {
    CloudError::ProtocolFailure {
        reason: "attestation session state lost".into(),
    }
}

#[cold]
pub(crate) fn malformed(what: &str, e: impl std::fmt::Display) -> CloudError {
    CloudError::ProtocolFailure {
        reason: format!("malformed {what}: {e}"),
    }
}

#[cold]
fn duplicate_not_rejected(peer: &str, outcome: Result<(), ChannelError>) -> CloudError {
    CloudError::ProtocolFailure {
        reason: format!("duplicate record from {peer} not rejected: {outcome:?}"),
    }
}

/// The secure link a hop travels: the session's routed controller
/// instance and AS replica select the mesh edge. The single source of
/// endpoint resolution — protocol code never names a link by string.
pub(crate) fn link_for(msg: MsgKind, route: RouteTag, server: ServerId) -> LinkKey {
    match msg {
        MsgKind::Msg1 | MsgKind::Msg6 => LinkKey::CustCtrl(route.controller),
        MsgKind::Msg2 | MsgKind::Msg5 => LinkKey::CtrlAs(route.controller, route.replica),
        MsgKind::Msg3 | MsgKind::Msg4 => LinkKey::AsServer(route.replica, server),
    }
}

/// Resolves a hop's message kind to its (sender, receiver) channel
/// halves on the session's routed link. The mapping mirrors Figure 3:
/// Kx for messages 1/6, Ky for 2/5, Kz for 3/4.
pub(crate) fn hop_channels(
    msg: MsgKind,
    links: &mut ControlLinks,
    route: RouteTag,
    server: ServerId,
) -> Result<(&mut SecureChannel, &mut SecureChannel), CloudError> {
    match msg {
        MsgKind::Msg1 | MsgKind::Msg6 => {
            let pair = links
                .cust_ctrl_mut(route.controller)
                .ok_or_else(lost_session)?;
            Ok(match msg {
                MsgKind::Msg1 => (&mut pair.initiator, &mut pair.responder),
                _ => (&mut pair.responder, &mut pair.initiator),
            })
        }
        MsgKind::Msg2 | MsgKind::Msg5 => {
            let pair = links
                .ctrl_as_mut(route.controller, route.replica)
                .ok_or_else(lost_session)?;
            Ok(match msg {
                MsgKind::Msg2 => (&mut pair.initiator, &mut pair.responder),
                _ => (&mut pair.responder, &mut pair.initiator),
            })
        }
        MsgKind::Msg3 | MsgKind::Msg4 => {
            let pair = links
                .as_server_mut(route.replica, server)
                .ok_or(CloudError::UnknownServer(server))?;
            Ok(match msg {
                MsgKind::Msg3 => (&mut pair.initiator, &mut pair.responder),
                _ => (&mut pair.responder, &mut pair.initiator),
            })
        }
    }
}

/// The cloud-side nodes a protocol hop depends on (the customer
/// endpoint is assumed reliable), resolved through the session's
/// route. If any of them is crashed, the hop cannot make progress and
/// the session fails fast.
pub(crate) fn hop_nodes(msg: MsgKind, route: RouteTag, server: ServerId) -> [NodeId; 2] {
    let ctrl = controller_node(route.controller);
    let attsrv = as_node(route.replica);
    match msg {
        // The controller terminates both customer-facing hops.
        MsgKind::Msg1 | MsgKind::Msg6 => [ctrl, ctrl],
        MsgKind::Msg2 | MsgKind::Msg5 => [ctrl, attsrv],
        MsgKind::Msg3 | MsgKind::Msg4 => [attsrv, NodeId::Server(server)],
    }
}

/// The first crashed node (if any) the hop depends on.
fn down_node_for(
    down: &BTreeSet<NodeId>,
    msg: MsgKind,
    route: RouteTag,
    server: ServerId,
) -> Option<NodeId> {
    hop_nodes(msg, route, server)
        .into_iter()
        .find(|n| down.contains(n))
}

/// The retransmission ladder a hop runs on: control-plane hops
/// (messages 1, 2, 5, 6 — customer/controller/AS processing) use the
/// control-plane policy, the data-plane measurement hops (3, 4) the
/// data-plane one. The two default to the same ladder, so an
/// unconfigured cloud draws an identical backoff stream.
pub(crate) fn retry_policy_for(
    msg: MsgKind,
    data: RetryPolicy,
    control: RetryPolicy,
) -> RetryPolicy {
    match msg {
        MsgKind::Msg3 | MsgKind::Msg4 => data,
        _ => control,
    }
}

impl Cloud {
    /// Starts a full customer session running the default Figure-3
    /// program (messages 1–6); the rest happens in event handlers.
    pub(crate) fn begin_customer_session(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
        origin: SessionOrigin,
    ) -> Result<SessionId, CloudError> {
        let program = self.programs.fig3_customer;
        self.begin_program_session(vid, property, program, origin)
    }

    /// Starts a customer-shaped session running an arbitrary compiled
    /// program against `vid`'s current placement.
    pub(crate) fn begin_program_session(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
        program: ProgramId,
        origin: SessionOrigin,
    ) -> Result<SessionId, CloudError> {
        use crate::controller::VmLifecycle;
        self.admit_session()?;
        let record = self.controller.vm(vid).ok_or(CloudError::UnknownVm(vid))?;
        if record.state == VmLifecycle::Terminated {
            return Err(CloudError::UnknownVm(vid));
        }
        // Copy the two placement fields instead of cloning the record:
        // the session only needs them.
        let server = record.server;
        let image = record.image;
        // Pin the control-plane route while `self` is still whole: the
        // session keeps it for life (a mid-session crash fails fast and
        // re-admits on a fresh route — state never migrates).
        let route = self.topology.route_for(vid);
        let (sid, session) = self
            .sessions
            .alloc_with(AttestSession::vacant)
            .ok_or_else(lost_session)?;
        session.reset(vid, server, route, property, image, program, origin);
        self.spawn_prepared(sid)
    }

    /// Starts a controller-internal session (messages 2–5), used by the
    /// launch pipeline's attestation stage (the VM may not be in the
    /// controller's registry yet, so placement is passed explicitly).
    pub(crate) fn begin_internal_session(
        &mut self,
        vid: Vid,
        server: ServerId,
        property: SecurityProperty,
        expected_image: Image,
    ) -> Result<SessionId, CloudError> {
        self.admit_session()?;
        let program = self.programs.fig3_internal;
        let route = self.topology.route_for(vid);
        let (sid, session) = self
            .sessions
            .alloc_with(AttestSession::vacant)
            .ok_or_else(lost_session)?;
        session.reset(
            vid,
            server,
            route,
            property,
            expected_image,
            program,
            SessionOrigin::Api,
        );
        self.spawn_prepared(sid)
    }

    /// Arms and launches a session already reset into its arena slot:
    /// stamps the deadline, bumps the spawn stats and enters the
    /// program's first op — which builds and transmits the opening hop
    /// (retiring the slot again if that fails).
    pub(crate) fn spawn_prepared(&mut self, sid: SessionId) -> Result<SessionId, CloudError> {
        let deadline = self
            .session_deadline_us
            .map(|budget| (budget, self.wall_clock_us.saturating_add(budget)));
        if let Some(session) = self.sessions.get_mut(sid) {
            session.deadline = deadline;
        }
        self.stats.sessions_started += 1;
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.sessions.len() as u64);
        if let Err(e) = self.enter_current_op(sid, 0) {
            self.sessions.remove(sid);
            self.stats.sessions_failed += 1;
            self.classify_failure(&e);
            return Err(e);
        }
        Ok(sid)
    }

    /// Attributes a session failure to its failure-class counter
    /// (outage fail-fast, deadline expiry); other classes are already
    /// covered by the per-hop counters.
    pub(crate) fn classify_failure(&mut self, e: &CloudError) {
        match e {
            CloudError::NodeDown { .. } => self.outage_stats.node_down_failures += 1,
            CloudError::DeadlineExceeded { .. } => self.stats.deadlines_exceeded += 1,
            _ => {}
        }
    }

    /// Drives the event loop until `sid` reaches a terminal state — the
    /// synchronous facade behind the Table-1 APIs. Outside [`Cloud::run`]
    /// the queue only ever holds this session's events (and those of
    /// any fork children it spawned).
    pub(crate) fn pump_session(&mut self, sid: SessionId) -> SessionOutcome {
        loop {
            let parked = match self.sessions.get_mut(sid) {
                None => {
                    return Err(CloudError::ProtocolFailure {
                        reason: "attestation session vanished".into(),
                    })
                }
                Some(s) => s.pending.take(),
            };
            if let Some(outcome) = parked {
                self.sessions.remove(sid);
                return outcome;
            }
            if self.engine.is_empty() {
                self.sessions.remove(sid);
                return Err(CloudError::ProtocolFailure {
                    reason: "event queue stalled mid-session".into(),
                });
            }
            let Some((due, event)) = self.engine.pop() else {
                // Unreachable: emptiness was checked above.
                continue;
            };
            self.advance_to(due);
            self.dispatch_event(event);
        }
    }

    /// Seals and transmits the session's current hop payload once. The
    /// simulator resolves the outcome at send time; exactly one
    /// follow-up event is scheduled — the arrival of a delivered record
    /// or the sender's timeout for a lost/rejected one. `pre_delay_us`
    /// is processing time paid before the record leaves (it shifts every
    /// scheduled instant and is charged to the session's latency).
    pub(crate) fn transmit_attempt(
        &mut self,
        sid: SessionId,
        pre_delay_us: u64,
    ) -> Result<(), CloudError> {
        let Cloud {
            sessions,
            network,
            rng,
            stats,
            retry,
            control_retry,
            links,
            stale_links,
            identities,
            outage_stats,
            engine,
            wall_clock_us,
            down,
            record_scratch,
            ..
        } = self;
        let now = *wall_clock_us;
        let session = sessions.get_mut(sid).ok_or_else(lost_session)?;
        // Fail fast when a node this hop depends on is crashed —
        // checked before any RNG draw or transmission, so the session
        // does not burn the retransmission ladder against a black hole.
        if let Some(node) = down_node_for(down, session.msg, session.route, session.server) {
            return Err(CloudError::NodeDown { node });
        }
        // Lazy re-keying: a link marked stale by a node recovery is
        // re-handshaken here, at its first post-recovery use, instead
        // of in a synchronized burst at the recovery instant.
        let link = link_for(session.msg, session.route, session.server);
        if stale_links.remove(&link) {
            refresh_stale_link(rng, identities, links, outage_stats, link);
        }
        let policy = retry_policy_for(session.msg, *retry, *control_retry);
        // Session events shard by target server (routing only — never
        // affects pop order; see `crate::engine`).
        let shard_key = session.server.0 as u64;
        let mut offset = pre_delay_us;
        session.attempt += 1;
        if session.attempt > 1 {
            stats.retries += 1;
            offset += policy.backoff_us(session.attempt - 1, rng);
        }
        session.elapsed_us += offset;
        let generation = session.generation;
        let (send, recv) = hop_channels(session.msg, links, session.route, session.server)?;
        // Seal once per hop: retransmits resend the byte-identical
        // record, so the receiver's anti-replay window deduplicates a
        // late first copy arriving after a retransmit was processed.
        // The sealed record lives in the session's reusable buffer
        // (empty = not sealed yet for this hop).
        if session.attempt == 1 {
            send.seal_into(b"", &session.wire, &mut session.sealed);
        }
        stats.messages_sent += 1;
        let delivery = network.send_at_into(
            recv.peer(),
            send.peer(),
            &session.sealed,
            now + offset,
            record_scratch,
        );
        match delivery.delivered {
            false => {
                // Nothing arrived: the sender learns of the loss only by
                // timing out.
                stats.drops_seen += 1;
                stats.timeouts += 1;
                session.elapsed_us += policy.timeout_us;
                engine.schedule(
                    now + offset + policy.timeout_us,
                    shard_key,
                    CloudEvent::Session {
                        sid,
                        event: SessionEvent::Retry { generation },
                    },
                );
            }
            true if delivery.latency_us > policy.timeout_us && policy.max_attempts > 1 => {
                // Delivered, but past the sender's loss-detection
                // timeout: the sender retransmits first. Park the late
                // record unopened until its arrival instant — by then a
                // retransmit has usually advanced the receive window and
                // it bounces as a duplicate; only if every retransmit
                // was lost too does it save the hop.
                stats.timeouts += 1;
                session.elapsed_us += policy.timeout_us;
                let copies = if delivery.duplicated { 2 } else { 1 };
                for _ in 0..copies {
                    session
                        .late
                        .push((session.msg, generation, record_scratch.clone()));
                    engine.schedule(
                        delivery.deliver_at_us,
                        shard_key,
                        CloudEvent::Session {
                            sid,
                            event: SessionEvent::LateArrival { generation },
                        },
                    );
                }
                engine.schedule(
                    now + offset + policy.timeout_us,
                    shard_key,
                    CloudEvent::Session {
                        sid,
                        event: SessionEvent::Retry { generation },
                    },
                );
            }
            true => match recv.open_into(b"", record_scratch, &mut session.inbox) {
                Ok(()) => {
                    session.inbox_full = true;
                    session.elapsed_us += delivery.latency_us;
                    if delivery.duplicated {
                        // The network delivered a second identical copy;
                        // the receive window must reject it without
                        // desynchronizing the channel. The rejection
                        // happens before the output buffer is touched,
                        // so an empty throwaway Vec never allocates.
                        // #[allow(monatt::alloc_freedom)]
                        match recv.open_into(b"", record_scratch, &mut Vec::new()) {
                            Err(ChannelError::DuplicateRecord) => {
                                stats.duplicates_rejected += 1;
                            }
                            other => return Err(duplicate_not_rejected(recv.peer(), other)),
                        }
                    }
                    engine.schedule(
                        delivery.deliver_at_us,
                        shard_key,
                        CloudEvent::Session {
                            sid,
                            event: SessionEvent::Arrival,
                        },
                    );
                }
                Err(e) => {
                    // Corrupted, tampered or replayed: the record is
                    // rejected, the receiver stays silent, the sender
                    // times out.
                    stats.auth_failures += 1;
                    stats.timeouts += 1;
                    session.elapsed_us += delivery.latency_us + policy.timeout_us;
                    session.last_auth_failure = Some(e);
                    engine.schedule(
                        now + offset + delivery.latency_us + policy.timeout_us,
                        shard_key,
                        CloudEvent::Session {
                            sid,
                            event: SessionEvent::Retry { generation },
                        },
                    );
                }
            },
        }
        stats.max_queue_depth = stats.max_queue_depth.max(engine.max_depth() as u64);
        Ok(())
    }

    /// Steps `sid` for `event`; any error terminates the session with
    /// the same classification the blocking implementation returned.
    pub(crate) fn step_session(&mut self, sid: SessionId, event: SessionEvent) {
        // Stale events — timers or late arrivals outliving a session
        // that already terminated (failed fast on a node crash, or its
        // outcome is parked for an API pump) — are discarded here, so a
        // terminal outcome is recorded exactly once.
        let Some(session) = self.sessions.get(sid) else {
            return;
        };
        if session.pending.is_some() {
            return;
        }
        let result = match event {
            SessionEvent::Arrival => self.step_arrival(sid),
            SessionEvent::Retry { generation } => self.step_retry(sid, generation),
            SessionEvent::LateArrival { generation } => self.step_late_arrival(sid, generation),
            SessionEvent::WindowOpen => self.step_window_open(sid),
            SessionEvent::WindowClose => self.step_window_close(sid),
            SessionEvent::Complete => self.step_complete(sid),
        };
        if let Err(e) = result {
            self.finish_session(sid, Err(e));
        }
    }

    /// Terminates the session if its end-to-end deadline has passed.
    /// Sessions without a deadline (the default) never check.
    pub(crate) fn check_deadline(&mut self, sid: SessionId) -> Result<(), CloudError> {
        let now = self.wall_clock_us;
        let session = self.sessions.get(sid).ok_or_else(lost_session)?;
        if let Some((budget_us, expires_at)) = session.deadline {
            if now > expires_at {
                return Err(CloudError::DeadlineExceeded {
                    budget_us,
                    elapsed_us: session.elapsed_us,
                });
            }
        }
        Ok(())
    }

    /// The current hop's record reached its receiver: close out the
    /// hop's transport state and hand the plaintext to the program
    /// interpreter's receive dispatch.
    pub(crate) fn step_arrival(&mut self, sid: SessionId) -> Result<(), CloudError> {
        self.check_deadline(sid)?;
        let msg = {
            let Cloud {
                sessions,
                inbox_scratch,
                ..
            } = &mut *self;
            let session = sessions.get_mut(sid).ok_or_else(lost_session)?;
            if !session.inbox_full {
                return Err(CloudError::ProtocolFailure {
                    reason: "arrival event without a delivered record".into(),
                });
            }
            session.inbox_full = false;
            // Ping-pong the delivered plaintext into the cloud-level
            // scratch: the session's inbox must keep a capacity-bearing
            // buffer during dispatch, because the next hop's open lands
            // in it before this function returns.
            std::mem::swap(&mut session.inbox, inbox_scratch);
            // The hop completed; the next one starts a fresh attempt
            // budget, a fresh sealed record, and a new generation (any
            // still-pending Retry timer of this hop is now stale).
            session.attempt = 0;
            session.last_auth_failure = None;
            session.sealed.clear();
            session.retry_deferred = false;
            session.generation = session.generation.wrapping_add(1);
            session.msg
        };
        // Moving a Vec out of `self` for the dispatch neither allocates
        // nor frees; it is put back afterwards so both ping-pong
        // buffers keep their capacity.
        let bytes = std::mem::take(&mut self.inbox_scratch);
        let result = self.dispatch_receive(sid, msg, &bytes);
        self.inbox_scratch = bytes;
        result
    }

    /// A loss-detection timeout fired: retry within budget, otherwise
    /// fail with the blocking implementation's exact classification.
    fn step_retry(&mut self, sid: SessionId, generation: u32) -> Result<(), CloudError> {
        let (max_attempts, exhausted) = {
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            let policy = retry_policy_for(session.msg, self.retry, self.control_retry);
            let max_attempts = policy.max_attempts.max(1);
            if session.generation != generation {
                // The hop this timer belonged to already completed (a
                // late arrival saved it): nothing to retransmit.
                return Ok(());
            }
            // Deadline lookahead: when the remaining budget cannot
            // cover even the next loss-detection timeout, abort now
            // instead of burning the rest of the retry ladder.
            if let Some((budget_us, expires_at)) = session.deadline {
                if self.wall_clock_us.saturating_add(policy.timeout_us) > expires_at {
                    return Err(CloudError::DeadlineExceeded {
                        budget_us,
                        elapsed_us: session.elapsed_us,
                    });
                }
            }
            (max_attempts, session.attempt >= max_attempts)
        };
        if !exhausted {
            return self.transmit_attempt(sid, 0);
        }
        // Budget exhausted — but copies delayed past the timeout may
        // still be in flight for this hop, and one of them opening
        // cleanly saves it. Defer the verdict to the last of them.
        if let Some(session) = self.sessions.get_mut(sid) {
            if session.late.iter().any(|(_, g, _)| *g == generation) {
                session.retry_deferred = true;
                return Ok(());
            }
        }
        self.exhaustion_error(sid, max_attempts)
    }

    /// The classification an out-of-budget hop fails with: "every
    /// delivery failed authentication" (evidence of tampering — a
    /// protocol failure) is distinguished from "nothing ever arrived"
    /// (the peer is unreachable). Reached only when a hop's whole retry
    /// budget burns down — never on the clean warm path.
    #[cold]
    fn exhaustion_error(&mut self, sid: SessionId, max_attempts: u32) -> Result<(), CloudError> {
        let Cloud {
            sessions, links, ..
        } = self;
        let session = sessions.get(sid).ok_or_else(lost_session)?;
        let (send, recv) = hop_channels(session.msg, links, session.route, session.server)?;
        Err(match &session.last_auth_failure {
            Some(e) => CloudError::ProtocolFailure {
                reason: format!(
                    "secure channel {}->{}: {e} ({max_attempts} attempts)",
                    recv.peer(),
                    send.peer()
                ),
            },
            None => CloudError::Unreachable {
                peer: send.peer().to_owned(),
                attempts: max_attempts,
            },
        })
    }

    /// A record delayed past the loss-detection timeout reaches its
    /// receiver. By now the sender has retransmitted the byte-identical
    /// record, so the usual outcome is a bounce off the receive window
    /// ([`ChannelError::DuplicateRecord`]) — counted, never processed.
    /// Only when every retransmit was lost too does the late copy open
    /// cleanly and save the hop.
    fn step_late_arrival(&mut self, sid: SessionId, generation: u32) -> Result<(), CloudError> {
        let advanced = {
            let Cloud {
                sessions,
                stats,
                links,
                ..
            } = self;
            let session = sessions.get_mut(sid).ok_or_else(lost_session)?;
            let Some(pos) = session.late.iter().position(|(_, g, _)| *g == generation) else {
                // Already consumed (defensive; one event is scheduled
                // per parked copy).
                return Ok(());
            };
            let (msg, _, record) = session.late.remove(pos);
            let (_, recv) = hop_channels(msg, links, session.route, session.server)?;
            match recv.open(b"", &record) {
                Err(ChannelError::DuplicateRecord) => {
                    // A retransmit already carried this sequence number
                    // through: the late copy is structurally a
                    // duplicate.
                    stats.duplicates_rejected += 1;
                    false
                }
                Err(_) => {
                    // Keys rotated underneath it (crash/recovery) or
                    // the record is otherwise unverifiable: the
                    // receiver drops it silently, exactly like any
                    // unauthenticated junk.
                    false
                }
                Ok(plaintext) => {
                    if session.generation == generation && session.msg == msg && !session.in_batch {
                        // Every retransmit was lost: the late copy is
                        // the first authenticated delivery of this hop.
                        // Its waiting time was already charged as
                        // timeouts. (A hop already parked in the msg-4
                        // coalescing buffer is past its receive point:
                        // re-entering it here would hand the flush the
                        // same session twice.)
                        session.inbox.clear();
                        session.inbox.extend_from_slice(&plaintext);
                        session.inbox_full = true;
                        true
                    } else {
                        // The hop moved on without this sequence number
                        // ever opening (possible only across a
                        // re-handshake); stray plaintext for a finished
                        // hop is discarded.
                        false
                    }
                }
            }
        };
        if advanced {
            return self.step_arrival(sid);
        }
        // The copy did not advance the hop. When the retry ladder
        // already gave up waiting for the stragglers (`retry_deferred`)
        // and this was the last one in flight, the hop is out of
        // chances.
        let out_of_chances = {
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            session.retry_deferred
                && session.generation == generation
                && !session.late.iter().any(|(_, g, _)| *g == generation)
        };
        if out_of_chances {
            return self.exhaustion_error(sid, self.retry.max_attempts.max(1));
        }
        Ok(())
    }

    /// Fails an in-flight session fast because a node its current hop
    /// depends on crashed (called from the crash handler).
    pub(crate) fn finish_session_node_down(&mut self, sid: SessionId, node: NodeId) {
        self.finish_session(sid, Err(CloudError::NodeDown { node }));
    }

    /// Terminates `sid` and routes the outcome to its consumer: parked
    /// for an API pump, recorded on the owning subscription, or posted
    /// into the forking parent's branch slot.
    pub(crate) fn finish_session(&mut self, sid: SessionId, outcome: SessionOutcome) {
        // Guard first: a session that already terminated must not be
        // double-counted by a straggler event.
        if !self.sessions.contains(sid) {
            return;
        }
        match &outcome {
            Ok(_) => self.stats.sessions_completed += 1,
            Err(e) => {
                self.stats.sessions_failed += 1;
                self.classify_failure(e);
            }
        }
        let Some(session) = self.sessions.get_mut(sid) else {
            return;
        };
        match session.origin {
            SessionOrigin::Api => session.pending = Some(outcome),
            SessionOrigin::Subscription(subscription) => {
                let (vid, property) = (session.vid, session.property);
                self.sessions.remove(sid);
                let result = outcome.map(|y| crate::cloud::AttestationReport {
                    vid,
                    property,
                    status: y.status,
                    elapsed_us: y.elapsed_us,
                    issued_at_us: self.wall_clock_us,
                });
                self.complete_subscription_sample(subscription, vid, property, result);
            }
            SessionOrigin::Child { parent, slot } => {
                self.sessions.remove(sid);
                self.route_child_outcome(parent, slot, outcome.map(|y| y.status));
            }
        }
    }
}
