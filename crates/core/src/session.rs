//! Per-session state machines for the Figure-3 attestation protocol.
//!
//! A session owns one protocol exchange — customer → Cloud Controller →
//! Attestation Server → cloud server and back (messages 1–6), or the
//! controller-internal launch variant (messages 2–5) — and advances
//! purely by reacting to events popped from the [`crate::engine`] queue:
//! record arrivals, retransmission timeouts, measurement-window
//! openings/closings and the final completion tick. Nothing blocks, so
//! N sessions interleave on the same virtual clock and one stalled hop
//! (a lossy path to one server) no longer head-of-line-blocks every
//! other subscription.
//!
//! ## Latency accounting
//!
//! Every microsecond the old inline implementation added to `elapsed`
//! is mirrored here as a scheduled delay, charged when the delay is
//! scheduled: hop latencies at transmit resolution, per-message
//! processing ([`LatencyParams::post_hop_us`]) as a pre-delay on the
//! next transmission, the measurement window between `WindowOpen` and
//! `WindowClose`, and the final processing tail before `Complete`. The
//! completion event therefore fires at exactly `start + elapsed_us`,
//! which keeps the clean-path Figure 9–11 numbers bit-identical to the
//! pre-event-loop code (pinned by the golden-trace test).
//!
//! ## Retransmission as timer events
//!
//! The network simulator resolves a record's fate at send time, so each
//! attempt schedules exactly one follow-up: the arrival of a delivered
//! record, or the sender's loss-detection timeout for a lost/rejected
//! one. On timeout the session retries (charging backoff, drawn in
//! event order from the cloud DRBG — the same draw sequence the
//! blocking loop made) until the [`RetryPolicy`] budget is exhausted,
//! then fails with the same error classification as before:
//! authentication failures are protocol failures, pure silence is
//! [`CloudError::Unreachable`].
//!
//! ## Measurement-window serialization
//!
//! A server's profiling window is global to the server, so two windowed
//! sessions measuring on the same host would corrupt each other's
//! histograms. Sessions therefore queue per server: `WindowOpen` defers
//! (charging the wait as real queueing latency) until the current
//! window owner's deadline passes. Window-less specs are unaffected.

use crate::attestation::AttestationServer;
use crate::cloud::{AttestationReport, ChannelPair, Cloud};
use crate::controller::{CloudController, VmLifecycle};
use crate::error::CloudError;
use crate::measurements::MeasurementSpec;
use crate::messages::{
    AttestationReportMsg, ControllerForward, CustomerReportMsg, CustomerRequest, MeasureRequest,
    MeasureResponse,
};
use crate::types::{HealthStatus, Image, NodeId, SecurityProperty, ServerId, Vid};
use monatt_net::channel::{ChannelError, SecureChannel};
use monatt_net::wire::Wire;
use std::collections::{BTreeMap, BTreeSet};

pub(crate) use crate::arena::SessionId;

/// The in-flight session table: slot-indexed, generation-checked,
/// buffer-retaining (see [`crate::arena`]).
pub(crate) type SessionArena = crate::arena::Arena<AttestSession>;

/// Which Figure-3 record is currently on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Stage {
    /// Customer → controller request.
    Msg1,
    /// Controller → attestation server forward.
    Msg2,
    /// Attestation server → cloud server measurement request.
    Msg3,
    /// Cloud server → attestation server measurement response.
    Msg4,
    /// Attestation server → controller property report.
    Msg5,
    /// Controller → customer report.
    Msg6,
}

/// Timer and delivery events that step one session.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SessionEvent {
    /// The current hop's record reaches its receiver.
    Arrival,
    /// The sender's loss-detection timeout fired: retransmit or fail.
    /// Tagged with the hop generation it was scheduled in, so a timer
    /// outlived by its hop (the hop completed via a late arrival) is
    /// discarded instead of retransmitting into a finished exchange.
    Retry {
        /// Hop generation at schedule time.
        generation: u32,
    },
    /// A record delayed past the sender's loss-detection timeout
    /// finally reaches the receiver — after the sender already
    /// retransmitted. Normally it bounces off the receive window as a
    /// duplicate; if every retransmit was lost too, it saves the hop.
    LateArrival {
        /// Hop generation at schedule time.
        generation: u32,
    },
    /// The measurement window may open on the server.
    WindowOpen,
    /// The measurement window elapsed: measure, quote, respond.
    WindowClose,
    /// All processing charges are paid: deliver the verdict.
    Complete,
}

/// Everything the cloud's event loop can schedule.
#[derive(Clone, Copy, Debug)]
pub(crate) enum CloudEvent {
    /// Step an attestation session.
    Session {
        /// The session to step.
        sid: SessionId,
        /// What happened.
        event: SessionEvent,
    },
    /// A periodic subscription came due.
    SubscriptionDue {
        /// The subscription id.
        id: u64,
    },
    /// A node state transition from the outage schedule.
    Outage {
        /// The node changing state.
        node: NodeId,
        /// `true` = crash, `false` = recovery.
        down: bool,
        /// Whether the renewal process should chain the opposite
        /// transition when this one fires (stochastic transitions only).
        chain: bool,
    },
    /// The Attestation Server's msg-4 coalescing window elapsed: every
    /// parked measurement response is validated in one batched
    /// verification pass (see [`Cloud::flush_msg4_batch`]). A flush that
    /// finds the buffer already drained (a size-triggered flush beat the
    /// window timer) is a no-op.
    Msg4Flush,
}

/// A message-4 measurement response parked at the Attestation Server,
/// awaiting the coalescing flush. The session's expectations (vid, spec,
/// nonce N3) are re-read from the live session at flush time; an entry
/// whose session died in between (node crash, deadline) is skipped.
#[derive(Debug)]
pub(crate) struct PendingMsg4 {
    pub(crate) sid: SessionId,
    pub(crate) msg4: MeasureResponse,
    /// Wall-clock instant the response reached the AS; the flush charges
    /// `flush_time - arrived_at_us` as coalescing wait.
    pub(crate) arrived_at_us: u64,
}

/// A batch entry's expectations, re-read from its live session at flush
/// time: (vid, server, property, image, spec, nonce2, nonce3).
pub(crate) type Msg4Meta = (
    Vid,
    ServerId,
    SecurityProperty,
    Image,
    MeasurementSpec,
    [u8; 32],
    [u8; 32],
);

/// What a session is for.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SessionGoal {
    /// Full customer-facing exchange, messages 1–6.
    Customer {
        /// Nonce N1, echoed in the message-6 report.
        nonce1: [u8; 32],
    },
    /// Controller-internal exchange (launch attestation), messages 2–5.
    Internal,
}

/// Who consumes the session's outcome.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SessionOrigin {
    /// A synchronous Table-1 API call pumping the queue to completion.
    Api,
    /// A periodic subscription sample fired by [`Cloud::run`].
    Subscription(u64),
}

/// A session's terminal value: the interpreted verdict plus the
/// end-to-end latency charged to it.
#[derive(Clone, Debug)]
pub(crate) struct SessionYield {
    /// The verdict carried by the final protocol message.
    pub(crate) status: HealthStatus,
    /// End-to-end latency (protocol + measurement window + queueing).
    pub(crate) elapsed_us: u64,
}

pub(crate) type SessionOutcome = Result<SessionYield, CloudError>;

/// One in-flight Figure-3 exchange.
#[derive(Debug)]
pub(crate) struct AttestSession {
    pub(crate) vid: Vid,
    pub(crate) server: ServerId,
    pub(crate) property: SecurityProperty,
    expected_image: Image,
    goal: SessionGoal,
    pub(crate) origin: SessionOrigin,
    stage: Stage,
    /// Transmit attempts of the current hop (resets per hop).
    attempt: u32,
    /// Accumulated end-to-end latency charge.
    elapsed_us: u64,
    /// The plaintext being (re)transmitted on the current hop.
    wire: Vec<u8>,
    /// The sealed record of the current hop, cached on the first
    /// attempt so retransmits put the byte-identical record (same
    /// channel sequence number) back on the wire. A late or duplicated
    /// copy of an already-delivered record then bounces off the
    /// receiver's anti-replay window — the hop can never be processed
    /// twice. Empty means "not sealed yet" (a sealed record is never
    /// empty: it carries at least a header and a tag); the buffer is
    /// reused across hops and sessions, so the warm path never
    /// reallocates it.
    sealed: Vec<u8>,
    /// Current hop generation; bumped when a hop completes so stale
    /// `Retry`/`LateArrival` timers from earlier in the hop die.
    generation: u32,
    /// Records delayed past the loss-detection timeout, parked until
    /// their `LateArrival` event fires: `(stage, generation, record)`.
    late: Vec<(Stage, u32, Vec<u8>)>,
    /// The retry budget ran out while parked late copies were still in
    /// flight: the verdict is deferred to the last `LateArrival`.
    retry_deferred: bool,
    /// End-to-end deadline: `(budget_us, expires_at_us)`. `None` (the
    /// default) leaves the session unbounded — the clean path never
    /// checks it.
    deadline: Option<(u64, u64)>,
    /// Opened plaintext parked between transmit resolution and the
    /// arrival event. `inbox_full` distinguishes "a record is parked"
    /// from the empty resting state; the buffer itself is reused across
    /// hops (ping-ponged out during dispatch, put back after).
    inbox: Vec<u8>,
    inbox_full: bool,
    last_auth_failure: Option<ChannelError>,
    /// Nonce N2 (controller ↔ attestation server).
    nonce2: [u8; 32],
    /// Nonce N3 (attestation server ↔ cloud server).
    nonce3: [u8; 32],
    /// The measurement spec the attestation server requested.
    spec: Option<MeasurementSpec>,
    /// The measurement request as decoded by the cloud server.
    measure: Option<MeasureRequest>,
    /// The verdict decoded from the final message.
    verdict: Option<HealthStatus>,
    /// Terminal outcome, parked for an API pump to collect.
    pending: Option<SessionOutcome>,
}

impl AttestSession {
    /// The seed value for a never-used arena slot: every field is
    /// overwritten by [`AttestSession::reset`] before use. Runs once
    /// per slot when the arena grows; steady state reuses slots.
    #[cold]
    fn vacant() -> Self {
        AttestSession {
            vid: Vid(0),
            server: ServerId(0),
            property: SecurityProperty::StartupIntegrity,
            expected_image: Image::Cirros,
            goal: SessionGoal::Internal,
            origin: SessionOrigin::Api,
            stage: Stage::Msg2,
            attempt: 0,
            elapsed_us: 0,
            wire: Vec::new(),
            sealed: Vec::new(),
            generation: 0,
            late: Vec::new(),
            retry_deferred: false,
            deadline: None,
            inbox: Vec::new(),
            inbox_full: false,
            last_auth_failure: None,
            nonce2: [0; 32],
            nonce3: [0; 32],
            spec: None,
            measure: None,
            verdict: None,
            pending: None,
        }
    }

    /// Re-initializes a (possibly recycled) arena slot for a new
    /// exchange. Every field is reset; `Vec`-backed fields are cleared
    /// in place so a recycled slot's buffer capacity survives — the
    /// caller then encodes the first hop into `wire` via
    /// [`Wire::encode_into`].
    fn reset(
        &mut self,
        vid: Vid,
        server: ServerId,
        property: SecurityProperty,
        expected_image: Image,
        goal: SessionGoal,
        origin: SessionOrigin,
    ) {
        self.vid = vid;
        self.server = server;
        self.property = property;
        self.expected_image = expected_image;
        self.goal = goal;
        self.origin = origin;
        // A customer-facing session enters the protocol at message 1;
        // an internal (launch-time) session skips the customer hop.
        self.stage = match goal {
            SessionGoal::Customer { .. } => Stage::Msg1,
            SessionGoal::Internal => Stage::Msg2,
        };
        self.attempt = 0;
        self.elapsed_us = 0;
        self.wire.clear();
        self.sealed.clear();
        self.generation = 0;
        self.late.clear();
        self.retry_deferred = false;
        self.deadline = None;
        self.inbox.clear();
        self.inbox_full = false;
        self.last_auth_failure = None;
        self.nonce2 = [0; 32];
        self.nonce3 = [0; 32];
        self.spec = None;
        self.measure = None;
        self.verdict = None;
        self.pending = None;
    }
}

impl AttestSession {
    /// Whether the session already holds its terminal outcome (parked
    /// for an API pump, or the verdict is decoded and the `Complete`
    /// tick is pending). Such sessions survive a node crash: their
    /// network work is done.
    pub(crate) fn is_terminal(&self) -> bool {
        self.pending.is_some() || self.verdict.is_some()
    }

    /// Whether the session's current protocol stage depends on `node`.
    pub(crate) fn touches(&self, node: NodeId) -> bool {
        stage_nodes(self.stage, self.server).contains(&node)
    }
}

fn lost_session() -> CloudError {
    CloudError::ProtocolFailure {
        reason: "attestation session state lost".into(),
    }
}

#[cold]
fn malformed(what: &str, e: impl std::fmt::Display) -> CloudError {
    CloudError::ProtocolFailure {
        reason: format!("malformed {what}: {e}"),
    }
}

#[cold]
fn duplicate_not_rejected(peer: &str, outcome: Result<(), ChannelError>) -> CloudError {
    CloudError::ProtocolFailure {
        reason: format!("duplicate record from {peer} not rejected: {outcome:?}"),
    }
}

/// Resolves a protocol stage to its (sender, receiver) channel halves.
/// The mapping mirrors Figure 3: Kx for messages 1/6, Ky for 2/5, Kz
/// for 3/4.
fn stage_channels<'a>(
    stage: Stage,
    cust_ctrl: &'a mut ChannelPair,
    ctrl_as: &'a mut ChannelPair,
    as_server: &'a mut BTreeMap<ServerId, ChannelPair>,
    server: ServerId,
) -> Result<(&'a mut SecureChannel, &'a mut SecureChannel), CloudError> {
    match stage {
        Stage::Msg1 => Ok((&mut cust_ctrl.initiator, &mut cust_ctrl.responder)),
        Stage::Msg2 => Ok((&mut ctrl_as.initiator, &mut ctrl_as.responder)),
        Stage::Msg3 | Stage::Msg4 => {
            let pair = as_server
                .get_mut(&server)
                .ok_or(CloudError::UnknownServer(server))?;
            Ok(match stage {
                Stage::Msg3 => (&mut pair.initiator, &mut pair.responder),
                _ => (&mut pair.responder, &mut pair.initiator),
            })
        }
        Stage::Msg5 => Ok((&mut ctrl_as.responder, &mut ctrl_as.initiator)),
        Stage::Msg6 => Ok((&mut cust_ctrl.responder, &mut cust_ctrl.initiator)),
    }
}

/// The cloud-side nodes a protocol stage depends on (the customer
/// endpoint is assumed reliable). If any of them is crashed, the hop
/// cannot make progress and the session fails fast.
pub(crate) fn stage_nodes(stage: Stage, server: ServerId) -> [NodeId; 2] {
    match stage {
        // The controller terminates both customer-facing hops.
        Stage::Msg1 | Stage::Msg6 => [NodeId::Controller, NodeId::Controller],
        Stage::Msg2 | Stage::Msg5 => [NodeId::Controller, NodeId::AttestationServer],
        Stage::Msg3 | Stage::Msg4 => [NodeId::AttestationServer, NodeId::Server(server)],
    }
}

/// The first crashed node (if any) the stage depends on.
fn down_node_for(down: &BTreeSet<NodeId>, stage: Stage, server: ServerId) -> Option<NodeId> {
    stage_nodes(stage, server)
        .into_iter()
        .find(|n| down.contains(n))
}

impl Cloud {
    /// Starts a full customer session (messages 1–6). Draws nonce N1 and
    /// puts message 1 on the wire; the rest happens in event handlers.
    pub(crate) fn begin_customer_session(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
        origin: SessionOrigin,
    ) -> Result<SessionId, CloudError> {
        self.admit_session()?;
        let record = self.controller.vm(vid).ok_or(CloudError::UnknownVm(vid))?;
        if record.state == VmLifecycle::Terminated {
            return Err(CloudError::UnknownVm(vid));
        }
        // Copy the two placement fields instead of cloning the record:
        // the session only needs them, and the borrow must end before
        // the nonce draw below.
        let server = record.server;
        let image = record.image;
        let nonce1 = self.fresh_nonce();
        let request = CustomerRequest {
            vid,
            property,
            nonce1,
        };
        let (sid, session) = self
            .sessions
            .alloc_with(AttestSession::vacant)
            .ok_or_else(lost_session)?;
        session.reset(
            vid,
            server,
            property,
            image,
            SessionGoal::Customer { nonce1 },
            origin,
        );
        request.encode_into(&mut session.wire);
        self.spawn_prepared(sid)
    }

    /// Starts a controller-internal session (messages 2–5), used by the
    /// launch pipeline's attestation stage.
    pub(crate) fn begin_internal_session(
        &mut self,
        vid: Vid,
        server: ServerId,
        property: SecurityProperty,
        expected_image: Image,
    ) -> Result<SessionId, CloudError> {
        self.admit_session()?;
        let nonce2 = self.fresh_nonce();
        let fwd = ControllerForward {
            vid,
            server,
            property,
            nonce2,
        };
        let (sid, session) = self
            .sessions
            .alloc_with(AttestSession::vacant)
            .ok_or_else(lost_session)?;
        session.reset(
            vid,
            server,
            property,
            expected_image,
            SessionGoal::Internal,
            SessionOrigin::Api,
        );
        session.nonce2 = nonce2;
        fwd.encode_into(&mut session.wire);
        self.spawn_prepared(sid)
    }

    /// Arms and launches a session already reset into its arena slot:
    /// stamps the deadline, bumps the spawn stats and puts the first
    /// hop on the wire (retiring the slot again if that fails).
    fn spawn_prepared(&mut self, sid: SessionId) -> Result<SessionId, CloudError> {
        let deadline = self
            .session_deadline_us
            .map(|budget| (budget, self.wall_clock_us.saturating_add(budget)));
        if let Some(session) = self.sessions.get_mut(sid) {
            session.deadline = deadline;
        }
        self.stats.sessions_started += 1;
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.sessions.len() as u64);
        if let Err(e) = self.transmit_attempt(sid, 0) {
            self.sessions.remove(sid);
            self.stats.sessions_failed += 1;
            self.classify_failure(&e);
            return Err(e);
        }
        Ok(sid)
    }

    /// Attributes a session failure to its failure-class counter
    /// (outage fail-fast, deadline expiry); other classes are already
    /// covered by the per-hop counters.
    fn classify_failure(&mut self, e: &CloudError) {
        match e {
            CloudError::NodeDown { .. } => self.outage_stats.node_down_failures += 1,
            CloudError::DeadlineExceeded { .. } => self.stats.deadlines_exceeded += 1,
            _ => {}
        }
    }

    /// Drives the event loop until `sid` reaches a terminal state — the
    /// synchronous facade behind the Table-1 APIs. Outside [`Cloud::run`]
    /// the queue only ever holds this session's events.
    pub(crate) fn pump_session(&mut self, sid: SessionId) -> SessionOutcome {
        loop {
            let parked = match self.sessions.get_mut(sid) {
                None => {
                    return Err(CloudError::ProtocolFailure {
                        reason: "attestation session vanished".into(),
                    })
                }
                Some(s) => s.pending.take(),
            };
            if let Some(outcome) = parked {
                self.sessions.remove(sid);
                return outcome;
            }
            if self.engine.is_empty() {
                self.sessions.remove(sid);
                return Err(CloudError::ProtocolFailure {
                    reason: "event queue stalled mid-session".into(),
                });
            }
            let Some((due, event)) = self.engine.pop() else {
                // Unreachable: emptiness was checked above.
                continue;
            };
            self.advance_to(due);
            self.dispatch_event(event);
        }
    }

    /// Seals and transmits the session's current hop payload once. The
    /// simulator resolves the outcome at send time; exactly one
    /// follow-up event is scheduled — the arrival of a delivered record
    /// or the sender's timeout for a lost/rejected one. `pre_delay_us`
    /// is processing time paid before the record leaves (it shifts every
    /// scheduled instant and is charged to the session's latency).
    fn transmit_attempt(&mut self, sid: SessionId, pre_delay_us: u64) -> Result<(), CloudError> {
        let Cloud {
            sessions,
            network,
            rng,
            stats,
            retry,
            cust_ctrl,
            ctrl_as,
            as_server,
            engine,
            wall_clock_us,
            down,
            record_scratch,
            ..
        } = self;
        let now = *wall_clock_us;
        let session = sessions.get_mut(sid).ok_or_else(lost_session)?;
        // Fail fast when a node this hop depends on is crashed —
        // checked before any RNG draw or transmission, so the session
        // does not burn the retransmission ladder against a black hole.
        if let Some(node) = down_node_for(down, session.stage, session.server) {
            return Err(CloudError::NodeDown { node });
        }
        // Session events shard by target server (routing only — never
        // affects pop order; see `crate::engine`).
        let shard_key = session.server.0 as u64;
        let mut offset = pre_delay_us;
        session.attempt += 1;
        if session.attempt > 1 {
            stats.retries += 1;
            offset += retry.backoff_us(session.attempt - 1, rng);
        }
        session.elapsed_us += offset;
        let generation = session.generation;
        let (send, recv) =
            stage_channels(session.stage, cust_ctrl, ctrl_as, as_server, session.server)?;
        // Seal once per hop: retransmits resend the byte-identical
        // record, so the receiver's anti-replay window deduplicates a
        // late first copy arriving after a retransmit was processed.
        // The sealed record lives in the session's reusable buffer
        // (empty = not sealed yet for this hop).
        if session.attempt == 1 {
            send.seal_into(b"", &session.wire, &mut session.sealed);
        }
        stats.messages_sent += 1;
        let delivery = network.send_at_into(
            recv.peer(),
            send.peer(),
            &session.sealed,
            now + offset,
            record_scratch,
        );
        match delivery.delivered {
            false => {
                // Nothing arrived: the sender learns of the loss only by
                // timing out.
                stats.drops_seen += 1;
                stats.timeouts += 1;
                session.elapsed_us += retry.timeout_us;
                engine.schedule(
                    now + offset + retry.timeout_us,
                    shard_key,
                    CloudEvent::Session {
                        sid,
                        event: SessionEvent::Retry { generation },
                    },
                );
            }
            true if delivery.latency_us > retry.timeout_us && retry.max_attempts > 1 => {
                // Delivered, but past the sender's loss-detection
                // timeout: the sender retransmits first. Park the late
                // record unopened until its arrival instant — by then a
                // retransmit has usually advanced the receive window and
                // it bounces as a duplicate; only if every retransmit
                // was lost too does it save the hop.
                stats.timeouts += 1;
                session.elapsed_us += retry.timeout_us;
                let copies = if delivery.duplicated { 2 } else { 1 };
                for _ in 0..copies {
                    session
                        .late
                        .push((session.stage, generation, record_scratch.clone()));
                    engine.schedule(
                        delivery.deliver_at_us,
                        shard_key,
                        CloudEvent::Session {
                            sid,
                            event: SessionEvent::LateArrival { generation },
                        },
                    );
                }
                engine.schedule(
                    now + offset + retry.timeout_us,
                    shard_key,
                    CloudEvent::Session {
                        sid,
                        event: SessionEvent::Retry { generation },
                    },
                );
            }
            true => match recv.open_into(b"", record_scratch, &mut session.inbox) {
                Ok(()) => {
                    session.inbox_full = true;
                    session.elapsed_us += delivery.latency_us;
                    if delivery.duplicated {
                        // The network delivered a second identical copy;
                        // the receive window must reject it without
                        // desynchronizing the channel. The rejection
                        // happens before the output buffer is touched,
                        // so an empty throwaway Vec never allocates.
                        // #[allow(monatt::alloc_freedom)]
                        match recv.open_into(b"", record_scratch, &mut Vec::new()) {
                            Err(ChannelError::DuplicateRecord) => {
                                stats.duplicates_rejected += 1;
                            }
                            other => return Err(duplicate_not_rejected(recv.peer(), other)),
                        }
                    }
                    engine.schedule(
                        delivery.deliver_at_us,
                        shard_key,
                        CloudEvent::Session {
                            sid,
                            event: SessionEvent::Arrival,
                        },
                    );
                }
                Err(e) => {
                    // Corrupted, tampered or replayed: the record is
                    // rejected, the receiver stays silent, the sender
                    // times out.
                    stats.auth_failures += 1;
                    stats.timeouts += 1;
                    session.elapsed_us += delivery.latency_us + retry.timeout_us;
                    session.last_auth_failure = Some(e);
                    engine.schedule(
                        now + offset + delivery.latency_us + retry.timeout_us,
                        shard_key,
                        CloudEvent::Session {
                            sid,
                            event: SessionEvent::Retry { generation },
                        },
                    );
                }
            },
        }
        stats.max_queue_depth = stats.max_queue_depth.max(engine.max_depth() as u64);
        Ok(())
    }

    /// Steps `sid` for `event`; any error terminates the session with
    /// the same classification the blocking implementation returned.
    pub(crate) fn step_session(&mut self, sid: SessionId, event: SessionEvent) {
        // Stale events — timers or late arrivals outliving a session
        // that already terminated (failed fast on a node crash, or its
        // outcome is parked for an API pump) — are discarded here, so a
        // terminal outcome is recorded exactly once.
        let Some(session) = self.sessions.get(sid) else {
            return;
        };
        if session.pending.is_some() {
            return;
        }
        let result = match event {
            SessionEvent::Arrival => self.step_arrival(sid),
            SessionEvent::Retry { generation } => self.step_retry(sid, generation),
            SessionEvent::LateArrival { generation } => self.step_late_arrival(sid, generation),
            SessionEvent::WindowOpen => self.step_window_open(sid),
            SessionEvent::WindowClose => self.step_window_close(sid),
            SessionEvent::Complete => self.step_complete(sid),
        };
        if let Err(e) = result {
            self.finish_session(sid, Err(e));
        }
    }

    /// Terminates the session if its end-to-end deadline has passed.
    /// Sessions without a deadline (the default) never check.
    fn check_deadline(&mut self, sid: SessionId) -> Result<(), CloudError> {
        let now = self.wall_clock_us;
        let session = self.sessions.get(sid).ok_or_else(lost_session)?;
        if let Some((budget_us, expires_at)) = session.deadline {
            if now > expires_at {
                return Err(CloudError::DeadlineExceeded {
                    budget_us,
                    elapsed_us: session.elapsed_us,
                });
            }
        }
        Ok(())
    }

    fn step_arrival(&mut self, sid: SessionId) -> Result<(), CloudError> {
        self.check_deadline(sid)?;
        let stage = {
            let Cloud {
                sessions,
                inbox_scratch,
                ..
            } = &mut *self;
            let session = sessions.get_mut(sid).ok_or_else(lost_session)?;
            if !session.inbox_full {
                return Err(CloudError::ProtocolFailure {
                    reason: "arrival event without a delivered record".into(),
                });
            }
            session.inbox_full = false;
            // Ping-pong the delivered plaintext into the cloud-level
            // scratch: the session's inbox must keep a capacity-bearing
            // buffer during dispatch, because the next hop's open lands
            // in it before this function returns.
            std::mem::swap(&mut session.inbox, inbox_scratch);
            // The hop completed; the next one starts a fresh attempt
            // budget, a fresh sealed record, and a new generation (any
            // still-pending Retry timer of this hop is now stale).
            session.attempt = 0;
            session.last_auth_failure = None;
            session.sealed.clear();
            session.retry_deferred = false;
            session.generation = session.generation.wrapping_add(1);
            session.stage
        };
        // Moving a Vec out of `self` for the dispatch neither allocates
        // nor frees; it is put back afterwards so both ping-pong
        // buffers keep their capacity.
        let bytes = std::mem::take(&mut self.inbox_scratch);
        let result = match stage {
            Stage::Msg1 => self.on_msg1(sid, &bytes),
            Stage::Msg2 => self.on_msg2(sid, &bytes),
            Stage::Msg3 => self.on_msg3(sid, &bytes),
            Stage::Msg4 => self.on_msg4(sid, &bytes),
            Stage::Msg5 => self.on_msg5(sid, &bytes),
            Stage::Msg6 => self.on_msg6(sid, &bytes),
        };
        self.inbox_scratch = bytes;
        result
    }

    /// The controller receives the customer request: draw N2, forward.
    fn on_msg1(&mut self, sid: SessionId, bytes: &[u8]) -> Result<(), CloudError> {
        let request = CustomerRequest::from_wire(bytes).map_err(|e| malformed("request", e))?;
        let nonce2 = self.fresh_nonce();
        let charge = self.latency.post_hop_us(1);
        let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
        session.nonce2 = nonce2;
        let fwd = ControllerForward {
            vid: request.vid,
            server: session.server,
            property: request.property,
            nonce2,
        };
        session.stage = Stage::Msg2;
        fwd.encode_into(&mut session.wire);
        self.transmit_attempt(sid, charge)
    }

    /// The attestation server receives the forward: draw N3, map the
    /// property to a measurement request.
    fn on_msg2(&mut self, sid: SessionId, bytes: &[u8]) -> Result<(), CloudError> {
        let fwd = ControllerForward::from_wire(bytes).map_err(|e| malformed("forward", e))?;
        let nonce3 = self.fresh_nonce();
        let measure_req = self
            .attserver
            .build_measure_request(fwd.vid, fwd.property, nonce3);
        let charge = self.latency.post_hop_us(2);
        let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
        session.nonce3 = nonce3;
        session.spec = Some(measure_req.spec);
        session.stage = Stage::Msg3;
        measure_req.encode_into(&mut session.wire);
        self.transmit_attempt(sid, charge)
    }

    /// The cloud server receives the measurement request: after the
    /// processing charge, try to open the measurement window.
    fn on_msg3(&mut self, sid: SessionId, bytes: &[u8]) -> Result<(), CloudError> {
        let req = MeasureRequest::from_wire(bytes).map_err(|e| malformed("measure request", e))?;
        let charge = self.latency.post_hop_us(3);
        let due = self.wall_clock_us + charge;
        let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
        session.measure = Some(req);
        session.elapsed_us += charge;
        self.schedule_session_event(due, sid, SessionEvent::WindowOpen);
        Ok(())
    }

    /// Opens the server's measurement window, or queues behind the
    /// session currently holding it (a server's profiling window is
    /// server-global state, so windowed sessions serialize per server;
    /// the wait is charged as queueing latency).
    fn step_window_open(&mut self, sid: SessionId) -> Result<(), CloudError> {
        self.check_deadline(sid)?;
        let now = self.wall_clock_us;
        let (server, req_vid, spec) = {
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            let req = session.measure.as_ref().ok_or_else(lost_session)?;
            (session.server, req.vid, req.spec)
        };
        let window = spec.window_us();
        if window == 0 {
            return self.step_window_close(sid);
        }
        let free_at = self.window_free_at.get(&server).copied().unwrap_or(0);
        if free_at > now {
            if let Some(session) = self.sessions.get_mut(sid) {
                session.elapsed_us += free_at - now;
            }
            self.schedule_session_event(free_at, sid, SessionEvent::WindowOpen);
            return Ok(());
        }
        let node = self
            .touch_server(server)
            .ok_or(CloudError::UnknownServer(server))?;
        node.begin_window(spec, req_vid);
        self.window_free_at.insert(server, now + window);
        if let Some(session) = self.sessions.get_mut(sid) {
            session.elapsed_us += window;
        }
        self.schedule_session_event(now + window, sid, SessionEvent::WindowClose);
        Ok(())
    }

    /// The window elapsed: collect measurements, generate the quote and
    /// put the measurement response on the wire. Hashing/quoting cost is
    /// a pre-delay on the response transmission.
    fn step_window_close(&mut self, sid: SessionId) -> Result<(), CloudError> {
        self.check_deadline(sid)?;
        let (server, vid, expected_image, req) = {
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            let req = session.measure.ok_or_else(lost_session)?;
            (session.server, session.vid, session.expected_image, req)
        };
        let hashed = if matches!(req.spec, MeasurementSpec::BootIntegrity) {
            Some(expected_image.size_mb())
        } else {
            None
        };
        let charge = self.latency.measurement_us(hashed);
        let response = self
            .touch_server(server)
            .ok_or(CloudError::UnknownServer(server))?
            .attest(req.vid, req.spec, req.nonce3)
            .ok_or(CloudError::UnknownVm(vid))?;
        let msg4 = MeasureResponse {
            vid: response.vid,
            spec: response.spec,
            measurement: response.measurement,
            nonce3: response.nonce,
            quote: response.quote,
            cert_request: response.cert_request,
        };
        let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
        session.stage = Stage::Msg4;
        msg4.encode_into(&mut session.wire);
        self.transmit_attempt(sid, charge)
    }

    /// The attestation server receives the measurement response. With
    /// coalescing disabled (`as_batch_window_us == 0`, the default) it is
    /// validated inline on arrival — the pre-batching path, charge for
    /// charge. With coalescing enabled the response parks in
    /// [`Cloud::pending_msg4`]; the batch flushes when it reaches
    /// `as_batch_max` responses (inline, so a size-1 batch is
    /// byte-identical to the inline path) or when the window timer fires.
    fn on_msg4(&mut self, sid: SessionId, bytes: &[u8]) -> Result<(), CloudError> {
        let msg4 =
            MeasureResponse::from_wire(bytes).map_err(|e| malformed("measure response", e))?;
        if self.as_batch_window_us == 0 {
            return self.on_msg4_inline(sid, msg4);
        }
        let now = self.wall_clock_us;
        self.pending_msg4.push(PendingMsg4 {
            sid,
            msg4,
            arrived_at_us: now,
        });
        if self.pending_msg4.len() >= self.as_batch_max.max(1) {
            self.flush_msg4_batch();
            return Ok(());
        }
        if self.pending_msg4.len() == 1 {
            // First response of a new batch: arm the window timer. A
            // size-triggered flush may empty the buffer before it fires;
            // the stale timer then flushes whatever the next batch holds
            // early, which only shortens waits — never loses a session.
            self.schedule_cloud_event(now + self.as_batch_window_us, CloudEvent::Msg4Flush);
        }
        Ok(())
    }

    /// The inline (unbatched) msg-4 path: validate, interpret, certify
    /// the property report, transmit message 5.
    fn on_msg4_inline(&mut self, sid: SessionId, msg4: MeasureResponse) -> Result<(), CloudError> {
        let (vid, server, property, expected_image, spec, nonce2, nonce3) = {
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            let spec = session.spec.ok_or_else(lost_session)?;
            (
                session.vid,
                session.server,
                session.property,
                session.expected_image,
                spec,
                session.nonce2,
                session.nonce3,
            )
        };
        self.attserver
            .validate_response_with(&msg4, vid, spec, nonce3, &mut self.quote_scratch)?;
        let status = self
            .attserver
            .interpret_response(property, &msg4, expected_image);
        if let Some(ttl) = self.evidence_ttl_us {
            self.attserver.evidence_insert(
                vid,
                property,
                server,
                status.clone(),
                self.wall_clock_us + ttl,
            );
        }
        let report_msg = self.attserver.certify_report_with(
            vid,
            server,
            property,
            status,
            nonce2,
            &mut self.quote_scratch,
        );
        let charge = self.latency.post_hop_us(4);
        let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
        session.stage = Stage::Msg5;
        report_msg.encode_into(&mut session.wire);
        self.transmit_attempt(sid, charge)
    }

    /// Validates every parked measurement response in one batched
    /// verification pass ([`AttestationServer::validate_response_batch`])
    /// and advances the surviving sessions to message 5.
    ///
    /// Latency model: each session is charged its coalescing wait
    /// (`flush_time - arrival`) plus the usual post-hop-4 processing, so
    /// a disabled window or a size-1 batch charges exactly what the
    /// inline path does. Sessions that died while parked (node crash,
    /// deadline expiry) are skipped; a verdict failure terminates its
    /// session with the identical error the inline path would produce,
    /// without touching its batch-mates.
    pub(crate) fn flush_msg4_batch(&mut self) {
        if self.pending_msg4.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.pending_msg4);
        let now = self.wall_clock_us;
        self.stats.msg4_flushes += 1;
        self.stats.msg4_batched += pending.len() as u64;
        // Re-read each parked entry's expectations from its session;
        // `None` marks an entry whose session is gone or terminal. The
        // buffer lives on `self` so its capacity survives across
        // flushes (taken locally to release the `&mut self` borrow).
        let mut meta = std::mem::take(&mut self.batch_meta);
        meta.clear();
        meta.extend(pending.iter().map(|p| match self.sessions.get(p.sid) {
            Some(s) if s.pending.is_none() => s.spec.map(|spec| {
                (
                    s.vid,
                    s.server,
                    s.property,
                    s.expected_image,
                    spec,
                    s.nonce2,
                    s.nonce3,
                )
            }),
            _ => None,
        }));
        // The item list borrows each parked response, so it cannot
        // outlive this frame as a persistent scratch: one batch-sized
        // allocation per window flush, amortized across every Msg4 in
        // the batch. The zero-alloc harness pins the non-batched warm
        // configuration to exactly zero.
        let items: Vec<crate::attestation::BatchValidationItem<'_>> = pending
            .iter()
            .zip(meta.iter())
            .filter_map(|(p, m)| {
                m.map(
                    |(vid, _, _, _, spec, _, nonce3)| crate::attestation::BatchValidationItem {
                        response: &p.msg4,
                        expected_vid: vid,
                        expected_spec: spec,
                        expected_nonce3: nonce3,
                    },
                )
            })
            .collect(); // #[allow(monatt::alloc_freedom)] lifetime-bound, amortized per batch
        let verdicts = self
            .attserver
            // Batch validation assembles lifetime-bound signature slices
            // internally; its allocations are likewise per flush, not
            // per message. #[allow(monatt::alloc_freedom)]
            .validate_response_batch(&items, &mut self.quote_scratch);
        let mut verdicts = verdicts.into_iter();
        for (p, m) in pending.iter().zip(meta.iter()) {
            let Some((vid, server, property, expected_image, _, nonce2, _)) = *m else {
                continue;
            };
            let Some(verdict) = verdicts.next() else {
                break;
            };
            if let Err(e) = verdict {
                self.finish_session(p.sid, Err(e));
                continue;
            }
            let status = self
                .attserver
                .interpret_response(property, &p.msg4, expected_image);
            if let Some(ttl) = self.evidence_ttl_us {
                self.attserver
                    .evidence_insert(vid, property, server, status.clone(), now + ttl);
            }
            let report_msg = self.attserver.certify_report_with(
                vid,
                server,
                property,
                status,
                nonce2,
                &mut self.quote_scratch,
            );
            let charge = (now - p.arrived_at_us) + self.latency.post_hop_us(4);
            let Some(session) = self.sessions.get_mut(p.sid) else {
                continue;
            };
            session.stage = Stage::Msg5;
            report_msg.encode_into(&mut session.wire);
            if let Err(e) = self.transmit_attempt(p.sid, charge) {
                self.finish_session(p.sid, Err(e));
            }
        }
        // Hand the drained buffer's capacity back for the next batch
        // (nothing parks while a flush is running: parking only happens
        // on a msg-4 arrival event).
        if self.pending_msg4.is_empty() {
            pending.clear();
            self.pending_msg4 = pending;
        }
        self.batch_meta = meta;
    }

    /// The controller receives the property report: verify it, then
    /// either complete (internal session) or certify the customer
    /// report.
    fn on_msg5(&mut self, sid: SessionId, bytes: &[u8]) -> Result<(), CloudError> {
        let report_msg =
            AttestationReportMsg::from_wire(bytes).map_err(|e| malformed("report", e))?;
        let (vid, property, nonce2, goal) = {
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            (session.vid, session.property, session.nonce2, session.goal)
        };
        AttestationServer::verify_report_msg_with(
            &report_msg,
            &self.attserver.identity_key(),
            nonce2,
            &mut self.quote_scratch,
        )?;
        let charge = self.latency.post_hop_us(5);
        match goal {
            SessionGoal::Internal => {
                let due = self.wall_clock_us + charge;
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                session.verdict = Some(report_msg.status);
                session.elapsed_us += charge;
                self.schedule_session_event(due, sid, SessionEvent::Complete);
                Ok(())
            }
            SessionGoal::Customer { nonce1 } => {
                let customer_report = self.controller.certify_customer_report_with(
                    vid,
                    property,
                    report_msg.status,
                    nonce1,
                    &mut self.quote_scratch,
                );
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                session.stage = Stage::Msg6;
                customer_report.encode_into(&mut session.wire);
                self.transmit_attempt(sid, charge)
            }
        }
    }

    /// The customer receives the final report: verify quote Q1 and the
    /// nonce echo, then complete after the verification charge.
    fn on_msg6(&mut self, sid: SessionId, bytes: &[u8]) -> Result<(), CloudError> {
        let report_msg =
            CustomerReportMsg::from_wire(bytes).map_err(|e| malformed("customer report", e))?;
        let nonce1 = {
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            match session.goal {
                SessionGoal::Customer { nonce1 } => nonce1,
                SessionGoal::Internal => return Err(lost_session()),
            }
        };
        CloudController::verify_customer_report_with(
            &report_msg,
            &self.controller.identity_key(),
            nonce1,
            &mut self.quote_scratch,
        )?;
        let charge = self.latency.post_hop_us(6);
        let due = self.wall_clock_us + charge;
        let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
        session.verdict = Some(report_msg.status);
        session.elapsed_us += charge;
        self.schedule_session_event(due, sid, SessionEvent::Complete);
        Ok(())
    }

    fn step_complete(&mut self, sid: SessionId) -> Result<(), CloudError> {
        let (status, elapsed_us) = {
            let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
            let status = session
                .verdict
                .take()
                .ok_or_else(|| CloudError::ProtocolFailure {
                    reason: "session completed without a verdict".into(),
                })?;
            (status, session.elapsed_us)
        };
        self.finish_session(sid, Ok(SessionYield { status, elapsed_us }));
        Ok(())
    }

    /// A loss-detection timeout fired: retry within budget, otherwise
    /// fail with the blocking implementation's exact classification.
    fn step_retry(&mut self, sid: SessionId, generation: u32) -> Result<(), CloudError> {
        let max_attempts = self.retry.max_attempts.max(1);
        let exhausted = {
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            if session.generation != generation {
                // The hop this timer belonged to already completed (a
                // late arrival saved it): nothing to retransmit.
                return Ok(());
            }
            // Deadline lookahead: when the remaining budget cannot
            // cover even the next loss-detection timeout, abort now
            // instead of burning the rest of the retry ladder.
            if let Some((budget_us, expires_at)) = session.deadline {
                if self.wall_clock_us.saturating_add(self.retry.timeout_us) > expires_at {
                    return Err(CloudError::DeadlineExceeded {
                        budget_us,
                        elapsed_us: session.elapsed_us,
                    });
                }
            }
            session.attempt >= max_attempts
        };
        if !exhausted {
            return self.transmit_attempt(sid, 0);
        }
        // Budget exhausted — but copies delayed past the timeout may
        // still be in flight for this hop, and one of them opening
        // cleanly saves it. Defer the verdict to the last of them.
        if let Some(session) = self.sessions.get_mut(sid) {
            if session.late.iter().any(|(_, g, _)| *g == generation) {
                session.retry_deferred = true;
                return Ok(());
            }
        }
        self.exhaustion_error(sid, max_attempts)
    }

    /// The classification an out-of-budget hop fails with: "every
    /// delivery failed authentication" (evidence of tampering — a
    /// protocol failure) is distinguished from "nothing ever arrived"
    /// (the peer is unreachable). Reached only when a hop's whole retry
    /// budget burns down — never on the clean warm path.
    #[cold]
    fn exhaustion_error(&mut self, sid: SessionId, max_attempts: u32) -> Result<(), CloudError> {
        let Cloud {
            sessions,
            cust_ctrl,
            ctrl_as,
            as_server,
            ..
        } = self;
        let session = sessions.get(sid).ok_or_else(lost_session)?;
        let (send, recv) =
            stage_channels(session.stage, cust_ctrl, ctrl_as, as_server, session.server)?;
        Err(match &session.last_auth_failure {
            Some(e) => CloudError::ProtocolFailure {
                reason: format!(
                    "secure channel {}->{}: {e} ({max_attempts} attempts)",
                    recv.peer(),
                    send.peer()
                ),
            },
            None => CloudError::Unreachable {
                peer: send.peer().to_owned(),
                attempts: max_attempts,
            },
        })
    }

    /// A record delayed past the loss-detection timeout reaches its
    /// receiver. By now the sender has retransmitted the byte-identical
    /// record, so the usual outcome is a bounce off the receive window
    /// ([`ChannelError::DuplicateRecord`]) — counted, never processed.
    /// Only when every retransmit was lost too does the late copy open
    /// cleanly and save the hop.
    fn step_late_arrival(&mut self, sid: SessionId, generation: u32) -> Result<(), CloudError> {
        let advanced = {
            let Cloud {
                sessions,
                stats,
                cust_ctrl,
                ctrl_as,
                as_server,
                ..
            } = self;
            let session = sessions.get_mut(sid).ok_or_else(lost_session)?;
            let Some(pos) = session.late.iter().position(|(_, g, _)| *g == generation) else {
                // Already consumed (defensive; one event is scheduled
                // per parked copy).
                return Ok(());
            };
            let (stage, _, record) = session.late.remove(pos);
            let (_, recv) = stage_channels(stage, cust_ctrl, ctrl_as, as_server, session.server)?;
            match recv.open(b"", &record) {
                Err(ChannelError::DuplicateRecord) => {
                    // A retransmit already carried this sequence number
                    // through: the late copy is structurally a
                    // duplicate.
                    stats.duplicates_rejected += 1;
                    false
                }
                Err(_) => {
                    // Keys rotated underneath it (crash/recovery) or
                    // the record is otherwise unverifiable: the
                    // receiver drops it silently, exactly like any
                    // unauthenticated junk.
                    false
                }
                Ok(plaintext) => {
                    if session.generation == generation && session.stage == stage {
                        // Every retransmit was lost: the late copy is
                        // the first authenticated delivery of this hop.
                        // Its waiting time was already charged as
                        // timeouts.
                        session.inbox.clear();
                        session.inbox.extend_from_slice(&plaintext);
                        session.inbox_full = true;
                        true
                    } else {
                        // The hop moved on without this sequence number
                        // ever opening (possible only across a
                        // re-handshake); stray plaintext for a finished
                        // hop is discarded.
                        false
                    }
                }
            }
        };
        if advanced {
            return self.step_arrival(sid);
        }
        // The copy did not advance the hop. When the retry ladder
        // already gave up waiting for the stragglers (`retry_deferred`)
        // and this was the last one in flight, the hop is out of
        // chances.
        let out_of_chances = {
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            session.retry_deferred
                && session.generation == generation
                && !session.late.iter().any(|(_, g, _)| *g == generation)
        };
        if out_of_chances {
            return self.exhaustion_error(sid, self.retry.max_attempts.max(1));
        }
        Ok(())
    }

    /// Fails an in-flight session fast because a node its current hop
    /// depends on crashed (called from the crash handler).
    pub(crate) fn finish_session_node_down(&mut self, sid: SessionId, node: NodeId) {
        self.finish_session(sid, Err(CloudError::NodeDown { node }));
    }

    /// Terminates `sid` and routes the outcome to its consumer: parked
    /// for an API pump, or recorded on the owning subscription.
    fn finish_session(&mut self, sid: SessionId, outcome: SessionOutcome) {
        // Guard first: a session that already terminated must not be
        // double-counted by a straggler event.
        if !self.sessions.contains(sid) {
            return;
        }
        match &outcome {
            Ok(_) => self.stats.sessions_completed += 1,
            Err(e) => {
                self.stats.sessions_failed += 1;
                self.classify_failure(e);
            }
        }
        let Some(session) = self.sessions.get_mut(sid) else {
            return;
        };
        match session.origin {
            SessionOrigin::Api => session.pending = Some(outcome),
            SessionOrigin::Subscription(subscription) => {
                let (vid, property) = (session.vid, session.property);
                self.sessions.remove(sid);
                let result = outcome.map(|y| AttestationReport {
                    vid,
                    property,
                    status: y.status,
                    elapsed_us: y.elapsed_us,
                    issued_at_us: self.wall_clock_us,
                });
                self.complete_subscription_sample(subscription, vid, property, result);
            }
        }
    }
}
