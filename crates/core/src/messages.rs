//! The attestation protocol messages of Figure 3, with canonical wire
//! encodings. Each message travels inside a [`monatt_net::SecureChannel`]
//! record (the session keys Kx, Ky, Kz).
//!
//! Each message kind carries a *wire-fixed* freshness/quote obligation
//! the receive path always enforces: message 4 echoes N3 under quote
//! Q3, message 5 echoes N2 under Q2, message 6 echoes N1 under Q1.
//! The protocol IR treats these as validated claims, not code — a
//! [`crate::protocol::Protocol`] term may spell them out
//! (`CheckNonce`/`VerifyQuote`) or elide them, but the compiler
//! rejects a term that declares the wrong obligation for a hop
//! (see `crate::protocol::compile`).

use crate::controlplane::RouteTag;
use crate::measurements::{Measurement, MeasurementSpec};
use crate::types::{HealthStatus, SecurityProperty, ServerId, Vid};
use monatt_crypto::schnorr::{Signature, VerifyingKey};
use monatt_net::wire::{Reader, Wire, WireError, Writer};
use monatt_tpm::module::CertificationRequest;
use monatt_tpm::quote::Quote;

impl Wire for SecurityProperty {
    fn encode(&self, w: &mut Writer) {
        match self {
            SecurityProperty::StartupIntegrity => w.put_u8(0),
            SecurityProperty::RuntimeIntegrity => w.put_u8(1),
            SecurityProperty::CovertChannelFreedom => w.put_u8(2),
            SecurityProperty::CpuAvailability { min_share_pct } => {
                w.put_u8(3);
                w.put_u8(*min_share_pct);
            }
            SecurityProperty::SchedulerFairness => w.put_u8(4),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(SecurityProperty::StartupIntegrity),
            1 => Ok(SecurityProperty::RuntimeIntegrity),
            2 => Ok(SecurityProperty::CovertChannelFreedom),
            3 => Ok(SecurityProperty::CpuAvailability {
                min_share_pct: r.get_u8()?,
            }),
            4 => Ok(SecurityProperty::SchedulerFairness),
            d => Err(WireError::InvalidDiscriminant(d)),
        }
    }
}

impl Wire for HealthStatus {
    fn encode(&self, w: &mut Writer) {
        match self {
            HealthStatus::Healthy => w.put_u8(0),
            HealthStatus::Compromised { reason } => {
                w.put_u8(1);
                w.put_str(reason);
            }
            HealthStatus::Unreachable { missed } => {
                w.put_u8(2);
                w.put_u32(*missed);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(HealthStatus::Healthy),
            1 => Ok(HealthStatus::Compromised {
                reason: r.get_str()?,
            }),
            2 => Ok(HealthStatus::Unreachable {
                missed: r.get_u32()?,
            }),
            d => Err(WireError::InvalidDiscriminant(d)),
        }
    }
}

/// Encodes a quote (digest + signature). Free functions because `Quote`
/// and `Wire` both live in other crates (orphan rule).
fn put_quote(w: &mut Writer, quote: &Quote) {
    w.put_fixed(&quote.digest);
    w.put_fixed(&quote.signature.to_bytes());
}

fn get_quote(r: &mut Reader<'_>) -> Result<Quote, WireError> {
    Ok(Quote {
        digest: r.get_fixed()?,
        signature: Signature::from_bytes(&r.get_fixed()?),
    })
}

fn put_cert_request(w: &mut Writer, req: &CertificationRequest) {
    w.put_fixed(&req.attestation_key.to_bytes());
    w.put_fixed(&req.identity_signature.to_bytes());
    w.put_fixed(&req.identity_key.to_bytes());
}

fn get_cert_request(r: &mut Reader<'_>) -> Result<CertificationRequest, WireError> {
    let avk: [u8; 32] = r.get_fixed()?;
    let sig: [u8; 64] = r.get_fixed()?;
    let idk: [u8; 32] = r.get_fixed()?;
    Ok(CertificationRequest {
        attestation_key: VerifyingKey::from_bytes(&avk)
            .map_err(|_| WireError::InvalidDiscriminant(0))?,
        identity_signature: Signature::from_bytes(&sig),
        identity_key: VerifyingKey::from_bytes(&idk)
            .map_err(|_| WireError::InvalidDiscriminant(0))?,
    })
}

/// Message 1 (C → CC): the customer's attestation request
/// `(Vid, P, N1)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CustomerRequest {
    /// The VM to attest.
    pub vid: Vid,
    /// The property to check.
    pub property: SecurityProperty,
    /// Freshness nonce N1.
    pub nonce1: [u8; 32],
}

impl Wire for CustomerRequest {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.vid.0);
        self.property.encode(w);
        w.put_fixed(&self.nonce1);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CustomerRequest {
            vid: Vid(r.get_u64()?),
            property: SecurityProperty::decode(r)?,
            nonce1: r.get_fixed()?,
        })
    }
}

/// Message 2 (CC → AS): the forwarded request `(Vid, I, P, N2)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControllerForward {
    /// The VM to attest.
    pub vid: Vid,
    /// The server hosting it.
    pub server: ServerId,
    /// The property.
    pub property: SecurityProperty,
    /// Freshness nonce N2.
    pub nonce2: [u8; 32],
}

impl Wire for ControllerForward {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.vid.0);
        w.put_u32(self.server.0);
        self.property.encode(w);
        w.put_fixed(&self.nonce2);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ControllerForward {
            vid: Vid(r.get_u64()?),
            server: ServerId(r.get_u32()?),
            property: SecurityProperty::decode(r)?,
            nonce2: r.get_fixed()?,
        })
    }
}

/// Message 3 (AS → CS): the measurement request `(Vid, rM, N3)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeasureRequest {
    /// The VM to measure.
    pub vid: Vid,
    /// What to measure (`rM`).
    pub spec: MeasurementSpec,
    /// Freshness nonce N3.
    pub nonce3: [u8; 32],
}

impl Wire for MeasureRequest {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.vid.0);
        self.spec.encode(w);
        w.put_fixed(&self.nonce3);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MeasureRequest {
            vid: Vid(r.get_u64()?),
            spec: MeasurementSpec::decode(r)?,
            nonce3: r.get_fixed()?,
        })
    }
}

/// Message 4 (CS → AS): `[Vid, rM, M, N3, Q3]ASKs` plus the certification
/// request for AVKs.
#[derive(Clone, Debug)]
pub struct MeasureResponse {
    /// The VM measured.
    pub vid: Vid,
    /// Echo of the spec.
    pub spec: MeasurementSpec,
    /// The measurements.
    pub measurement: Measurement,
    /// Echo of N3.
    pub nonce3: [u8; 32],
    /// Quote `Q3` and its ASKs signature.
    pub quote: Quote,
    /// AVKs certification request for the privacy CA.
    pub cert_request: CertificationRequest,
}

impl Wire for MeasureResponse {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.vid.0);
        self.spec.encode(w);
        self.measurement.encode(w);
        w.put_fixed(&self.nonce3);
        put_quote(w, &self.quote);
        put_cert_request(w, &self.cert_request);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MeasureResponse {
            vid: Vid(r.get_u64()?),
            spec: MeasurementSpec::decode(r)?,
            measurement: Measurement::decode(r)?,
            nonce3: r.get_fixed()?,
            quote: get_quote(r)?,
            cert_request: get_cert_request(r)?,
        })
    }
}

/// Message 5 (AS → CC): `[Vid, I, P, R, N2, Q2]SKa`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttestationReportMsg {
    /// The VM attested.
    pub vid: Vid,
    /// The server that supplied measurements.
    pub server: ServerId,
    /// The property checked.
    pub property: SecurityProperty,
    /// The interpretation verdict (`R`).
    pub status: HealthStatus,
    /// Echo of N2.
    pub nonce2: [u8; 32],
    /// Quote `Q2 = H(Vid || I || P || R || N2)` signed with SKa.
    pub quote: Quote,
}

impl Wire for AttestationReportMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.vid.0);
        w.put_u32(self.server.0);
        self.property.encode(w);
        self.status.encode(w);
        w.put_fixed(&self.nonce2);
        put_quote(w, &self.quote);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AttestationReportMsg {
            vid: Vid(r.get_u64()?),
            server: ServerId(r.get_u32()?),
            property: SecurityProperty::decode(r)?,
            status: HealthStatus::decode(r)?,
            nonce2: r.get_fixed()?,
            quote: get_quote(r)?,
        })
    }
}

/// Message 6 (CC → C): `[Vid, P, R, N1, Q1]SKc`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CustomerReportMsg {
    /// The VM attested.
    pub vid: Vid,
    /// The property checked.
    pub property: SecurityProperty,
    /// The verdict.
    pub status: HealthStatus,
    /// Echo of N1.
    pub nonce1: [u8; 32],
    /// Quote `Q1 = H(Vid || P || R || N1)` signed with SKc.
    pub quote: Quote,
}

impl Wire for CustomerReportMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.vid.0);
        self.property.encode(w);
        self.status.encode(w);
        w.put_fixed(&self.nonce1);
        put_quote(w, &self.quote);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CustomerReportMsg {
            vid: Vid(r.get_u64()?),
            property: SecurityProperty::decode(r)?,
            status: HealthStatus::decode(r)?,
            nonce1: r.get_fixed()?,
            quote: get_quote(r)?,
        })
    }
}

/// Byte length of an encoded [`RouteTag`] trailer (three `u32`s).
pub const ROUTE_TAG_LEN: usize = 12;

/// Routing metadata for a replicated control plane: which shard,
/// controller instance and AS replica a record was admitted against.
/// Appended as a fixed-size *trailer* after the message encoding —
/// and only when the topology is non-dormant, so the default K=1/N=1
/// wire format (and therefore the payload-length-driven latency model)
/// is byte-identical to the unreplicated cloud.
impl Wire for RouteTag {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.shard);
        w.put_u32(self.controller);
        w.put_u32(self.replica);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RouteTag {
            shard: r.get_u32()?,
            controller: r.get_u32()?,
            replica: r.get_u32()?,
        })
    }
}

/// Appends the fixed-size routing trailer to an encoded message.
pub fn append_route_tag(wire: &mut Vec<u8>, tag: RouteTag) {
    wire.extend_from_slice(&tag.to_wire());
}

/// Splits the routing trailer off a received payload, returning the
/// message body and the decoded tag. `None` if the payload is too
/// short or the trailer does not parse — a misrouted or mangled
/// record, never served.
pub fn split_route_tag(payload: &[u8]) -> Option<(&[u8], RouteTag)> {
    let body_len = payload.len().checked_sub(ROUTE_TAG_LEN)?;
    let (body, trailer) = payload.split_at(body_len);
    let tag = RouteTag::from_wire(trailer).ok()?;
    Some((body, tag))
}

/// The fields covered by quote Q1, in protocol order.
pub fn q1_fields<'a>(
    vid_bytes: &'a [u8],
    property_bytes: &'a [u8],
    status_bytes: &'a [u8],
    nonce1: &'a [u8],
) -> [&'a [u8]; 4] {
    [vid_bytes, property_bytes, status_bytes, nonce1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurements::TaskInfo;

    #[test]
    fn property_roundtrip() {
        for p in [
            SecurityProperty::StartupIntegrity,
            SecurityProperty::RuntimeIntegrity,
            SecurityProperty::CovertChannelFreedom,
            SecurityProperty::CpuAvailability { min_share_pct: 42 },
        ] {
            assert_eq!(SecurityProperty::from_wire(&p.to_wire()).unwrap(), p);
        }
    }

    #[test]
    fn status_roundtrip() {
        for s in [
            HealthStatus::Healthy,
            HealthStatus::Compromised {
                reason: "bad".into(),
            },
            HealthStatus::Unreachable { missed: 3 },
        ] {
            assert_eq!(HealthStatus::from_wire(&s.to_wire()).unwrap(), s);
        }
    }

    #[test]
    fn request_messages_roundtrip() {
        let m1 = CustomerRequest {
            vid: Vid(7),
            property: SecurityProperty::RuntimeIntegrity,
            nonce1: [1; 32],
        };
        assert_eq!(CustomerRequest::from_wire(&m1.to_wire()).unwrap(), m1);
        let m2 = ControllerForward {
            vid: Vid(7),
            server: ServerId(2),
            property: SecurityProperty::CovertChannelFreedom,
            nonce2: [2; 32],
        };
        assert_eq!(ControllerForward::from_wire(&m2.to_wire()).unwrap(), m2);
        let m3 = MeasureRequest {
            vid: Vid(7),
            spec: MeasurementSpec::CpuTime { window_us: 100 },
            nonce3: [3; 32],
        };
        assert_eq!(MeasureRequest::from_wire(&m3.to_wire()).unwrap(), m3);
    }

    #[test]
    fn response_messages_roundtrip() {
        use monatt_crypto::drbg::Drbg;
        use monatt_tpm::module::TrustModule;
        let mut tm = TrustModule::provision(Drbg::from_seed(9));
        let session = tm.begin_attestation();
        let quote = session.quote(&[b"fields"]);
        let m4 = MeasureResponse {
            vid: Vid(1),
            spec: MeasurementSpec::TaskListProbe,
            measurement: Measurement::TaskLists {
                kernel: vec![TaskInfo {
                    pid: 1,
                    name: "init".into(),
                }],
                guest_visible: vec![],
            },
            nonce3: [5; 32],
            quote: quote.clone(),
            cert_request: session.certification_request().clone(),
        };
        let decoded = MeasureResponse::from_wire(&m4.to_wire()).unwrap();
        assert_eq!(decoded.vid, m4.vid);
        assert_eq!(decoded.measurement, m4.measurement);
        assert_eq!(decoded.quote, m4.quote);
        assert!(decoded.cert_request.verify());
        let m5 = AttestationReportMsg {
            vid: Vid(1),
            server: ServerId(0),
            property: SecurityProperty::StartupIntegrity,
            status: HealthStatus::Healthy,
            nonce2: [6; 32],
            quote: quote.clone(),
        };
        assert_eq!(AttestationReportMsg::from_wire(&m5.to_wire()).unwrap(), m5);
        let m6 = CustomerReportMsg {
            vid: Vid(1),
            property: SecurityProperty::StartupIntegrity,
            status: HealthStatus::Compromised {
                reason: "tampered".into(),
            },
            nonce1: [7; 32],
            quote,
        };
        assert_eq!(CustomerReportMsg::from_wire(&m6.to_wire()).unwrap(), m6);
    }

    #[test]
    fn route_tag_roundtrips_as_a_trailer() {
        let m1 = CustomerRequest {
            vid: Vid(9),
            property: SecurityProperty::RuntimeIntegrity,
            nonce1: [4; 32],
        };
        let tag = RouteTag {
            shard: 3,
            controller: 5,
            replica: 2,
        };
        let mut wire = m1.to_wire();
        let bare_len = wire.len();
        append_route_tag(&mut wire, tag);
        assert_eq!(wire.len(), bare_len + ROUTE_TAG_LEN);
        let (body, decoded) = split_route_tag(&wire).unwrap();
        assert_eq!(decoded, tag);
        assert_eq!(CustomerRequest::from_wire(body).unwrap(), m1);
        // Too-short payloads are rejected, not sliced out of bounds.
        assert!(split_route_tag(&wire[..ROUTE_TAG_LEN - 1]).is_none());
    }

    #[test]
    fn truncated_messages_rejected() {
        let m1 = CustomerRequest {
            vid: Vid(7),
            property: SecurityProperty::StartupIntegrity,
            nonce1: [1; 32],
        };
        let bytes = m1.to_wire();
        assert!(CustomerRequest::from_wire(&bytes[..bytes.len() - 1]).is_err());
    }
}
