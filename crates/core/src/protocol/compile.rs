//! Compiles [`Protocol`] terms to the flat op schedule the session
//! interpreter runs.
//!
//! ## Compilation rules
//!
//! * `Seq` flattens; nesting is free.
//! * `IssueNonce(slot)` fuses into the following `Hop` as its
//!   `issue` attribute: the interpreter draws the nonce immediately
//!   before building that hop's message, preserving the DRBG draw
//!   order of the hand-written Figure-3 state machine.
//! * `CheckNonce`/`VerifyQuote` after a `Hop` are *claims*: the wire
//!   format fixes which quote and nonce echo each message kind
//!   carries, and the interpreter always enforces them on receive.
//!   The compiler validates the claims against the hop's message kind
//!   and rejects a program that declares the wrong obligation.
//! * Every op carries its *pre-charge* — the processing latency paid
//!   before it runs: the first op charges nothing, an op after
//!   `Hop(msgN)` charges `post_hop_us(N)`, and the op after `Window`
//!   charges the measurement cost (hash + quote + signature), which
//!   depends on the spec and is resolved at run time.
//! * `Par`/`Delegate` branches compile to child programs registered
//!   alongside the parent; the parent gets one `Fork` op that spawns
//!   them as child sessions and parks until all complete. A
//!   fork-with-one-branch followed by `Gate` is a delegation; the
//!   gate's fail edge is patched to the program's message-5 hop so an
//!   unhealthy delegated verdict is still certified and reported.
//! * `Complete` terminates the program (exactly one, at the end).
//!
//! The checks below are the typed-register well-formedness pass: a
//! program that compiles can only read registers (nonces, the
//! measurement request, the verdict) after some earlier op wrote
//! them, so the interpreter's register file never traps on the clean
//! path.

use super::ir::{Branch, MsgKind, NonceSlot, Protocol, QuoteKind};
use crate::types::SecurityProperty;

/// Why a [`Protocol`] term failed to compile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Index of the offending atom in the flattened term.
    pub at: usize,
    /// What rule it broke.
    pub reason: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "protocol compile error at step {}: {}",
            self.at, self.reason
        )
    }
}

impl std::error::Error for CompileError {}

/// Handle to a compiled program in the cloud's registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProgramId(pub(crate) u16);

/// Processing latency paid before an op runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Charge {
    /// Nothing: the program's first op.
    None,
    /// `post_hop_us(N)`: receive processing of message N.
    PostHop(u8),
    /// Measurement cost (hash + quote generation + signature),
    /// resolved from the spec at run time.
    Measurement,
}

/// One interpreter op. The program counter walks this list; transport
/// events (retries, late arrivals, window timers) happen *within* an
/// op and never move the counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// Build and transmit one Figure-3 record (drawing `issue` first
    /// if set), then wait for its receive processing.
    Hop {
        /// The record to put on the wire.
        msg: MsgKind,
        /// Nonce drawn immediately before the message is built.
        issue: Option<NonceSlot>,
        /// Pre-charge (see [`Charge`]).
        pre: Charge,
    },
    /// Open the measurement window on the target server (serialized
    /// per server), wait it out, then fall through to the next op.
    Window {
        /// Pre-charge paid before the window-open is scheduled.
        pre: Charge,
    },
    /// Spawn the branch child sessions and park until all complete;
    /// the join writes the combined verdict to the status register.
    Fork {
        /// First branch index in [`CompiledProgram::branches`].
        first_branch: u16,
        /// Number of branches.
        n_branches: u16,
        /// Pre-charge paid when the fork spawns.
        pre: Charge,
    },
    /// Branch on the status register: healthy falls through,
    /// unhealthy jumps to `fail_pc` (the certification tail).
    Gate {
        /// Jump target for an unhealthy delegated verdict.
        fail_pc: u16,
    },
    /// Deliver the verdict after the pre-charge.
    Complete {
        /// Pre-charge paid before the completion tick.
        pre: Charge,
    },
}

/// One compiled fork branch: which child program to run, under which
/// property.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BranchSpec {
    /// Property override; `None` inherits the parent session's.
    pub(crate) property: Option<SecurityProperty>,
    /// The child program.
    pub(crate) program: ProgramId,
}

/// A compiled protocol: the op schedule plus its fork branches.
#[derive(Clone, Debug)]
pub(crate) struct CompiledProgram {
    pub(crate) ops: Vec<Op>,
    pub(crate) branches: Vec<BranchSpec>,
}

impl CompiledProgram {
    pub(crate) fn op(&self, pc: u16) -> Option<Op> {
        self.ops.get(pc as usize).copied()
    }
}

fn err(at: usize, reason: impl Into<String>) -> CompileError {
    CompileError {
        at,
        reason: reason.into(),
    }
}

/// The receive obligations the wire format fixes per message kind:
/// which quote the record carries and which nonce it must echo.
/// `CheckNonce`/`VerifyQuote` claims are validated against this table
/// (re-derived from the message structs in [`crate::messages`]).
fn obligations(msg: MsgKind) -> (Option<QuoteKind>, Option<NonceSlot>) {
    match msg {
        MsgKind::Msg1 | MsgKind::Msg2 | MsgKind::Msg3 => (None, None),
        MsgKind::Msg4 => (Some(QuoteKind::Q3), Some(NonceSlot::N3)),
        MsgKind::Msg5 => (Some(QuoteKind::Q2), Some(NonceSlot::N2)),
        MsgKind::Msg6 => (Some(QuoteKind::Q1), Some(NonceSlot::N1)),
    }
}

/// Flattens nested `Seq` terms into one atom list (`Par`/`Delegate`
/// bodies are compiled recursively, not flattened here).
fn flatten<'a>(p: &'a Protocol, out: &mut Vec<&'a Protocol>) {
    match p {
        Protocol::Seq(steps) => {
            for s in steps {
                flatten(s, out);
            }
        }
        other => out.push(other),
    }
}

/// Whether a branch body is appraiser-side: no customer hops, no
/// nested forks. (The one-level depth bound keeps fork/join state a
/// single parent pointer per session.)
fn check_branch_shape(body: &Protocol, at: usize) -> Result<(), CompileError> {
    let mut atoms = Vec::new();
    flatten(body, &mut atoms);
    for a in &atoms {
        match a {
            Protocol::Hop(MsgKind::Msg1) | Protocol::Hop(MsgKind::Msg6) => {
                return Err(err(at, "branch bodies cannot contain customer hops"))
            }
            Protocol::Par(_) | Protocol::Delegate(_) | Protocol::Gate => {
                return Err(err(at, "forks do not nest: branch bodies are flat"))
            }
            _ => {}
        }
    }
    Ok(())
}

/// Compiles `p` into `store`, registering any fork-branch child
/// programs first, and returns the parent's id. `top_level` programs
/// may open with customer hops; branch bodies may not.
pub(crate) fn compile_into(
    p: &Protocol,
    store: &mut Vec<CompiledProgram>,
) -> Result<ProgramId, CompileError> {
    let mut atoms = Vec::new();
    flatten(p, &mut atoms);
    if atoms.is_empty() {
        return Err(err(0, "empty protocol"));
    }
    let mut ops: Vec<Op> = Vec::new();
    let mut branches: Vec<BranchSpec> = Vec::new();
    // `IssueNonce` parked for the next hop.
    let mut pending_issue: Option<NonceSlot> = None;
    // Pre-charge owed to the next op (see the module docs).
    let mut next_pre = Charge::None;
    // The hop whose receive obligations subsequent checks claim.
    let mut last_hop: Option<MsgKind> = None;
    // Gate ops awaiting their fail edge.
    let mut open_gates: Vec<usize> = Vec::new();
    let mut completed = false;
    for (at, atom) in atoms.iter().enumerate() {
        if completed {
            return Err(err(at, "steps after Complete"));
        }
        match atom {
            Protocol::Seq(_) => {
                // Flattened away above.
            }
            Protocol::IssueNonce(slot) => {
                if pending_issue.is_some() {
                    return Err(err(at, "two nonce issues before one hop"));
                }
                pending_issue = Some(*slot);
            }
            Protocol::CheckNonce(slot) => {
                let Some(msg) = last_hop else {
                    return Err(err(at, "nonce check before any hop"));
                };
                if obligations(msg).1 != Some(*slot) {
                    return Err(err(at, format!("{msg} does not echo {slot:?}")));
                }
            }
            Protocol::VerifyQuote(quote) => {
                let Some(msg) = last_hop else {
                    return Err(err(at, "quote verify before any hop"));
                };
                if obligations(msg).0 != Some(*quote) {
                    return Err(err(at, format!("{msg} does not carry {quote:?}")));
                }
            }
            Protocol::Hop(msg) => {
                check_hop_position(*msg, &ops, pending_issue, at)?;
                ops.push(Op::Hop {
                    msg: *msg,
                    issue: pending_issue.take(),
                    pre: next_pre,
                });
                next_pre = Charge::PostHop(msg.number());
                last_hop = Some(*msg);
            }
            Protocol::Window => {
                if !matches!(
                    ops.last(),
                    Some(Op::Hop {
                        msg: MsgKind::Msg3,
                        ..
                    })
                ) {
                    return Err(err(at, "the window must follow the message-3 hop"));
                }
                ops.push(Op::Window { pre: next_pre });
                next_pre = Charge::Measurement;
                last_hop = None;
            }
            Protocol::Par(list) => {
                if list.is_empty() {
                    return Err(err(at, "empty parallel composition"));
                }
                push_fork(&mut ops, &mut branches, list, store, next_pre, at)?;
                next_pre = Charge::None;
                last_hop = None;
            }
            Protocol::Delegate(branch) => {
                push_fork(
                    &mut ops,
                    &mut branches,
                    std::slice::from_ref(&**branch),
                    store,
                    next_pre,
                    at,
                )?;
                next_pre = Charge::None;
                last_hop = None;
            }
            Protocol::Gate => {
                let delegation = matches!(ops.last(), Some(Op::Fork { n_branches: 1, .. }));
                if !delegation {
                    return Err(err(at, "a gate must follow a single-branch delegation"));
                }
                open_gates.push(ops.len());
                ops.push(Op::Gate { fail_pc: u16::MAX });
                last_hop = None;
            }
            Protocol::Complete => {
                if !status_available(&ops) {
                    return Err(err(at, "nothing produced a verdict to complete with"));
                }
                ops.push(Op::Complete { pre: next_pre });
                completed = true;
            }
        }
        if ops.len() > u16::MAX as usize {
            return Err(err(at, "program too long"));
        }
    }
    if !completed {
        return Err(err(atoms.len(), "program does not end with Complete"));
    }
    if pending_issue.is_some() {
        return Err(err(atoms.len(), "nonce issued but never used by a hop"));
    }
    // Patch every gate's fail edge to the certification tail: the
    // first message-5 hop after it, so an unhealthy delegated verdict
    // is still certified and delivered instead of silently dropping
    // the session.
    for gate_pc in open_gates {
        let target = ops
            .iter()
            .enumerate()
            .skip(gate_pc)
            .find(|(_, op)| {
                matches!(
                    op,
                    Op::Hop {
                        msg: MsgKind::Msg5,
                        ..
                    }
                )
            })
            .map(|(pc, _)| pc);
        let Some(target) = target else {
            return Err(err(
                gate_pc,
                "gate without a later message-5 hop to report on",
            ));
        };
        if let Some(Op::Gate { fail_pc }) = ops.get_mut(gate_pc) {
            *fail_pc = target as u16;
        }
    }
    if store.len() >= u16::MAX as usize {
        return Err(err(0, "program registry full"));
    }
    let id = ProgramId(store.len() as u16);
    store.push(CompiledProgram { ops, branches });
    Ok(id)
}

/// Compiles fork branches into the store and appends the `Fork` op.
fn push_fork(
    ops: &mut Vec<Op>,
    branches: &mut Vec<BranchSpec>,
    list: &[Branch],
    store: &mut Vec<CompiledProgram>,
    pre: Charge,
    at: usize,
) -> Result<(), CompileError> {
    if !matches!(
        ops.last(),
        Some(Op::Hop {
            msg: MsgKind::Msg2,
            ..
        })
    ) {
        return Err(err(
            at,
            "forks happen at the appraiser: after the message-2 hop",
        ));
    }
    let first_branch = branches.len();
    if first_branch + list.len() > u16::MAX as usize {
        return Err(err(at, "too many fork branches"));
    }
    for b in list {
        check_branch_shape(&b.body, at)?;
        let program = compile_into(&b.body, store)?;
        branches.push(BranchSpec {
            property: b.property,
            program,
        });
    }
    ops.push(Op::Fork {
        first_branch: first_branch as u16,
        n_branches: list.len() as u16,
        pre,
    });
    Ok(())
}

/// Positional/register preconditions for transmitting each message
/// kind — the "can this hop be built from what earlier ops wrote"
/// check.
fn check_hop_position(
    msg: MsgKind,
    ops: &[Op],
    pending_issue: Option<NonceSlot>,
    at: usize,
) -> Result<(), CompileError> {
    let require_issue = |slot: NonceSlot| -> Result<(), CompileError> {
        if pending_issue == Some(slot) {
            Ok(())
        } else {
            Err(err(at, format!("{msg} requires a fresh {slot:?}")))
        }
    };
    match msg {
        MsgKind::Msg1 => {
            if !ops.is_empty() {
                return Err(err(at, "the customer request opens a program"));
            }
            require_issue(NonceSlot::N1)
        }
        MsgKind::Msg2 => {
            let ok = ops.is_empty()
                || matches!(
                    ops.last(),
                    Some(Op::Hop {
                        msg: MsgKind::Msg1,
                        ..
                    })
                );
            if !ok {
                return Err(err(
                    at,
                    "the forward follows the customer request (or opens an internal program)",
                ));
            }
            require_issue(NonceSlot::N2)
        }
        MsgKind::Msg3 => {
            let ok = ops.is_empty()
                || matches!(
                    ops.last(),
                    Some(Op::Hop {
                        msg: MsgKind::Msg2,
                        ..
                    }) | Some(Op::Gate { .. })
                );
            if !ok {
                return Err(err(
                    at,
                    "the measure request follows the forward (or a passed gate, or opens a branch)",
                ));
            }
            require_issue(NonceSlot::N3)
        }
        MsgKind::Msg4 => {
            if pending_issue.is_some() {
                return Err(err(at, "the measurement response issues no nonce"));
            }
            if !matches!(ops.last(), Some(Op::Window { .. })) {
                return Err(err(at, "the measurement response follows the window"));
            }
            Ok(())
        }
        MsgKind::Msg5 => {
            if pending_issue.is_some() {
                return Err(err(at, "the property report issues no nonce"));
            }
            if !status_available(ops) {
                return Err(err(at, "nothing produced a verdict to certify"));
            }
            Ok(())
        }
        MsgKind::Msg6 => {
            if pending_issue.is_some() {
                return Err(err(at, "the customer report issues no nonce"));
            }
            if !matches!(
                ops.last(),
                Some(Op::Hop {
                    msg: MsgKind::Msg5,
                    ..
                })
            ) {
                return Err(err(at, "the customer report follows the property report"));
            }
            Ok(())
        }
    }
}

/// Whether the status register is written by the preceding op: a
/// received message 4/5/6 stores the (interpreted or carried) verdict,
/// and a fork join stores the combined branch verdict.
fn status_available(ops: &[Op]) -> bool {
    matches!(
        ops.last(),
        Some(Op::Hop {
            msg: MsgKind::Msg4 | MsgKind::Msg5 | MsgKind::Msg6,
            ..
        }) | Some(Op::Fork { .. })
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ir::Protocol;

    /// Test fixture: an internal exchange missing its `Complete`.
    fn figure3_internal_truncated() -> Protocol {
        Protocol::Seq(vec![
            Protocol::IssueNonce(NonceSlot::N2),
            Protocol::Hop(MsgKind::Msg2),
            Protocol::IssueNonce(NonceSlot::N3),
            Protocol::Hop(MsgKind::Msg3),
            Protocol::Window,
            Protocol::Hop(MsgKind::Msg4),
        ])
    }

    fn compile_one(p: &Protocol) -> Result<(CompiledProgram, Vec<CompiledProgram>), CompileError> {
        let mut store = Vec::new();
        let id = compile_into(p, &mut store)?;
        let parent = store[id.0 as usize].clone();
        Ok((parent, store))
    }

    #[test]
    fn figure3_customer_compiles_to_the_expected_schedule() {
        let (p, _) = compile_one(&Protocol::figure3_customer()).unwrap();
        use Charge::*;
        use MsgKind::*;
        let expect = [
            Op::Hop {
                msg: Msg1,
                issue: Some(NonceSlot::N1),
                pre: None,
            },
            Op::Hop {
                msg: Msg2,
                issue: Some(NonceSlot::N2),
                pre: PostHop(1),
            },
            Op::Hop {
                msg: Msg3,
                issue: Some(NonceSlot::N3),
                pre: PostHop(2),
            },
            Op::Window { pre: PostHop(3) },
            Op::Hop {
                msg: Msg4,
                issue: Option::None,
                pre: Measurement,
            },
            Op::Hop {
                msg: Msg5,
                issue: Option::None,
                pre: PostHop(4),
            },
            Op::Hop {
                msg: Msg6,
                issue: Option::None,
                pre: PostHop(5),
            },
            Op::Complete { pre: PostHop(6) },
        ];
        assert_eq!(p.ops, expect);
        assert!(p.branches.is_empty());
    }

    #[test]
    fn figure3_internal_compiles_to_the_expected_schedule() {
        let (p, _) = compile_one(&Protocol::figure3_internal()).unwrap();
        use Charge::*;
        use MsgKind::*;
        let expect = [
            Op::Hop {
                msg: Msg2,
                issue: Some(NonceSlot::N2),
                pre: None,
            },
            Op::Hop {
                msg: Msg3,
                issue: Some(NonceSlot::N3),
                pre: PostHop(2),
            },
            Op::Window { pre: PostHop(3) },
            Op::Hop {
                msg: Msg4,
                issue: Option::None,
                pre: Measurement,
            },
            Op::Hop {
                msg: Msg5,
                issue: Option::None,
                pre: PostHop(4),
            },
            Op::Complete { pre: PostHop(5) },
        ];
        assert_eq!(p.ops, expect);
    }

    #[test]
    fn layered_gate_fails_to_the_certification_tail() {
        let (p, store) =
            compile_one(&Protocol::layered(SecurityProperty::StartupIntegrity)).unwrap();
        let gate = p
            .ops
            .iter()
            .copied()
            .find(|op| matches!(op, Op::Gate { .. }))
            .unwrap();
        let Op::Gate { fail_pc } = gate else {
            unreachable!()
        };
        assert!(
            matches!(
                p.op(fail_pc),
                Some(Op::Hop {
                    msg: MsgKind::Msg5,
                    ..
                })
            ),
            "gate must fail onto the message-5 hop, got {:?}",
            p.op(fail_pc)
        );
        assert_eq!(p.branches.len(), 1);
        // The delegated child is the internal exchange.
        let child = &store[p.branches[0].program.0 as usize];
        assert!(matches!(
            child.ops[0],
            Op::Hop {
                msg: MsgKind::Msg2,
                ..
            }
        ));
    }

    #[test]
    fn fanout_branches_share_the_parent_report() {
        let props = [
            SecurityProperty::RuntimeIntegrity,
            SecurityProperty::CpuAvailability { min_share_pct: 50 },
        ];
        let (p, store) = compile_one(&Protocol::fanout(&props)).unwrap();
        assert_eq!(p.branches.len(), 2);
        let fork = p.ops.iter().find(|op| matches!(op, Op::Fork { .. }));
        assert!(matches!(fork, Some(Op::Fork { n_branches: 2, .. })));
        for b in &p.branches {
            let child = &store[b.program.0 as usize];
            // Measurement-only branch: request, window, response, done.
            assert!(matches!(
                child.ops[0],
                Op::Hop {
                    msg: MsgKind::Msg3,
                    ..
                }
            ));
            assert!(matches!(
                child.ops.last(),
                Some(Op::Complete {
                    pre: Charge::PostHop(4)
                })
            ));
        }
    }

    #[test]
    fn wrong_obligation_claims_are_rejected() {
        // Claims N2 on message 4 (which echoes N3).
        let bad = Protocol::Seq(vec![
            Protocol::IssueNonce(NonceSlot::N2),
            Protocol::Hop(MsgKind::Msg2),
            Protocol::IssueNonce(NonceSlot::N3),
            Protocol::Hop(MsgKind::Msg3),
            Protocol::Window,
            Protocol::Hop(MsgKind::Msg4),
            Protocol::CheckNonce(NonceSlot::N2),
            Protocol::Hop(MsgKind::Msg5),
            Protocol::Complete,
        ]);
        assert!(compile_one(&bad).is_err());
    }

    #[test]
    fn structural_violations_are_rejected() {
        // Hop without its nonce.
        assert!(compile_one(&Protocol::Seq(vec![
            Protocol::Hop(MsgKind::Msg2),
            Protocol::Complete,
        ]))
        .is_err());
        // Window without the measure request.
        assert!(compile_one(&Protocol::Seq(vec![
            Protocol::IssueNonce(NonceSlot::N2),
            Protocol::Hop(MsgKind::Msg2),
            Protocol::Window,
            Protocol::Complete,
        ]))
        .is_err());
        // Missing Complete.
        assert!(compile_one(&figure3_internal_truncated()).is_err());
        // Nested forks.
        let nested = Protocol::Seq(vec![
            Protocol::IssueNonce(NonceSlot::N1),
            Protocol::Hop(MsgKind::Msg1),
            Protocol::IssueNonce(NonceSlot::N2),
            Protocol::Hop(MsgKind::Msg2),
            Protocol::Delegate(Box::new(Branch {
                property: None,
                body: Protocol::layered(SecurityProperty::StartupIntegrity),
            })),
            Protocol::Gate,
            Protocol::Hop(MsgKind::Msg5),
            Protocol::Complete,
        ]);
        assert!(compile_one(&nested).is_err());
    }
}
