//! The attestation-protocol IR: Figure 3 (and its variants) as data.
//!
//! A [`Protocol`] term describes one attestation exchange the way the
//! paper draws it — a sequence of message hops between the customer,
//! the Cloud Controller, the Attestation Server and a cloud server,
//! with nonce freshness, quote verification and the measurement window
//! made explicit. Terms compose sequentially ([`Protocol::Seq`], the
//! paper's `;`) and in parallel ([`Protocol::Par`], `||`), and a term
//! can delegate a whole sub-protocol to the appraiser
//! ([`Protocol::Delegate`]) and gate what follows on its verdict
//! ([`Protocol::Gate`]) — the Copland idea of protocols as terms run by
//! an interpreter, applied to CloudMonatt's message flow.
//!
//! Terms are *compiled* ([`crate::protocol::compile`]) to a flat op
//! list interpreted by the session layer; nothing here executes.

use crate::types::SecurityProperty;

/// Which Figure-3 record a hop puts on the wire. The kind fixes the
/// endpoints (customer ↔ controller ↔ AS ↔ server), the secure channel
/// (Kx for 1/6, Ky for 2/5, Kz for 3/4) and the wire format; the IR
/// composes hops, it does not redefine them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Customer → controller attestation request (carries N1).
    Msg1,
    /// Controller → Attestation Server forward (carries N2).
    Msg2,
    /// Attestation Server → cloud server measurement request (N3).
    Msg3,
    /// Cloud server → Attestation Server measurement response + quote
    /// Q3 (echoes N3).
    Msg4,
    /// Attestation Server → controller property report + quote Q2
    /// (echoes N2).
    Msg5,
    /// Controller → customer report + quote Q1 (echoes N1).
    Msg6,
}

impl MsgKind {
    /// The Figure-3 message number, used to index the per-message
    /// processing charge ([`crate::latency::LatencyParams::post_hop_us`]).
    pub fn number(self) -> u8 {
        match self {
            MsgKind::Msg1 => 1,
            MsgKind::Msg2 => 2,
            MsgKind::Msg3 => 3,
            MsgKind::Msg4 => 4,
            MsgKind::Msg5 => 5,
            MsgKind::Msg6 => 6,
        }
    }
}

impl std::fmt::Display for MsgKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "msg{}", self.number())
    }
}

/// The three nonce registers of Figure 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NonceSlot {
    /// N1: customer ↔ controller freshness.
    N1,
    /// N2: controller ↔ Attestation Server freshness.
    N2,
    /// N3: Attestation Server ↔ cloud server freshness.
    N3,
}

/// The three signed quotes of Figure 3, innermost first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuoteKind {
    /// Q3: the cloud server's measurement quote (message 4).
    Q3,
    /// Q2: the Attestation Server's property-report quote (message 5).
    Q2,
    /// Q1: the controller's customer-report quote (message 6).
    Q1,
}

/// One parallel branch of a [`Protocol::Par`] term, or the body of a
/// [`Protocol::Delegate`]: a sub-protocol run as its own session on
/// behalf of the enclosing one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Branch {
    /// The security property the branch attests. `None` inherits the
    /// enclosing session's property; a fan-out sets one per branch.
    pub property: Option<SecurityProperty>,
    /// The branch body. Must be appraiser-side (no customer hops):
    /// it may start at message 2 (a full delegated appraisal) or at
    /// message 3 (a measurement-only branch).
    pub body: Protocol,
}

/// An attestation-protocol term. See the module docs for the grammar;
/// [`crate::protocol::compile`] for what each construct lowers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Put one Figure-3 record on the wire and wait for its receive
    /// processing (decode, the wire-fixed nonce/quote checks, register
    /// writes) at the far end.
    Hop(MsgKind),
    /// Draw a fresh nonce into `slot` immediately before the next hop
    /// is built (the draw order is part of the protocol).
    IssueNonce(NonceSlot),
    /// Declare that the message just received must echo `slot`. The
    /// check itself is wire-fixed — the interpreter always enforces it
    /// — so the compiler *validates* the claim against the preceding
    /// hop's message kind and rejects a program that declares the
    /// wrong obligation.
    CheckNonce(NonceSlot),
    /// Declare that the message just received carries `quote` and that
    /// it must verify. Validated like [`Protocol::CheckNonce`].
    VerifyQuote(QuoteKind),
    /// Run the measurement window on the target server (serialized
    /// per server), then measure and quote. Must sit between the
    /// message-3 and message-4 hops.
    Window,
    /// Sequential composition: `p1 ; p2 ; …`.
    Seq(Vec<Protocol>),
    /// Parallel composition: every branch runs as a delegated child
    /// session concurrently (`b1 || b2 || …`); the parent parks until
    /// all branches complete and resumes with the combined verdict
    /// (healthy iff every branch is healthy).
    Par(Vec<Branch>),
    /// Delegate one sub-protocol to the appraiser: the branch runs as
    /// a child session; the parent parks until it completes and
    /// resumes with the child's verdict in its status register.
    Delegate(Box<Branch>),
    /// Branch on the preceding delegation's verdict: healthy falls
    /// through to the next step; unhealthy skips straight to the
    /// report-certification tail (the message-5 hop), so the appraiser
    /// still certifies the negative verdict instead of measuring a
    /// platform it no longer trusts.
    Gate,
    /// Deliver the session verdict after the final processing charge.
    /// Every program ends with exactly one `Complete`.
    Complete,
}

impl Protocol {
    /// The flat Figure-3 customer exchange, messages 1–6 — the default
    /// program every Table-1 API runs.
    pub fn figure3_customer() -> Protocol {
        Protocol::Seq(vec![
            Protocol::IssueNonce(NonceSlot::N1),
            Protocol::Hop(MsgKind::Msg1),
            Protocol::IssueNonce(NonceSlot::N2),
            Protocol::Hop(MsgKind::Msg2),
            Protocol::IssueNonce(NonceSlot::N3),
            Protocol::Hop(MsgKind::Msg3),
            Protocol::Window,
            Protocol::Hop(MsgKind::Msg4),
            Protocol::VerifyQuote(QuoteKind::Q3),
            Protocol::CheckNonce(NonceSlot::N3),
            Protocol::Hop(MsgKind::Msg5),
            Protocol::VerifyQuote(QuoteKind::Q2),
            Protocol::CheckNonce(NonceSlot::N2),
            Protocol::Hop(MsgKind::Msg6),
            Protocol::VerifyQuote(QuoteKind::Q1),
            Protocol::CheckNonce(NonceSlot::N1),
            Protocol::Complete,
        ])
    }

    /// The controller-internal Figure-3 exchange, messages 2–5 — the
    /// launch pipeline's attestation stage (no customer endpoint).
    pub fn figure3_internal() -> Protocol {
        Protocol::Seq(vec![
            Protocol::IssueNonce(NonceSlot::N2),
            Protocol::Hop(MsgKind::Msg2),
            Protocol::IssueNonce(NonceSlot::N3),
            Protocol::Hop(MsgKind::Msg3),
            Protocol::Window,
            Protocol::Hop(MsgKind::Msg4),
            Protocol::VerifyQuote(QuoteKind::Q3),
            Protocol::CheckNonce(NonceSlot::N3),
            Protocol::Hop(MsgKind::Msg5),
            Protocol::VerifyQuote(QuoteKind::Q2),
            Protocol::CheckNonce(NonceSlot::N2),
            Protocol::Complete,
        ])
    }

    /// Layered attestation: appraise the hosting platform first (a
    /// delegated messages-2–5 exchange for
    /// [`SecurityProperty::StartupIntegrity`], i.e. the VMM/hypervisor
    /// boot chain), and only if that verdict is healthy measure the VM
    /// itself for the requested property — the VM's VMI quote is
    /// gated on the platform's. An unhealthy platform skips the VM
    /// measurement and certifies the negative verdict directly.
    pub fn layered(platform_property: SecurityProperty) -> Protocol {
        Protocol::Seq(vec![
            Protocol::IssueNonce(NonceSlot::N1),
            Protocol::Hop(MsgKind::Msg1),
            Protocol::IssueNonce(NonceSlot::N2),
            Protocol::Hop(MsgKind::Msg2),
            Protocol::Delegate(Box::new(Branch {
                property: Some(platform_property),
                body: Protocol::figure3_internal(),
            })),
            Protocol::Gate,
            Protocol::IssueNonce(NonceSlot::N3),
            Protocol::Hop(MsgKind::Msg3),
            Protocol::Window,
            Protocol::Hop(MsgKind::Msg4),
            Protocol::VerifyQuote(QuoteKind::Q3),
            Protocol::CheckNonce(NonceSlot::N3),
            Protocol::Hop(MsgKind::Msg5),
            Protocol::VerifyQuote(QuoteKind::Q2),
            Protocol::CheckNonce(NonceSlot::N2),
            Protocol::Hop(MsgKind::Msg6),
            Protocol::VerifyQuote(QuoteKind::Q1),
            Protocol::CheckNonce(NonceSlot::N1),
            Protocol::Complete,
        ])
    }

    /// Multi-property fan-out: one customer session measures every
    /// property in `properties` through parallel measurement branches
    /// (each a messages-3–4 exchange with its own window and quote),
    /// then certifies one combined report — healthy iff every branch
    /// is healthy.
    pub fn fanout(properties: &[SecurityProperty]) -> Protocol {
        let branches = properties
            .iter()
            .map(|&p| Branch {
                property: Some(p),
                body: Protocol::Seq(vec![
                    Protocol::IssueNonce(NonceSlot::N3),
                    Protocol::Hop(MsgKind::Msg3),
                    Protocol::Window,
                    Protocol::Hop(MsgKind::Msg4),
                    Protocol::VerifyQuote(QuoteKind::Q3),
                    Protocol::CheckNonce(NonceSlot::N3),
                    Protocol::Complete,
                ]),
            })
            .collect();
        Protocol::Seq(vec![
            Protocol::IssueNonce(NonceSlot::N1),
            Protocol::Hop(MsgKind::Msg1),
            Protocol::IssueNonce(NonceSlot::N2),
            Protocol::Hop(MsgKind::Msg2),
            Protocol::Par(branches),
            Protocol::Hop(MsgKind::Msg5),
            Protocol::VerifyQuote(QuoteKind::Q2),
            Protocol::CheckNonce(NonceSlot::N2),
            Protocol::Hop(MsgKind::Msg6),
            Protocol::VerifyQuote(QuoteKind::Q1),
            Protocol::CheckNonce(NonceSlot::N1),
            Protocol::Complete,
        ])
    }
}
