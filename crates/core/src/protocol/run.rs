//! The session-layer interpreter: executes compiled protocol ops.
//!
//! One compiled op at a time: *entering* an op performs its send side
//! (draw the declared nonce, build the record from the register file,
//! transmit with the op's pre-charge), and the matching *receive*
//! dispatch ([`Cloud::dispatch_receive`]) runs when the record's
//! arrival event fires — it writes the registers the wire format
//! defines for that message kind, then advances the program counter
//! into the next op. Transport concerns (retries, late arrivals,
//! deadlines) live in [`crate::session`] and never move the counter;
//! fork/join for parallel and delegated sub-protocols lives in
//! [`crate::protocol::fork`].
//!
//! The op bodies are ports of the hand-written `on_msgN` handlers, call
//! for call and charge for charge: compiling Figure 3 and interpreting
//! it here reproduces the exact DRBG draw order, latency arithmetic and
//! stats of the old state machine (pinned byte-for-byte by the golden
//! trace). The interpreter's warm path — the flat Figure-3 program —
//! allocates nothing: records are encoded into the session's retained
//! buffers and the register file is plain moves.
//!
//! ## Interception points
//!
//! | Wire point | Interpreter hook | What intercepts |
//! |---|---|---|
//! | message-4 receive | [`Cloud::dispatch_receive`] | AS coalescing buffer ([`Cloud::flush_msg4_batch`]) |
//! | message-5 entry | [`Cloud::enter_hop`] (certify) | evidence cache (insert on the 4-receive) |
//! | `Fork` op | [`crate::protocol::fork`] | delegated / parallel child sessions |
//! | `Gate` op | [`Cloud::enter_current_op`] | verdict-gated continuation (layered attestation) |

use super::compile::{Charge, Op};
use crate::attestation::AttestationServer;
use crate::cloud::{attserver_at, Cloud};
use crate::controller::CloudController;
use crate::error::CloudError;
use crate::measurements::MeasurementSpec;
use crate::messages::{
    append_route_tag, split_route_tag, AttestationReportMsg, ControllerForward, CustomerReportMsg,
    CustomerRequest, MeasureRequest, MeasureResponse,
};
use crate::protocol::{MsgKind, NonceSlot};
use crate::session::{lost_session, malformed, CloudEvent, PendingMsg4, SessionEvent, SessionId};
use monatt_net::wire::Wire;

/// A program counter escaped its compiled schedule — impossible for a
/// program the compiler accepted, but surfaced as a typed error rather
/// than trusted.
#[cold]
fn program_error() -> CloudError {
    CloudError::ProtocolFailure {
        reason: "program counter outside compiled schedule".into(),
    }
}

impl Cloud {
    /// Resolves a static pre-charge. [`Charge::Measurement`] is
    /// resolved by the message-4 hop entry itself (it depends on the
    /// spec); the compiler pins it to that op, so it never reaches
    /// here — mapped to zero rather than trusted with a panic.
    fn resolve_charge(&self, pre: Charge) -> u64 {
        match pre {
            Charge::None | Charge::Measurement => 0,
            Charge::PostHop(n) => self.latency.post_hop_us(n),
        }
    }

    /// Advances the program counter and enters the next op. `extra_us`
    /// is additional latency charged on top of the op's own pre-charge
    /// (the msg-4 coalescing wait).
    pub(crate) fn advance_session(
        &mut self,
        sid: SessionId,
        extra_us: u64,
    ) -> Result<(), CloudError> {
        let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
        session.pc = session.pc.wrapping_add(1);
        self.enter_current_op(sid, extra_us)
    }

    /// Enters the op the session's program counter points at: performs
    /// its send side and schedules the events that carry it forward.
    pub(crate) fn enter_current_op(
        &mut self,
        sid: SessionId,
        extra_us: u64,
    ) -> Result<(), CloudError> {
        let (program, pc) = {
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            (session.program, session.pc)
        };
        let op = self
            .programs
            .get(program)
            .and_then(|p| p.op(pc))
            .ok_or_else(program_error)?;
        match op {
            Op::Hop { msg, issue, pre } => self.enter_hop(sid, msg, issue, pre, extra_us),
            Op::Window { pre } => {
                // The receive processing of message 3 is paid before
                // the window-open attempt is scheduled.
                let charge = self.resolve_charge(pre) + extra_us;
                let due = self.wall_clock_us + charge;
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                session.elapsed_us += charge;
                self.schedule_session_event(due, sid, SessionEvent::WindowOpen);
                Ok(())
            }
            Op::Fork {
                first_branch,
                n_branches,
                pre,
            } => {
                let charge = self.resolve_charge(pre) + extra_us;
                self.enter_fork(sid, first_branch, n_branches, charge)
            }
            Op::Gate { fail_pc } => self.enter_gate(sid, fail_pc),
            Op::Complete { pre } => {
                let charge = self.resolve_charge(pre) + extra_us;
                let due = self.wall_clock_us + charge;
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                let status = session
                    .status
                    .take()
                    .ok_or_else(|| CloudError::ProtocolFailure {
                        reason: "program completed without a verdict".into(),
                    })?;
                session.verdict = Some(status);
                session.elapsed_us += charge;
                self.schedule_session_event(due, sid, SessionEvent::Complete);
                Ok(())
            }
        }
    }

    /// The send side of a `Hop` op: draw the declared nonce, build the
    /// record for `msg` from the register file, and transmit it with
    /// the op's pre-charge (plus `extra_us`) as the pre-delay.
    fn enter_hop(
        &mut self,
        sid: SessionId,
        msg: MsgKind,
        issue: Option<NonceSlot>,
        pre: Charge,
        extra_us: u64,
    ) -> Result<(), CloudError> {
        // The nonce draw happens immediately before the record is
        // built — the compiler fused `IssueNonce` into the hop to pin
        // exactly this DRBG draw order.
        let drawn = issue.map(|slot| (slot, self.fresh_nonce()));
        if let Some((slot, nonce)) = drawn {
            let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
            match slot {
                NonceSlot::N1 => session.nonce1 = nonce,
                NonceSlot::N2 => session.nonce2 = nonce,
                NonceSlot::N3 => session.nonce3 = nonce,
            }
        }
        let charge = match pre {
            Charge::Measurement => 0, // resolved below, from the spec
            other => self.resolve_charge(other),
        } + extra_us;
        match msg {
            MsgKind::Msg1 => {
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                let request = CustomerRequest {
                    vid: session.vid,
                    property: session.property,
                    nonce1: session.nonce1,
                };
                session.msg = MsgKind::Msg1;
                request.encode_into(&mut session.wire);
                self.stamp_and_transmit(sid, charge)
            }
            MsgKind::Msg2 => {
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                let fwd = ControllerForward {
                    vid: session.req_vid,
                    server: session.server,
                    property: session.req_property,
                    nonce2: session.nonce2,
                };
                session.msg = MsgKind::Msg2;
                fwd.encode_into(&mut session.wire);
                self.stamp_and_transmit(sid, charge)
            }
            MsgKind::Msg3 => {
                let (req_vid, req_property, nonce3, replica) = {
                    let session = self.sessions.get(sid).ok_or_else(lost_session)?;
                    (
                        session.req_vid,
                        session.req_property,
                        session.nonce3,
                        session.route.replica,
                    )
                };
                let measure_req = attserver_at(&mut self.attserver, &mut self.as_pool, replica)
                    .build_measure_request(req_vid, req_property, nonce3);
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                session.spec = Some(measure_req.spec);
                session.msg = MsgKind::Msg3;
                measure_req.encode_into(&mut session.wire);
                self.stamp_and_transmit(sid, charge)
            }
            MsgKind::Msg4 => {
                // The measurement-window close: collect measurements,
                // generate the quote, respond. Hashing/quoting cost is
                // the hop's pre-delay.
                let (server, vid, expected_image, req) = {
                    let session = self.sessions.get(sid).ok_or_else(lost_session)?;
                    let req = session.measure.ok_or_else(lost_session)?;
                    (session.server, session.vid, session.expected_image, req)
                };
                let hashed = if matches!(req.spec, MeasurementSpec::BootIntegrity) {
                    Some(expected_image.size_mb())
                } else {
                    None
                };
                let charge = self.latency.measurement_us(hashed) + extra_us;
                let response = self
                    .touch_server(server)
                    .ok_or(CloudError::UnknownServer(server))?
                    .attest(req.vid, req.spec, req.nonce3)
                    .ok_or(CloudError::UnknownVm(vid))?;
                let msg4 = MeasureResponse {
                    vid: response.vid,
                    spec: response.spec,
                    measurement: response.measurement,
                    nonce3: response.nonce,
                    quote: response.quote,
                    cert_request: response.cert_request,
                };
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                session.msg = MsgKind::Msg4;
                msg4.encode_into(&mut session.wire);
                self.stamp_and_transmit(sid, charge)
            }
            MsgKind::Msg5 => {
                let (vid, server, property, nonce2, status, replica) = {
                    let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                    let status = session.status.take().ok_or_else(lost_session)?;
                    (
                        session.vid,
                        session.server,
                        session.property,
                        session.nonce2,
                        status,
                        session.route.replica,
                    )
                };
                let report_msg = attserver_at(&mut self.attserver, &mut self.as_pool, replica)
                    .certify_report_with(
                        vid,
                        server,
                        property,
                        status,
                        nonce2,
                        &mut self.quote_scratch,
                    );
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                session.msg = MsgKind::Msg5;
                report_msg.encode_into(&mut session.wire);
                self.stamp_and_transmit(sid, charge)
            }
            MsgKind::Msg6 => {
                let (vid, property, nonce1, status, instance) = {
                    let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                    let status = session.status.take().ok_or_else(lost_session)?;
                    (
                        session.vid,
                        session.property,
                        session.nonce1,
                        status,
                        session.route.controller,
                    )
                };
                let customer_report = self.certify_msg6(instance, vid, property, status, nonce1);
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                session.msg = MsgKind::Msg6;
                customer_report.encode_into(&mut session.wire);
                self.stamp_and_transmit(sid, charge)
            }
        }
    }

    /// Stamps the session's route tag onto the just-encoded record and
    /// transmits it. The tag rides only a replicated control plane: the
    /// dormant topology (K=1, N=1) puts exactly the unrouted protocol's
    /// bytes on the wire, so the latency model and golden trace are
    /// untouched by default.
    fn stamp_and_transmit(&mut self, sid: SessionId, charge: u64) -> Result<(), CloudError> {
        if !self.topology.is_dormant() {
            let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
            let route = session.route;
            append_route_tag(&mut session.wire, route);
        }
        self.transmit_attempt(sid, charge)
    }

    /// The receive side of the current `Hop` op: decode `bytes` per the
    /// wire format of `msg`, enforce its obligations (nonce echo, quote
    /// verification — the claims the compiler validated), write the
    /// registers, and advance into the next op.
    pub(crate) fn dispatch_receive(
        &mut self,
        sid: SessionId,
        msg: MsgKind,
        bytes: &[u8],
    ) -> Result<(), CloudError> {
        // On a replicated control plane every record carries its route
        // tag as a trailer: strip it and reject a record whose tag does
        // not match the session's pinned route (a misrouted record is
        // evidence of a broken shard-ownership invariant, not noise).
        let bytes = if self.topology.is_dormant() {
            bytes
        } else {
            // The trailer is public routing metadata (shard/instance/
            // replica indices), not authenticator material — the sealed
            // channel already authenticated the whole record.
            let (body, wire_route) =
                split_route_tag(bytes).ok_or_else(|| CloudError::ProtocolFailure {
                    reason: "record missing control-plane route tag".into(),
                })?;
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            if wire_route != session.route {
                return Err(CloudError::ProtocolFailure {
                    reason: "record misrouted across the control plane".into(),
                });
            }
            body
        };
        match msg {
            MsgKind::Msg1 => {
                // The controller reads the customer's request.
                let request =
                    CustomerRequest::from_wire(bytes).map_err(|e| malformed("request", e))?;
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                session.req_vid = request.vid;
                session.req_property = request.property;
                self.advance_session(sid, 0)
            }
            MsgKind::Msg2 => {
                // The attestation server reads the forward.
                let fwd =
                    ControllerForward::from_wire(bytes).map_err(|e| malformed("forward", e))?;
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                session.req_vid = fwd.vid;
                session.req_property = fwd.property;
                session.nonce2 = fwd.nonce2;
                self.advance_session(sid, 0)
            }
            MsgKind::Msg3 => {
                // The cloud server reads the measurement request.
                let req = MeasureRequest::from_wire(bytes)
                    .map_err(|e| malformed("measure request", e))?;
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                session.measure = Some(req);
                self.advance_session(sid, 0)
            }
            MsgKind::Msg4 => self.recv_msg4(sid, bytes),
            MsgKind::Msg5 => {
                // The controller verifies the AS property report (quote
                // Q2, nonce N2 echo).
                let report_msg =
                    AttestationReportMsg::from_wire(bytes).map_err(|e| malformed("report", e))?;
                let (nonce2, replica) = {
                    let session = self.sessions.get(sid).ok_or_else(lost_session)?;
                    (session.nonce2, session.route.replica)
                };
                AttestationServer::verify_report_msg_with(
                    &report_msg,
                    &self.attserver_identity_key(replica),
                    nonce2,
                    &mut self.quote_scratch,
                )?;
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                session.status = Some(report_msg.status);
                self.advance_session(sid, 0)
            }
            MsgKind::Msg6 => {
                // The customer verifies the final report (quote Q1,
                // nonce N1 echo).
                let report_msg = CustomerReportMsg::from_wire(bytes)
                    .map_err(|e| malformed("customer report", e))?;
                let (nonce1, instance) = {
                    let session = self.sessions.get(sid).ok_or_else(lost_session)?;
                    (session.nonce1, session.route.controller)
                };
                CloudController::verify_customer_report_with(
                    &report_msg,
                    &self.controller_identity_key(instance),
                    nonce1,
                    &mut self.quote_scratch,
                )?;
                let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
                session.status = Some(report_msg.status);
                self.advance_session(sid, 0)
            }
        }
    }

    /// The attestation server receives the measurement response. With
    /// coalescing disabled (`as_batch_window_us == 0`, the default) it
    /// is validated inline on arrival — the pre-batching path, charge
    /// for charge. With coalescing enabled the response parks in
    /// [`Cloud::pending_msg4`]; the batch flushes when it reaches
    /// `as_batch_max` responses (inline, so a size-1 batch is
    /// byte-identical to the inline path) or when the window timer
    /// fires.
    fn recv_msg4(&mut self, sid: SessionId, bytes: &[u8]) -> Result<(), CloudError> {
        let msg4 =
            MeasureResponse::from_wire(bytes).map_err(|e| malformed("measure response", e))?;
        if self.as_batch_window_us == 0 {
            return self.recv_msg4_inline(sid, msg4);
        }
        {
            let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
            if session.in_batch {
                // Already parked for this hop: a second receive of the
                // same message-4 must not hand the flush the session
                // twice (it would double-advance the program). Counted
                // like any other rejected duplicate.
                self.stats.duplicates_rejected += 1;
                return Ok(());
            }
            session.in_batch = true;
        }
        let now = self.wall_clock_us;
        self.pending_msg4.push(PendingMsg4 {
            sid,
            msg4,
            arrived_at_us: now,
        });
        if self.pending_msg4.len() >= self.as_batch_max.max(1) {
            self.flush_msg4_batch();
            return Ok(());
        }
        if self.pending_msg4.len() == 1 {
            // First response of a new batch: arm the window timer. A
            // size-triggered flush may empty the buffer before it fires;
            // the stale timer then flushes whatever the next batch holds
            // early, which only shortens waits — never loses a session.
            self.schedule_cloud_event(now + self.as_batch_window_us, CloudEvent::Msg4Flush);
        }
        Ok(())
    }

    /// The inline (unbatched) msg-4 path: validate, interpret, record
    /// evidence, then advance into the next op (certification or, for a
    /// measurement-only fork branch, completion).
    fn recv_msg4_inline(
        &mut self,
        sid: SessionId,
        msg4: MeasureResponse,
    ) -> Result<(), CloudError> {
        let (vid, server, property, expected_image, spec, nonce3, replica) = {
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            let spec = session.spec.ok_or_else(lost_session)?;
            (
                session.vid,
                session.server,
                session.property,
                session.expected_image,
                spec,
                session.nonce3,
                session.route.replica,
            )
        };
        attserver_at(&mut self.attserver, &mut self.as_pool, replica).validate_response_with(
            &msg4,
            vid,
            spec,
            nonce3,
            &mut self.quote_scratch,
        )?;
        let status = attserver_at(&mut self.attserver, &mut self.as_pool, replica)
            .interpret_response(property, &msg4, expected_image);
        if let Some(ttl) = self.evidence_ttl_us {
            attserver_at(&mut self.attserver, &mut self.as_pool, replica).evidence_insert(
                vid,
                property,
                server,
                status.clone(),
                self.wall_clock_us + ttl,
            );
        }
        let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
        session.status = Some(status);
        self.advance_session(sid, 0)
    }

    /// Validates every parked measurement response in one batched
    /// verification pass ([`AttestationServer::validate_response_batch`])
    /// and advances the surviving sessions into their next op.
    ///
    /// Latency model: each session is charged its coalescing wait
    /// (`flush_time - arrival`) plus its next op's own pre-charge, so a
    /// disabled window or a size-1 batch charges exactly what the
    /// inline path does. Sessions that died while parked (node crash,
    /// deadline expiry) are skipped; a verdict failure terminates its
    /// session with the identical error the inline path would produce,
    /// without touching its batch-mates.
    pub(crate) fn flush_msg4_batch(&mut self) {
        if self.pending_msg4.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.pending_msg4);
        let now = self.wall_clock_us;
        self.stats.msg4_flushes += 1;
        self.stats.msg4_batched += pending.len() as u64;
        // Re-read each parked entry's expectations from its session;
        // `None` marks an entry whose session is gone or terminal. The
        // buffer lives on `self` so its capacity survives across
        // flushes (taken locally to release the `&mut self` borrow).
        let mut meta = std::mem::take(&mut self.batch_meta);
        meta.clear();
        meta.extend(pending.iter().map(|p| match self.sessions.get(p.sid) {
            Some(s) if s.pending.is_none() && s.in_batch => s.spec.map(|spec| {
                (
                    s.vid,
                    s.server,
                    s.property,
                    s.expected_image,
                    spec,
                    s.nonce2,
                    s.nonce3,
                    s.route.replica,
                )
            }),
            _ => None,
        }));
        // Partition the batch by serving AS replica: each replica
        // verifies only its own slice, under its own identity (replicas
        // share no keys). Replica indices are scanned in ascending
        // order without collecting them (the flush path stays free of
        // per-partition allocations); the dormant pool (N=1) yields
        // exactly one group in entry order — byte-identical to the
        // single-AS flush.
        let max_replica = meta.iter().filter_map(|m| m.map(|t| t.7)).max();
        for replica in 0..=max_replica.unwrap_or(0) {
            if max_replica.is_none() || !meta.iter().any(|m| m.map(|t| t.7) == Some(replica)) {
                continue;
            }
            // The item list borrows each parked response, so it cannot
            // outlive this frame as a persistent scratch: one batch-sized
            // allocation per window flush, amortized across every Msg4 in
            // the batch. The zero-alloc harness pins the non-batched warm
            // configuration to exactly zero.
            let items: Vec<crate::attestation::BatchValidationItem<'_>> = pending
                .iter()
                .zip(meta.iter())
                .filter_map(|(p, m)| {
                    m.filter(|t| t.7 == replica)
                        .map(|(vid, _, _, _, spec, _, nonce3, _)| {
                            crate::attestation::BatchValidationItem {
                                response: &p.msg4,
                                expected_vid: vid,
                                expected_spec: spec,
                                expected_nonce3: nonce3,
                            }
                        })
                })
                .collect(); // #[allow(monatt::alloc_freedom)] lifetime-bound, amortized per batch
            let verdicts = attserver_at(&mut self.attserver, &mut self.as_pool, replica)
                // Batch validation assembles lifetime-bound signature slices
                // internally; its allocations are likewise per flush, not
                // per message. #[allow(monatt::alloc_freedom)]
                .validate_response_batch(&items, &mut self.quote_scratch);
            let mut verdicts = verdicts.into_iter();
            for (p, m) in pending.iter().zip(meta.iter()) {
                let Some((vid, server, property, expected_image, _, _, _, r)) = *m else {
                    continue;
                };
                if r != replica {
                    continue;
                }
                let Some(verdict) = verdicts.next() else {
                    break;
                };
                // The session leaves the batch before its fate is decided:
                // whatever happens next (advance, typed failure), a
                // straggler duplicate of its message 4 must be treated as a
                // fresh receive, not a batch member.
                if let Some(session) = self.sessions.get_mut(p.sid) {
                    session.in_batch = false;
                }
                if let Err(e) = verdict {
                    self.finish_session(p.sid, Err(e));
                    continue;
                }
                let status = attserver_at(&mut self.attserver, &mut self.as_pool, replica)
                    .interpret_response(property, &p.msg4, expected_image);
                if let Some(ttl) = self.evidence_ttl_us {
                    attserver_at(&mut self.attserver, &mut self.as_pool, replica).evidence_insert(
                        vid,
                        property,
                        server,
                        status.clone(),
                        now + ttl,
                    );
                }
                let Some(session) = self.sessions.get_mut(p.sid) else {
                    continue;
                };
                session.status = Some(status);
                let wait = now - p.arrived_at_us;
                if let Err(e) = self.advance_session(p.sid, wait) {
                    self.finish_session(p.sid, Err(e));
                }
            }
        }
        // Hand the drained buffer's capacity back for the next batch
        // (nothing parks while a flush is running: parking only happens
        // on a msg-4 arrival event).
        if self.pending_msg4.is_empty() {
            pending.clear();
            self.pending_msg4 = pending;
        }
        self.batch_meta = meta;
    }

    /// Opens the server's measurement window, or queues behind the
    /// session currently holding it (a server's profiling window is
    /// server-global state, so windowed sessions serialize per server;
    /// the wait is charged as queueing latency).
    pub(crate) fn step_window_open(&mut self, sid: SessionId) -> Result<(), CloudError> {
        self.check_deadline(sid)?;
        let now = self.wall_clock_us;
        let (server, req_vid, spec) = {
            let session = self.sessions.get(sid).ok_or_else(lost_session)?;
            let req = session.measure.as_ref().ok_or_else(lost_session)?;
            (session.server, req.vid, req.spec)
        };
        let window = spec.window_us();
        if window == 0 {
            return self.step_window_close(sid);
        }
        let free_at = self.window_free_at.get(&server).copied().unwrap_or(0);
        if free_at > now {
            if let Some(session) = self.sessions.get_mut(sid) {
                session.elapsed_us += free_at - now;
            }
            self.schedule_session_event(free_at, sid, SessionEvent::WindowOpen);
            return Ok(());
        }
        let node = self
            .touch_server(server)
            .ok_or(CloudError::UnknownServer(server))?;
        node.begin_window(spec, req_vid);
        self.window_free_at.insert(server, now + window);
        if let Some(session) = self.sessions.get_mut(sid) {
            session.elapsed_us += window;
        }
        self.schedule_session_event(now + window, sid, SessionEvent::WindowClose);
        Ok(())
    }

    /// The window elapsed: advance out of the `Window` op into the
    /// message-4 hop, whose entry collects the measurements, generates
    /// the quote and puts the response on the wire.
    pub(crate) fn step_window_close(&mut self, sid: SessionId) -> Result<(), CloudError> {
        self.check_deadline(sid)?;
        self.advance_session(sid, 0)
    }

    /// The final processing charge is paid: deliver the verdict.
    pub(crate) fn step_complete(&mut self, sid: SessionId) -> Result<(), CloudError> {
        let (status, elapsed_us) = {
            let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
            let status = session
                .verdict
                .take()
                .ok_or_else(|| CloudError::ProtocolFailure {
                    reason: "session completed without a verdict".into(),
                })?;
            (status, session.elapsed_us)
        };
        self.finish_session(sid, Ok(crate::session::SessionYield { status, elapsed_us }));
        Ok(())
    }
}
