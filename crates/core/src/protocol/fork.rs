//! Fork/join for parallel and delegated sub-protocols.
//!
//! A `Fork` op spawns each compiled branch as a *child session* — a
//! full session with its own retransmission ladders, deadline,
//! measurement windows and ledger entries — and parks the parent until
//! every branch terminates. Child outcomes are routed back through
//! [`Cloud::route_child_outcome`] into the parent's branch slots; the
//! last one triggers the join, which combines the verdicts and resumes
//! the parent (a following `Gate` op branches on the combined verdict).
//!
//! A parked parent is invisible to per-hop machinery: it has no record
//! on the wire, no retry timers, and [`AttestSession::touches`] returns
//! `false`, so node-crash fail-fast takes out the children (which
//! resume the parent with their errors) instead of double-finishing the
//! parent. That single ownership path is what keeps the chaos-sweep
//! liveness ledgers reconciling: every child is counted
//! started/finished exactly once, and the parent finishes exactly once,
//! at the join.
//!
//! Forks do not nest (enforced by the compiler), so one parent pointer
//! per session suffices.

use crate::cloud::Cloud;
use crate::error::CloudError;
use crate::session::{lost_session, AttestSession, SessionId, SessionOrigin};
use crate::types::HealthStatus;

impl Cloud {
    /// Enters a `Fork` op: spawns the branch child sessions and parks
    /// the parent. `charge_us` (the op's pre-charge) is paid by the
    /// parent; the join later charges the wall-clock wait on top.
    pub(crate) fn enter_fork(
        &mut self,
        sid: SessionId,
        first_branch: u16,
        n_branches: u16,
        charge_us: u64,
    ) -> Result<(), CloudError> {
        let now = self.wall_clock_us;
        let (vid, server, image, parent_property, program) = {
            let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
            session.elapsed_us += charge_us;
            session.fork_started_us = now;
            session.fork_outstanding = 0;
            session.fork_slots.clear();
            session.fork_slots.resize(n_branches as usize, None);
            (
                session.vid,
                session.server,
                session.expected_image,
                session.property,
                session.program,
            )
        };
        for slot in 0..n_branches {
            let spec = self
                .programs
                .get(program)
                .and_then(|p| p.branches.get((first_branch + slot) as usize))
                .copied()
                .ok_or_else(lost_session)?;
            let property = spec.property.unwrap_or(parent_property);
            let spawned = self.begin_child_session(crate::session::ChildSpawn {
                vid,
                server,
                property,
                image,
                program: spec.program,
                parent: sid,
                slot,
            });
            let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
            match spawned {
                Ok(_) => session.fork_outstanding += 1,
                // A branch that cannot even spawn (admission, node
                // down) records its error in its slot; the other
                // branches still run and the join reports it.
                Err(e) => {
                    if let Some(entry) = session.fork_slots.get_mut(slot as usize) {
                        *entry = Some(Err(e));
                    }
                }
            }
        }
        let outstanding = self
            .sessions
            .get(sid)
            .map(|s| s.fork_outstanding)
            .unwrap_or(0);
        if outstanding == 0 {
            self.join_fork(sid);
        }
        Ok(())
    }

    /// A terminated child posts its outcome into the parent's branch
    /// slot; the last outstanding child triggers the join. A parent
    /// already terminal (defensive — the parked parent has no failure
    /// path of its own) drops the outcome.
    pub(crate) fn route_child_outcome(
        &mut self,
        parent: SessionId,
        slot: u16,
        outcome: Result<HealthStatus, CloudError>,
    ) {
        let join = {
            let Some(session) = self.sessions.get_mut(parent) else {
                return;
            };
            if session.pending.is_some() {
                return;
            }
            if let Some(entry) = session.fork_slots.get_mut(slot as usize) {
                *entry = Some(outcome);
            }
            session.fork_outstanding = session.fork_outstanding.saturating_sub(1);
            session.fork_outstanding == 0
        };
        if join {
            self.join_fork(parent);
        }
    }

    /// All branches are in: charge the parent's wait, combine the
    /// verdicts and resume the parent at the next op. Branch transport
    /// errors fail the parent (first slot wins); verdicts combine as
    /// healthy-iff-all-healthy, with a single-branch fork (a
    /// delegation) passing the child's verdict through untouched.
    fn join_fork(&mut self, sid: SessionId) {
        let combined = {
            let Some(session) = self.sessions.get_mut(sid) else {
                return;
            };
            session.elapsed_us += self.wall_clock_us - session.fork_started_us;
            combine_slots(&mut session.fork_slots)
        };
        match combined {
            Err(e) => self.finish_session(sid, Err(e)),
            Ok(status) => {
                if let Some(session) = self.sessions.get_mut(sid) {
                    session.status = Some(status);
                }
                if let Err(e) = self.advance_session(sid, 0) {
                    self.finish_session(sid, Err(e));
                }
            }
        }
    }

    /// Enters a `Gate` op: a healthy delegated verdict is consumed and
    /// the program falls through (the real appraisal now runs on a
    /// platform just vouched for); an unhealthy one is kept in the
    /// status register and the counter jumps to the certification tail,
    /// so the negative verdict is still certified and reported.
    pub(crate) fn enter_gate(&mut self, sid: SessionId, fail_pc: u16) -> Result<(), CloudError> {
        let session = self.sessions.get_mut(sid).ok_or_else(lost_session)?;
        let healthy = match &session.status {
            Some(status) => status.is_healthy(),
            None => {
                return Err(CloudError::ProtocolFailure {
                    reason: "gate reached without a delegated verdict".into(),
                })
            }
        };
        if healthy {
            session.status = None;
            session.pc = session.pc.wrapping_add(1);
        } else {
            session.pc = fail_pc;
        }
        self.enter_current_op(sid, 0)
    }
}

/// Combines branch outcomes, consuming the slots: a transport error in
/// any branch fails the whole fork (first slot wins — deterministic); a
/// single Ok verdict passes through; multiple verdicts combine to
/// `Healthy` iff all are healthy, `Compromised` naming the failing
/// branches if any branch found evidence, and `Unreachable` when the
/// only non-healthy verdicts were silence.
fn combine_slots(
    slots: &mut [Option<Result<HealthStatus, CloudError>>],
) -> Result<HealthStatus, CloudError> {
    let mut verdicts: Vec<HealthStatus> = Vec::with_capacity(slots.len());
    for entry in slots.iter_mut() {
        match entry.take() {
            Some(Ok(status)) => verdicts.push(status),
            Some(Err(e)) => return Err(e),
            None => {
                return Err(CloudError::ProtocolFailure {
                    reason: "fork joined with an unfilled branch slot".into(),
                })
            }
        }
    }
    if verdicts.len() == 1 {
        let Some(status) = verdicts.pop() else {
            return Err(lost_session());
        };
        return Ok(status);
    }
    if verdicts.iter().all(HealthStatus::is_healthy) {
        return Ok(HealthStatus::Healthy);
    }
    if verdicts
        .iter()
        .any(|v| matches!(v, HealthStatus::Compromised { .. }))
    {
        let mut reason = String::from("fan-out branches violated:");
        for (i, v) in verdicts.iter().enumerate() {
            if let HealthStatus::Compromised { reason: r } = v {
                reason.push_str(&format!(" branch {i}: {r};"));
            }
        }
        return Ok(HealthStatus::Compromised { reason });
    }
    let missed = verdicts
        .iter()
        .filter_map(|v| match v {
            HealthStatus::Unreachable { missed } => Some(*missed),
            _ => None,
        })
        .max()
        .unwrap_or(1);
    Ok(HealthStatus::Unreachable { missed })
}

impl Cloud {
    /// Spawns one fork branch as a child session against the parent's
    /// placement. Mirrors the internal-session spawn: the child runs an
    /// appraiser-side program and reports into the parent's slot
    /// instead of an API pump.
    fn begin_child_session(
        &mut self,
        spawn: crate::session::ChildSpawn,
    ) -> Result<SessionId, CloudError> {
        self.admit_session()?;
        // Children route independently of the parent: the route is
        // re-resolved at spawn time so a child admitted after a
        // control-plane failover lands on the live owner.
        let route = self.topology.route_for(spawn.vid);
        let (sid, session) = self
            .sessions
            .alloc_with(AttestSession::vacant)
            .ok_or_else(lost_session)?;
        session.reset(
            spawn.vid,
            spawn.server,
            route,
            spawn.property,
            spawn.image,
            spawn.program,
            SessionOrigin::Child {
                parent: spawn.parent,
                slot: spawn.slot,
            },
        );
        self.spawn_prepared(sid)
    }
}
