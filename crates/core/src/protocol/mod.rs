//! Attestation protocols as data: the IR, its compiler, and the
//! session-layer interpreter.
//!
//! CloudMonatt's Figure-3 message flow used to be hard-wired as a
//! per-stage state machine. This module turns it into a term language
//! ([`Protocol`]) compiled ([`compile`]) to flat op schedules that the
//! session interpreter ([`run`], [`fork`]) executes on the engine's
//! event queue. Figure 3 ships as the default program — byte-identical
//! to the hand-written machine, pinned by the golden trace — and new
//! scenarios (layered platform-then-VM attestation, multi-property
//! fan-out, delegation) are new *programs*, not new code.

pub mod compile;
pub(crate) mod fork;
pub mod ir;
pub(crate) mod run;

pub use compile::{CompileError, ProgramId};
pub use ir::{Branch, MsgKind, NonceSlot, Protocol, QuoteKind};

use crate::types::SecurityProperty;
use compile::{compile_into, CompiledProgram};
use std::collections::BTreeMap;

/// The cloud's compiled-program store. The three standard programs
/// (Figure 3 customer/internal, layered) are registered at build time;
/// fan-out programs are compiled on first use per property list and
/// cached, and arbitrary terms can be registered through
/// [`crate::cloud::Cloud::register_protocol`].
#[derive(Debug)]
pub(crate) struct ProgramRegistry {
    programs: Vec<CompiledProgram>,
    /// The flat Figure-3 customer exchange (messages 1–6).
    pub(crate) fig3_customer: ProgramId,
    /// The controller-internal exchange (messages 2–5).
    pub(crate) fig3_internal: ProgramId,
    /// Layered platform-then-VM attestation.
    pub(crate) layered: ProgramId,
    /// Fan-out programs already compiled, keyed by property list.
    fanout_cache: BTreeMap<Vec<SecurityProperty>, ProgramId>,
}

impl ProgramRegistry {
    /// Compiles the standard programs. Infallible in practice (the
    /// builders are well-formed by construction; unit tests pin their
    /// schedules), but the error is surfaced rather than swallowed.
    pub(crate) fn standard() -> Result<ProgramRegistry, CompileError> {
        let mut programs = Vec::new();
        let fig3_customer = compile_into(&Protocol::figure3_customer(), &mut programs)?;
        let fig3_internal = compile_into(&Protocol::figure3_internal(), &mut programs)?;
        let layered = compile_into(
            &Protocol::layered(SecurityProperty::StartupIntegrity),
            &mut programs,
        )?;
        Ok(ProgramRegistry {
            programs,
            fig3_customer,
            fig3_internal,
            layered,
            fanout_cache: BTreeMap::new(),
        })
    }

    /// Compiles and registers an arbitrary term.
    pub(crate) fn register(&mut self, p: &Protocol) -> Result<ProgramId, CompileError> {
        compile_into(p, &mut self.programs)
    }

    /// The fan-out program for `properties`, compiled on first use.
    pub(crate) fn fanout_for(
        &mut self,
        properties: &[SecurityProperty],
    ) -> Result<ProgramId, CompileError> {
        if let Some(id) = self.fanout_cache.get(properties) {
            return Ok(*id);
        }
        let id = compile_into(&Protocol::fanout(properties), &mut self.programs)?;
        self.fanout_cache.insert(properties.to_vec(), id);
        Ok(id)
    }

    /// The compiled form behind `id`.
    pub(crate) fn get(&self, id: ProgramId) -> Option<&CompiledProgram> {
        self.programs.get(id.0 as usize)
    }
}
